#!/usr/bin/env bash
# CI gate: formatting, lints, full target compile, tier-1 tests.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (workspace, broken links and missing docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== smoke-compile examples, bench binaries and benches"
cargo build --workspace --bins --benches --examples

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== build release bench binaries (repro_all launches its siblings)"
cargo build --release -p yoloc-bench --bins

echo "== workspace unit tests and doctests"
cargo test -q --workspace

echo "== fusion/scheduler parity suite (YOLOC_SMOKE=1)"
YOLOC_SMOKE=1 cargo test -q --test scheduler_parity

echo "== arena-executor parity suite (YOLOC_SMOKE=1)"
YOLOC_SMOKE=1 cargo test -q --test arena_parity

echo "== kernel-parity suites under forced scalar tier (YOLOC_KERNEL=scalar)"
YOLOC_KERNEL=scalar cargo test -q -p yoloc-cim
YOLOC_KERNEL=scalar YOLOC_SMOKE=1 cargo test -q --test arena_parity

echo "== kernel-parity suites under forced AVX2 tier (YOLOC_KERNEL=avx2)"
# On hosts without AVX2 the dispatch downgrades to scalar with a note
# (see kernel_override_is_honored_across_the_arena_suite).
YOLOC_KERNEL=avx2 cargo test -q -p yoloc-cim
YOLOC_KERNEL=avx2 YOLOC_SMOKE=1 cargo test -q --test arena_parity

echo "== kernel-parity suites under forced AVX-512 tier (YOLOC_KERNEL=avx512)"
# Hosts without the required subsets (F+BW+VL+VPOPCNTDQ) downgrade to
# AVX2 (or scalar) with a note, so this leg runs everywhere.
YOLOC_KERNEL=avx512 cargo test -q -p yoloc-cim
YOLOC_KERNEL=avx512 YOLOC_SMOKE=1 cargo test -q --test arena_parity

echo "== remainder-lane kernel parity suite (both layouts, all tiers)"
cargo test -q --test kernel_remainder
YOLOC_KERNEL=avx512 cargo test -q --test kernel_remainder

echo "== plan round-trip + cache-hit parity suite (YOLOC_SMOKE=1)"
YOLOC_SMOKE=1 cargo test -q --test plan_roundtrip

echo "== plan-cache corruption hardening suite"
cargo test -q --test plan_cache_corruption

echo "== fault-injection parity suite (zero-fault identity, oracle consistency)"
cargo test -q --test fault_parity
YOLOC_KERNEL=avx512 cargo test -q --test fault_parity

echo "== chaos serving suite (canary detect -> quarantine -> repair -> recover)"
cargo test -q --test chaos_sim

echo "== serving simulation suite (byte-stability + invariants, YOLOC_SMOKE=1)"
YOLOC_SMOKE=1 cargo test -q --test serve_sim

echo "== serving parity suite (broker == direct inference, YOLOC_SMOKE=1)"
YOLOC_SMOKE=1 cargo test -q --test serve_parity

echo "== zero-allocation steady-state gate"
cargo test -q -p yoloc-bench --test alloc_steady_state

echo "== plan-cache cold/warm gate (zero warm recompiles, by counter)"
YOLOC_SMOKE=1 cargo run --release -q -p yoloc-bench --bin bench_plan_cache -- --smoke

echo "== serving bench smoke + self schema gate"
cargo run --release -q -p yoloc-bench --bin bench_serve -- --smoke --check-schema

echo "== kernel-tier smoke gate (bit-identical tiers, speedup >= 1.0)"
cargo run --release -q -p yoloc-bench --bin bench_kernels -- --smoke

echo "== validate committed BENCH_engine.json (schema v7 gates incl. plan_cache + kernel_tier)"
cargo run --release -q -p yoloc-bench --bin bench_engine -- --check-schema BENCH_engine.json
cargo run --release -q -p yoloc-bench --bin bench_kernels -- --check-schema BENCH_engine.json

echo "== validate committed BENCH_serve.json (schema yoloc-bench-serve/2 gates)"
cargo run --release -q -p yoloc-bench --bin bench_serve -- --check-schema BENCH_serve.json

echo "== fault bench smoke + self schema gate"
cargo run --release -q -p yoloc-bench --bin bench_faults -- --smoke --check-schema

echo "== validate committed BENCH_faults.json (schema yoloc-bench-faults/1 gates)"
cargo run --release -q -p yoloc-bench --bin bench_faults -- --check-schema BENCH_faults.json

echo "== run every bench binary on tiny configs (repro_all --smoke)"
cargo run --release -q -p yoloc-bench --bin repro_all -- --smoke

echo "CI green."
