//! A minimal ordered JSON value tree with a deterministic renderer.
//!
//! This is the shim's stand-in for `serde_json::Value`: object fields keep
//! insertion order so rendered documents are stable byte-for-byte for
//! identical inputs — what keeps committed benchmark baselines diffable.
//! [`crate::Serialize::to_json`] (hand-written or `#[derive(Serialize)]`)
//! produces these values; [`Value::render`] emits pretty-printed JSON.

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order so rendered documents
/// are stable byte-for-byte for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered via `f64`; NaN/inf render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Converts anything implementing [`crate::Serialize`] into a value
    /// (the entry point `#[derive(Serialize)]` feeds).
    pub fn from_serialize(v: &(impl crate::Serialize + ?Sized)) -> Value {
        v.to_json()
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(v) => {
                if v.is_finite() {
                    // Integral values render without a fraction.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes (used
/// for both string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
