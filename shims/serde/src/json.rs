//! A minimal ordered JSON value tree with a deterministic renderer.
//!
//! This is the shim's stand-in for `serde_json::Value`: object fields keep
//! insertion order so rendered documents are stable byte-for-byte for
//! identical inputs — what keeps committed benchmark baselines diffable
//! and makes [`Value::render_compact`] a sound content-hash input for the
//! plan cache. [`crate::Serialize::to_json`] (hand-written or
//! `#[derive(Serialize)]`) produces these values; [`Value::render`] emits
//! pretty-printed JSON; [`Value::parse`] is its exact dual.
//!
//! Numbers are stored in three variants so round trips are lossless:
//! [`Value::UInt`]/[`Value::Int`] hold integer tokens exactly (no 2^53
//! truncation), and [`Value::Num`] holds everything with a fraction or
//! exponent, rendered with shortest-round-trip (`{:?}`) formatting.
//! Cross-variant numeric equality (`Num(16.0) == Int(16)`) keeps value
//! trees comparable regardless of which side of a round trip they came
//! from. Non-finite floats are not representable in JSON; the renderer
//! emits a tagged object `{"$f64": "NaN" | "inf" | "-inf"}` that
//! [`Value::as_num`] decodes, instead of silently degrading to `null`.

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order so rendered documents
/// are stable byte-for-byte for identical inputs.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with a fraction or exponent (or out of integer range),
    /// rendered with shortest-round-trip formatting. Non-finite values
    /// render as the tagged object `{"$f64": ...}`.
    Num(f64),
    /// A non-negative integer token, held exactly (u64 range).
    UInt(u64),
    /// A negative integer token, held exactly (i64 range).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with ordered fields.
    Obj(Vec<(String, Value)>),
}

/// Structural equality with cross-variant numeric comparison: integer
/// variants equal a `Num` exactly when the float is integral and the
/// exact cast matches (so `Num(16.0) == Int(16)` but
/// `Num(9007199254740993.0) != UInt(9007199254740993)` — the float
/// literal actually holds 2^53, not 2^53+1).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            (Num(a), Num(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(u), Int(i)) | (Int(i), UInt(u)) => *i >= 0 && *i as u64 == *u,
            (Num(f), UInt(u)) | (UInt(u), Num(f)) => {
                // Exclusive upper bound: 2^64 as f64 rounds to itself and
                // would saturate the cast.
                f.fract() == 0.0
                    && *f >= 0.0
                    && *f < 18_446_744_073_709_551_616.0
                    && *f as u64 == *u
            }
            (Num(f), Int(i)) | (Int(i), Num(f)) => {
                f.fract() == 0.0
                    && *f >= -9_223_372_036_854_775_808.0
                    && *f < 9_223_372_036_854_775_808.0
                    && *f as i64 == *i
            }
            _ => false,
        }
    }
}

impl Value {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Converts anything implementing [`crate::Serialize`] into a value
    /// (the entry point `#[derive(Serialize)]` feeds).
    pub fn from_serialize(v: &(impl crate::Serialize + ?Sized)) -> Value {
        v.to_json()
    }

    /// Parses a JSON document into a value tree (object field order is
    /// preserved; integer tokens parse exactly into [`Value::UInt`] /
    /// [`Value::Int`], everything else into [`Value::Num`] — the dual of
    /// [`Value::render`], which round-trips everything this module
    /// emits). Duplicate object keys are kept as-is, last-reader-wins
    /// through [`Value::get`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error (with byte
    /// offset) on malformed input, including trailing garbage, lone
    /// UTF-16 surrogates in `\u` escapes, and nesting deeper than 128
    /// levels (the recursive-descent parser bounds its stack instead of
    /// overflowing on adversarial input).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys; the
    /// last field wins on duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integer variants coerce; values
    /// above 2^53 may lose precision — use [`Value::as_u64`] /
    /// [`Value::as_i64`] for exact counts). Also decodes the tagged
    /// non-finite object `{"$f64": "NaN" | "inf" | "-inf"}`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Obj(fields) if fields.len() == 1 && fields[0].0 == "$f64" => {
                match fields[0].1.as_str() {
                    Some("NaN") => Some(f64::NAN),
                    Some("inf") => Some(f64::INFINITY),
                    Some("-inf") => Some(f64::NEG_INFINITY),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// The exact unsigned-integer payload: [`Value::UInt`] directly,
    /// non-negative [`Value::Int`], or an integral in-range [`Value::Num`]
    /// (exact by IEEE-754 — integral doubles below 2^53 cast losslessly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 18_446_744_073_709_551_616.0 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The exact signed-integer payload (see [`Value::as_u64`]).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Num(f)
                if f.fract() == 0.0
                    && *f >= -9_223_372_036_854_775_808.0
                    && *f < 9_223_372_036_854_775_808.0 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the canonical form
    /// the plan cache hashes (identical trees render identical bytes).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_num(out: &mut String, v: f64) {
        if v.is_finite() {
            // Integral values below 2^53 render without a fraction (and
            // parse back into an exact integer variant); -0.0 keeps its
            // sign through the float path.
            if v.fract() == 0.0
                && v.abs() < 9_007_199_254_740_992.0
                && !(v == 0.0 && v.is_sign_negative())
            {
                let _ = write!(out, "{}", v as i64);
            } else {
                // `{:?}` is shortest-round-trip: the decimal it prints
                // parses back to the identical f64 bits.
                let _ = write!(out, "{v:?}");
            }
        } else if v.is_nan() {
            out.push_str("{\"$f64\": \"NaN\"}");
        } else if v > 0.0 {
            out.push_str("{\"$f64\": \"inf\"}");
        } else {
            out.push_str("{\"$f64\": \"-inf\"}");
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(v) => Self::write_num(out, *v),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(v) => Self::write_num(out, *v),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

/// Maximum container nesting [`Value::parse`] accepts.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Pure integer tokens parse exactly (no round trip through f64, which
    // corrupts counts above 2^53); fraction/exponent tokens — and integer
    // tokens overflowing 64 bits — fall back to f64.
    if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

/// Reads the 4 hex digits of a `\uXXXX` escape starting at `at`.
fn read_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = read_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // A high surrogate must pair with an
                            // immediately following \uXXXX low surrogate
                            // (UTF-16 encoding of an astral-plane char).
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(format!(
                                    "lone high surrogate \\u{code:04x} at byte {}",
                                    *pos - 4
                                ));
                            }
                            let lo = read_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!(
                                    "high surrogate \\u{code:04x} followed by \
                                     non-low-surrogate \\u{lo:04x} at byte {}",
                                    *pos - 4
                                ));
                            }
                            *pos += 6;
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(scalar).expect("paired surrogate is valid"));
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(format!(
                                "lone low surrogate \\u{code:04x} at byte {}",
                                *pos - 4
                            ));
                        } else {
                            out.push(char::from_u32(code).expect("non-surrogate BMP scalar"));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes (used
/// for both string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("x/3".into())),
            ("ok".into(), Value::Bool(true)),
            ("n".into(), Value::Num(2.5)),
            ("i".into(), Value::Num(16.0)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Str("a\"b\n".into())]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        let back = Value::parse(&doc.render()).expect("round trip");
        assert_eq!(doc, back);
        let back = Value::parse(&doc.render_compact()).expect("compact round trip");
        assert_eq!(doc, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, ]").is_err());
        assert!(Value::parse("{\"a\": 1} trailing").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        // Adversarially nested input must produce an Err, not blow the
        // stack (the --check-schema CI gate parses on-disk files).
        let deep = "[".repeat(200_000);
        let err = Value::parse(&deep).expect_err("deep nesting rejected");
        assert!(err.contains("nesting deeper"), "{err}");
        // 100 levels stay fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let v = Value::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "hi"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(Value::as_arr);
        assert_eq!(arr.map(|a| a.len()), Some(3));
        assert_eq!(arr.unwrap()[2].as_num(), Some(3.0));
        assert!(v.get("missing").is_none());
        assert!(Value::Num(1.0).get("x").is_none());
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = Value::parse(r#""café \"quoted\" \\ done""#).unwrap();
        assert_eq!(v.as_str(), Some("café \"quoted\" \\ done"));
        let v = Value::parse("\"emoji ✓ passthrough\"").unwrap();
        assert_eq!(v.as_str(), Some("emoji ✓ passthrough"));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_error() {
        // U+1F600 😀 is the surrogate pair D83D DE00 in UTF-16.
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Pair embedded mid-string, and uppercase hex.
        let v = Value::parse(r#""a\uD83D\uDE00b""#).unwrap();
        assert_eq!(v.as_str(), Some("a😀b"));
        // Raw astral chars pass through unescaped too.
        let v = Value::parse("\"😀\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Lone high, lone low, and high followed by a non-surrogate all
        // produce clear errors instead of U+FFFD corruption.
        let err = Value::parse(r#""\ud83d""#).expect_err("lone high");
        assert!(err.contains("lone high surrogate"), "{err}");
        let err = Value::parse(r#""\ude00""#).expect_err("lone low");
        assert!(err.contains("lone low surrogate"), "{err}");
        let err = Value::parse(r#""\ud83d\u0041""#).expect_err("bad pair");
        assert!(err.contains("non-low-surrogate"), "{err}");
        let err = Value::parse(r#""\ud83dxx""#).expect_err("unpaired");
        assert!(err.contains("lone high surrogate"), "{err}");
    }

    #[test]
    fn integers_round_trip_exactly_beyond_2_53() {
        for &u in &[0u64, 1, 2_u64.pow(53) + 1, u64::MAX] {
            let back = Value::parse(&Value::UInt(u).render()).unwrap();
            assert_eq!(back.as_u64(), Some(u), "u64 {u}");
        }
        for &i in &[-1i64, i64::MIN, -(2_i64.pow(53) + 1)] {
            let back = Value::parse(&Value::Int(i).render()).unwrap();
            assert_eq!(back.as_i64(), Some(i), "i64 {i}");
        }
        // The token text is preserved, not routed through f64.
        assert_eq!(
            Value::parse("9007199254740993").unwrap(),
            Value::UInt(9_007_199_254_740_993)
        );
        assert_ne!(
            Value::parse("9007199254740993").unwrap(),
            Value::Num(9_007_199_254_740_992.0)
        );
    }

    #[test]
    fn numeric_equality_crosses_variants() {
        assert_eq!(Value::Num(16.0), Value::Int(16));
        assert_eq!(Value::Num(16.0), Value::UInt(16));
        assert_eq!(Value::Int(16), Value::UInt(16));
        assert_ne!(Value::Int(-1), Value::UInt(u64::MAX));
        assert_ne!(Value::Num(16.5), Value::Int(16));
        // 2^53+1 is not representable as f64: the nearest double (2^53)
        // must not compare equal to the exact integer.
        assert_ne!(
            Value::Num(9_007_199_254_740_992.0),
            Value::UInt(9_007_199_254_740_993)
        );
        assert_eq!(
            Value::Num(9_007_199_254_740_992.0),
            Value::UInt(9_007_199_254_740_992)
        );
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        // 0.1 has no exact decimal expansion; default `{}` formatting is
        // already shortest for it, but values like 1e-300 or f64::MIN
        // need `{:?}` to stay exact. Check bit-exactness through a full
        // render→parse cycle.
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324,
            1e300,
            -2.5e-10,
            9_007_199_254_740_992.0,
            -0.0,
            0.0,
            1.5,
        ] {
            let back = Value::parse(&Value::Num(v).render()).unwrap();
            let got = back.as_num().unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "{v:?} -> {got:?}");
        }
    }

    #[test]
    fn non_finite_floats_render_tagged_not_null() {
        for (v, tag) in [
            (f64::NAN, "NaN"),
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
        ] {
            let rendered = Value::Num(v).render();
            assert!(rendered.contains("$f64"), "{rendered}");
            let back = Value::parse(&rendered).unwrap();
            assert_eq!(back.get("$f64").and_then(Value::as_str), Some(tag));
            let decoded = back.as_num().unwrap();
            assert_eq!(decoded.is_nan(), v.is_nan());
            if !v.is_nan() {
                assert_eq!(decoded.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn adversarial_float_bit_patterns_round_trip() {
        // Property test over raw bit patterns (SplitMix64 — the shim has
        // no proptest dependency): every f64, including subnormals and
        // extreme exponents, must survive render→parse bit-exactly; NaNs
        // must stay NaN through the tagged encoding.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..512 {
            let v = f64::from_bits(next());
            let back = Value::parse(&Value::Num(v).render()).expect("parses");
            let got = back.as_num().expect("numeric");
            if v.is_nan() {
                assert!(got.is_nan());
            } else {
                assert_eq!(got.to_bits(), v.to_bits(), "{v:?} -> {got:?}");
            }
        }
    }
}
