//! A minimal ordered JSON value tree with a deterministic renderer.
//!
//! This is the shim's stand-in for `serde_json::Value`: object fields keep
//! insertion order so rendered documents are stable byte-for-byte for
//! identical inputs — what keeps committed benchmark baselines diffable.
//! [`crate::Serialize::to_json`] (hand-written or `#[derive(Serialize)]`)
//! produces these values; [`Value::render`] emits pretty-printed JSON.

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order so rendered documents
/// are stable byte-for-byte for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered via `f64`; NaN/inf render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Converts anything implementing [`crate::Serialize`] into a value
    /// (the entry point `#[derive(Serialize)]` feeds).
    pub fn from_serialize(v: &(impl crate::Serialize + ?Sized)) -> Value {
        v.to_json()
    }

    /// Parses a JSON document into a value tree (object field order is
    /// preserved, numbers parse as `f64` — the dual of [`Value::render`],
    /// which round-trips everything this module emits). Duplicate object
    /// keys are kept as-is, last-reader-wins through [`Value::get`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error (with byte
    /// offset) on malformed input, including trailing garbage and
    /// nesting deeper than 128 levels (the recursive-descent parser
    /// bounds its stack instead of overflowing on adversarial input).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys; the
    /// last field wins on duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(v) => {
                if v.is_finite() {
                    // Integral values render without a fraction.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

/// Maximum container nesting [`Value::parse`] accepts.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates fall back to the replacement char:
                        // the renderer never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes (used
/// for both string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("x/3".into())),
            ("ok".into(), Value::Bool(true)),
            ("n".into(), Value::Num(2.5)),
            ("i".into(), Value::Num(16.0)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Str("a\"b\n".into())]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        let back = Value::parse(&doc.render()).expect("round trip");
        assert_eq!(doc, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, ]").is_err());
        assert!(Value::parse("{\"a\": 1} trailing").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        // Adversarially nested input must produce an Err, not blow the
        // stack (the --check-schema CI gate parses on-disk files).
        let deep = "[".repeat(200_000);
        let err = Value::parse(&deep).expect_err("deep nesting rejected");
        assert!(err.contains("nesting deeper"), "{err}");
        // 100 levels stay fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let v = Value::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "hi"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(Value::as_arr);
        assert_eq!(arr.map(|a| a.len()), Some(3));
        assert_eq!(arr.unwrap()[2].as_num(), Some(3.0));
        assert!(v.get("missing").is_none());
        assert!(Value::Num(1.0).get("x").is_none());
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = Value::parse(r#""café \"quoted\" \\ done""#).unwrap();
        assert_eq!(v.as_str(), Some("café \"quoted\" \\ done"));
        let v = Value::parse("\"emoji ✓ passthrough\"").unwrap();
        assert_eq!(v.as_str(), Some("emoji ✓ passthrough"));
    }
}
