//! Offline stand-in for `serde`: a working `to_json` serialization core.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde it actually uses. Unlike the original marker-only
//! shim, [`Serialize`] is now a *real* trait: `to_json` produces an
//! ordered [`json::Value`] tree, `#[derive(Serialize)]`
//! (see `shims/serde_derive`) generates field-by-field implementations for
//! structs and enums, and `yoloc-bench` renders reports from the tree.
//! [`Deserialize`] remains a marker (nothing in the workspace parses JSON
//! yet). Swapping to upstream `serde`/`serde_json` is a manifest change
//! plus replacing `to_json` call sites with `serde_json::to_value`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into the shim's [`json::Value`] tree (the role upstream
/// serde's `Serialize` + `serde_json::to_value` play together).
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Marker trait mirroring `serde::Deserialize` (no parsing in the shim).
pub trait Deserialize<'de> {}

macro_rules! impl_serialize_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Num(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}

impl_serialize_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u64.to_json(), Value::Num(3.0));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("x".to_json(), Value::Str("x".into()));
        assert_eq!(Option::<u8>::None.to_json(), Value::Null);
        assert_eq!(
            (1usize, 2usize, 3usize).to_json(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
    }

    #[test]
    fn vec_serializes_to_array() {
        assert_eq!(
            vec![1u8, 2].to_json(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])
        );
    }
}
