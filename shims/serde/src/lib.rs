//! Offline stand-in for `serde`: a working serialization *and*
//! deserialization core.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde it actually uses. [`Serialize`] is a real trait:
//! `to_json` produces an ordered [`json::Value`] tree and
//! `#[derive(Serialize)]` (see `shims/serde_derive`) generates
//! field-by-field implementations for structs and enums. [`Deserialize`]
//! is its dual: `from_value` rebuilds a value from the tree
//! (`#[derive(Deserialize)]` mirrors the serialize derive), which is what
//! lets compiled execution plans round-trip through the on-disk plan
//! cache. Swapping to upstream `serde`/`serde_json` is a manifest change
//! plus replacing `to_json`/`from_value` call sites with
//! `serde_json::to_value`/`from_value`.
//!
//! Integer types serialize into the exact [`json::Value::UInt`] /
//! [`json::Value::Int`] variants (no silent f64 truncation above 2^53)
//! and deserialize with range checks; floats use [`json::Value::Num`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into the shim's [`json::Value`] tree (the role upstream
/// serde's `Serialize` + `serde_json::to_value` play together).
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Deserialization from the shim's [`json::Value`] tree (the role
/// upstream serde's `Deserialize` + `serde_json::from_value` play
/// together). Errors are plain strings naming the offending field.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first shape or range mismatch.
    fn from_value(v: &json::Value) -> Result<Self, String>;

    /// Called by derived struct impls when a field is absent; overridden
    /// by `Option<T>` to default to `None` (upstream's
    /// `#[serde(default)]`-for-options behavior, which the shim's
    /// serializer relies on since `None` fields serialize to `null`).
    fn from_missing(field: &str) -> Result<Self, String> {
        Err(format!("missing field {field:?}"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, found {v:?}"))?;
                <$t>::try_from(u).map_err(|_| {
                    format!("{u} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, found {v:?}"))?;
                <$t>::try_from(i).map_err(|_| {
                    format!("{i} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        v.as_num()
            .ok_or_else(|| format!("expected number, found {v:?}"))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        // f32 -> f64 widening is exact, so f32 round trips losslessly.
        json::Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        v.as_num()
            .map(|n| n as f32)
            .ok_or_else(|| format!("expected number, found {v:?}"))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, found {v:?}"))
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, found {v:?}"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        let items = v
            .as_arr()
            .ok_or_else(|| format!("expected array, found {v:?}"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of {N} items, found {got}"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($len:literal: $($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                let items = v
                    .as_arr()
                    .ok_or_else(|| format!("expected array, found {v:?}"))?;
                if items.len() != $len {
                    return Err(format!(
                        "expected {}-tuple, found {} items", $len, items.len()
                    ));
                }
                Ok(($(
                    $t::from_value(&items[$n]).map_err(|e| format!("[{}]: {e}", $n))?,
                )+))
            }
        }
    )*};
}

impl_serde_tuple!(
    (1: 0 A),
    (2: 0 A, 1 B),
    (3: 0 A, 1 B, 2 C),
    (4: 0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u64.to_json(), Value::UInt(3));
        assert_eq!((-3i32).to_json(), Value::Int(-3));
        assert_eq!(2.5f64.to_json(), Value::Num(2.5));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("x".to_json(), Value::Str("x".into()));
        assert_eq!(Option::<u8>::None.to_json(), Value::Null);
        assert_eq!(
            (1usize, 2usize, 3usize).to_json(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }

    #[test]
    fn vec_serializes_to_array() {
        assert_eq!(
            vec![1u8, 2].to_json(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_json()), Ok(u64::MAX));
        assert_eq!(i64::from_value(&i64::MIN.to_json()), Ok(i64::MIN));
        assert_eq!(usize::from_value(&7usize.to_json()), Ok(7));
        assert_eq!(f32::from_value(&1.25f32.to_json()), Ok(1.25));
        assert_eq!(f64::from_value(&0.1f64.to_json()), Ok(0.1));
        assert_eq!(bool::from_value(&Value::Bool(false)), Ok(false));
        assert_eq!(String::from_value(&Value::str("hi")), Ok("hi".into()));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_json()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(
            <(String, u8)>::from_value(&("a".to_string(), 9u8).to_json()),
            Ok(("a".to_string(), 9))
        );
        assert_eq!(<[u8; 3]>::from_value(&[1u8, 2, 3].to_json()), Ok([1, 2, 3]));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::UInt(4)), Ok(Some(4)));
        assert_eq!(Option::<u8>::from_missing("x"), Ok(None));
    }

    #[test]
    fn deserialize_reports_range_and_shape_errors() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_missing("count").unwrap_err().contains("count"));
        assert!(<[u8; 2]>::from_value(&vec![1u8].to_json()).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        // Index context survives nested failures.
        let err =
            Vec::<u8>::from_value(&Value::Arr(vec![Value::UInt(1), Value::Null])).unwrap_err();
        assert!(err.contains("[1]"), "{err}");
    }
}
