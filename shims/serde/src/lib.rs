//! Offline stand-in for `serde`: the marker traits plus no-op derives.
//!
//! The reproduction tags its config/report structs with
//! `#[derive(Serialize, Deserialize)]` so they are ready for persistence,
//! but nothing in the workspace serializes at runtime yet. This shim lets
//! those derives compile without crates.io access; swap the workspace
//! manifest back to upstream serde when real serialization is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
