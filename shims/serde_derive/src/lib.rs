//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` shim. The workspace only uses the derives as markers on
//! config/report structs; nothing serializes at runtime yet, so the
//! derives intentionally expand to nothing. When real serialization lands,
//! point the workspace manifest back at the upstream crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; accepted anywhere upstream serde's derive is.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted anywhere upstream serde's derive is.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
