//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! `serde` shim.
//!
//! `Serialize` generates a real `serde::Serialize::to_json` implementation
//! by parsing the item's token stream directly (no `syn`/`quote` — the
//! build environment has no crates.io access). Supported shapes cover
//! everything the workspace derives on:
//!
//! * structs with named fields → a JSON object in declaration order;
//! * enums with unit variants → the variant name as a string;
//! * enum tuple variants of one field → `{"Variant": value}`;
//! * enum struct variants → `{"Variant": {fields...}}`.
//!
//! `Deserialize` mirrors the same shapes in reverse: a generated
//! `serde::Deserialize::from_value` rebuilds the item from the value
//! tree, with field/variant names in every error message. Missing struct
//! fields route through `Deserialize::from_missing` so `Option` fields
//! default to `None` (their serialized form is `null`-or-absent).
//!
//! Generic items are not supported (nothing in the workspace derives on
//! one).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Generates `impl serde::Serialize` with a field-by-field `to_json`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match parse_item(item) {
        Ok(parsed) => generate(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Generates `impl serde::Deserialize` with a field-by-field
/// `from_value` (the exact dual of the generated `to_json`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    match parse_item(item) {
        Ok(parsed) => generate_deserialize(&parsed)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// What a variant carries.
enum VariantBody {
    Unit,
    /// Tuple variant; only single-field tuples are supported.
    Tuple,
    Struct(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantBody)>,
    },
}

/// Skips leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) from `i` onward.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1; // the (crate)/(super) group
                }
            }
            _ => return i,
        }
    }
}

/// Splits a brace/paren body into top-level comma-separated chunks.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("non-empty").push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Extracts the field name from one `name: Type` chunk.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let i = skip_attrs_and_vis(chunk, 0);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected field name, found {other:?}")),
    }
}

fn parse_item(item: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim: generic item {name} unsupported"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "derive(Serialize) shim: {name} must have a braced body, found {other:?}"
            ))
        }
    };
    match kind.as_str() {
        "struct" => {
            let fields = split_top_level(body)
                .iter()
                .map(|c| field_name(c))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in split_top_level(body) {
                let at = skip_attrs_and_vis(&chunk, 0);
                let vname = match chunk.get(at) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let vbody = match chunk.get(at + 1) {
                    None => VariantBody::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        if split_top_level(g.stream()).len() != 1 {
                            return Err(format!(
                                "derive(Serialize) shim: tuple variant {vname} must have \
                                 exactly one field"
                            ));
                        }
                        VariantBody::Tuple
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = split_top_level(g.stream())
                            .iter()
                            .map(|c| field_name(c))
                            .collect::<Result<Vec<_>, _>>()?;
                        VariantBody::Struct(fields)
                    }
                    other => return Err(format!("unexpected variant body: {other:?}")),
                };
                variants.push((vname, vbody));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!(
            "derive(Serialize) shim: unsupported item kind {other}"
        )),
    }
}

fn obj_literal(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_json(&{access}{f}))"))
        .collect();
    format!("::serde::json::Value::Obj(vec![{}])", entries.join(", "))
}

fn generate(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = obj_literal(fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::json::Value {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, vbody)| match vbody {
                    VariantBody::Unit => format!(
                        "{name}::{vname} => ::serde::json::Value::Str({vname:?}.to_string())"
                    ),
                    VariantBody::Tuple => format!(
                        "{name}::{vname}(f0) => ::serde::json::Value::Obj(vec![\
                         ({vname:?}.to_string(), ::serde::Serialize::to_json(f0))])"
                    ),
                    VariantBody::Struct(fields) => {
                        let pat = fields.join(", ");
                        let inner = obj_literal(fields, "");
                        format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::json::Value::Obj(vec![\
                             ({vname:?}.to_string(), {inner})])"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::json::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

/// One `field: <from_value>` struct-literal entry: present fields
/// deserialize with field context in errors, absent fields route through
/// `from_missing` (which `Option` overrides to default to `None`).
fn field_entry(ty_name: &str, field: &str, access: &str) -> String {
    format!(
        "{field}: match {access}.get({field:?}) {{\n\
             Some(x) => ::serde::Deserialize::from_value(x)\n\
                 .map_err(|e| format!(\"{ty_name}.{field}: {{e}}\"))?,\n\
             None => ::serde::Deserialize::from_missing({field:?})\n\
                 .map_err(|e| format!(\"{ty_name}: {{e}}\"))?,\n\
         }}"
    )
}

fn struct_literal(ty_name: &str, path: &str, fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| field_entry(ty_name, f, access))
        .collect();
    format!("{path} {{ {} }}", entries.join(", "))
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = struct_literal(name, name, fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::json::Value)\n\
                         -> ::core::result::Result<Self, ::std::string::String> {{\n\
                         if !matches!(v, ::serde::json::Value::Obj(_)) {{\n\
                             return Err(format!(\"{name}: expected object, found {{v:?}}\"));\n\
                         }}\n\
                         Ok({body})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as the bare variant-name string;
            // tuple/struct variants as a single-key object.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| matches!(b, VariantBody::Unit))
                .map(|(vname, _)| format!("{vname:?} => Ok({name}::{vname})"))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, vbody)| match vbody {
                    VariantBody::Unit => None,
                    VariantBody::Tuple => Some(format!(
                        "{vname:?} => Ok({name}::{vname}(\n\
                             ::serde::Deserialize::from_value(_inner)\n\
                                 .map_err(|e| format!(\"{name}::{vname}: {{e}}\"))?,\n\
                         ))"
                    )),
                    VariantBody::Struct(fields) => {
                        let lit = struct_literal(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fields,
                            "_inner",
                        );
                        Some(format!("{vname:?} => Ok({lit})"))
                    }
                })
                .collect();
            let unit_match = format!(
                "match s.as_str() {{ {}{}other => Err(format!(\n\
                     \"{name}: unknown variant {{other:?}}\")) }}",
                unit_arms.join(", "),
                if unit_arms.is_empty() { "" } else { ", " }
            );
            let keyed_match = format!(
                "match _k.as_str() {{ {}{}other => Err(format!(\n\
                     \"{name}: unknown variant {{other:?}}\")) }}",
                keyed_arms.join(", "),
                if keyed_arms.is_empty() { "" } else { ", " }
            );
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::json::Value)\n\
                         -> ::core::result::Result<Self, ::std::string::String> {{\n\
                         match v {{\n\
                             ::serde::json::Value::Str(s) => {unit_match},\n\
                             ::serde::json::Value::Obj(fields) if fields.len() == 1 => {{\n\
                                 let (_k, _inner) = &fields[0];\n\
                                 {keyed_match}\n\
                             }}\n\
                             other => Err(format!(\n\
                                 \"{name}: expected variant string or single-key object, \\\n\
                                  found {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
