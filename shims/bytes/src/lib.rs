//! Offline stand-in for the `bytes` crate: [`Bytes`], [`BytesMut`] and the
//! [`Buf`]/[`BufMut`] cursor traits, covering the subset the ROM image
//! serializer uses. Multi-byte integers are big-endian, matching upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the underlying storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the readable bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read cursor over a byte source. Getters advance past what they read
/// and panic on underflow, like upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies out the next `dst.len()` bytes and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u16(0x0102);
        buf.put_u8(0xFF);
        buf.put_u64(42);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u8(), 0xFF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_content() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![9, 9, 7]);
        let b = Bytes::from(vec![0, 9, 9, 7]).slice(1..);
        assert_eq!(a, b);
    }
}
