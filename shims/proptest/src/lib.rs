//! Offline mini property-testing harness exposing the subset of the
//! `proptest` surface this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / `any` /
//! `prop::collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking** and no persisted
//! failure file: each property runs a fixed number of deterministic random
//! cases (seeded from the test's module path, so failures reproduce
//! exactly). That trade keeps the harness dependency-free, which matters
//! because the build environment cannot reach crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Run configuration and the deterministic case generator.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the tier-1 suite fast
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's path so every property gets a distinct
        /// but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Scalars that can be drawn uniformly from a bounded range.
    pub trait SampleScalar: Copy {
        /// Uniform sample in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
        fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_scalar_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleScalar for $t {
                fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
                    let lo_w = lo as i128;
                    let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                    let span = (hi_w - lo_w) as u128;
                    assert!(span > 0, "empty strategy range");
                    let v = (rng.next_u64() as u128) % span;
                    (lo_w + v as i128) as $t
                }
            }
        )*};
    }

    impl_sample_scalar_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleScalar for f64 {
        fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
            if inclusive {
                assert!(lo <= hi, "empty strategy range");
                // Closed unit interval so `hi` is reachable under `lo..=hi`.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit
            } else {
                assert!(lo < hi, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit
            }
        }
    }

    impl SampleScalar for f32 {
        fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
            if inclusive {
                assert!(lo <= hi, "empty strategy range");
                let unit = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32;
                lo + (hi - lo) * unit
            } else {
                assert!(lo < hi, "empty strategy range");
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                lo + (hi - lo) * unit
            }
        }
    }

    impl<T: SampleScalar> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleScalar> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_between(*self.start(), *self.end(), true, rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }

    /// Strategy for "any value of `T`"; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The universal strategy for `T` (`any::<bool>()`, ...).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)` lengths.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_excl: usize,
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len_excl) = size.size_bounds();
        assert!(min_len < max_len_excl, "empty vec-length range");
        VecStrategy {
            element,
            min_len,
            max_len_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len_excl - self.min_len) as u64;
            let len = self.min_len + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! `prop::` path mirror (`prop::collection::vec` and friends).

    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// block becomes a normal `#[test]` that runs `cases` deterministic random
/// cases (see [`test_runner::ProptestConfig`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let run = |rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                    $body
                };
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| run(&mut rng)),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let strat = prop::collection::vec(0u8..=3, 1..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..9,
            b in -4i32..=4,
            f in 0.25f32..0.75,
            pair in (0u8..4, 10u64..20),
            flags in prop::collection::vec(any::<bool>(), 3),
        ) {
            prop_assert!((1..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert_eq!(flags.len(), 3);
        }
    }
}
