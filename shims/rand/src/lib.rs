//! Minimal, dependency-free stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `rand` the reproduction actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic and
//! statistically sound for simulation workloads. It does **not** reproduce
//! upstream `StdRng`'s stream; nothing in the workspace relies on
//! cross-crate seed stability, only on within-build determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next random word.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a random word to `[0, 1)` with 24 bits of precision.
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut G,
            ) -> Self {
                // i128 arithmetic survives the full u64/i64 domains.
                let lo_w = lo as i128;
                let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                let span = (hi_w - lo_w) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
        if inclusive {
            assert!(lo <= hi, "cannot sample from empty range");
            // Closed unit interval so `hi` is reachable, matching rand's
            // `lo..=hi` semantics.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + (hi - lo) * unit
        } else {
            assert!(lo < hi, "cannot sample from empty range");
            lo + (hi - lo) * unit_f64(rng.next_u64())
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
        if inclusive {
            assert!(lo <= hi, "cannot sample from empty range");
            let unit = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32;
            lo + (hi - lo) * unit
        } else {
            assert!(lo < hi, "cannot sample from empty range");
            lo + (hi - lo) * unit_f32(rng.next_u64())
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn inclusive_float_range_accepts_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        // `x..=x` is a valid one-point range, as in upstream rand.
        assert_eq!(rng.gen_range(0.5f64..=0.5), 0.5);
        assert_eq!(rng.gen_range(0.25f32..=0.25), 0.25);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_half_open_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(1.0f32..1.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
