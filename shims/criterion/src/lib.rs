//! Offline mini benchmarking harness exposing the subset of the
//! `criterion` surface the `kernels` bench uses: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are wall-clock medians over `sample_size` timed samples —
//! good enough to rank kernels and catch order-of-magnitude regressions,
//! with no statistics, plotting, or crates.io dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How costly batch setup is relative to the routine; the mini harness
/// times per-input regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; upstream batches many per allocation.
    SmallInput,
    /// Setup output is large; upstream batches few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver handed to each registered function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        b.per_iter.sort_unstable();
        let median = b
            .per_iter
            .get(b.per_iter.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "bench: {id:<40} median {median:>12.3?} ({} samples)",
            b.per_iter.len()
        );
        self
    }
}

/// Times the routine under test.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up to populate caches and lazy state.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.per_iter.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.per_iter.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group: a function invoking each target with a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 3 timed samples + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
