//! Object detection with a ReBranch backbone (the Fig. 12 experiment).
//!
//! Pretrains a tiny YOLO-style detector on a COCO stand-in task, then
//! transfers it to a VOC-like target three ways and reports mAP@0.5.
//!
//! Run with `cargo run --release --example object_detection`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::detector::{
    eval_map, pretrain_detector, train_detector, DetectionSuite, DetectorStrategy,
};
use yoloc::tensor::LayerExt;

fn main() {
    let seed = 33;
    let suite = DetectionSuite::new(seed);
    println!("Pretraining on '{}' ...", suite.coco_like.name);
    let base = pretrain_detector(&[16, 24, 32], &suite, 700, seed);

    let task = &suite.voc_like;
    println!(
        "Transferring to '{}' ({} classes)\n",
        task.name, task.classes
    );
    for (label, strategy) in [
        ("All layers trainable (SRAM-CiM)", DetectorStrategy::AllSram),
        (
            "Only prediction trainable",
            DetectorStrategy::PredictionOnly,
        ),
        (
            "ReBranch backbone (YOLoC)",
            DetectorStrategy::ReBranch { d: 4, u: 4 },
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let mut det = base.with_strategy(strategy, task.classes, &mut rng);
        let trainable = det.trainable_param_count();
        let total = det.param_count();
        train_detector(&mut det, task, 550, 16, 0.05, &mut rng);
        let map = eval_map(&mut det, task, 50, &mut rng);
        println!(
            "{label:<34} mAP@0.5 = {:>5.1}%   trainable {trainable}/{total} params",
            100.0 * map
        );
    }
    println!(
        "\nExpected shape (paper Fig. 12): ReBranch recovers the all-trainable mAP \
         while training ~1/16 of the backbone weights; prediction-only lags."
    );
}
