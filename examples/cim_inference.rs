//! Deploy a convolution on the analog ROM-CiM macro (the Fig. 5/9
//! datapath) and compare against the floating-point software result.
//!
//! Run with `cargo run --release --example cim_inference`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::cim::macro_model::MacroParams;
use yoloc::core::qconv::CimConv2d;
use yoloc::tensor::ops::conv2d_reference;
use yoloc::tensor::Tensor;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let weight = Tensor::randn(&[8, 3, 3, 3], 0.0, 0.4, &mut rng);
    let image = Tensor::rand_uniform(&[1, 3, 12, 12], 0.0, 1.0, &mut rng);

    // Compile: per-channel 8-bit quantization, bit-plane decomposition,
    // mask-programming into 128x256 subarrays.
    let conv = CimConv2d::compile(&weight, 1, 1, &[&image], MacroParams::rom_paper());
    println!(
        "compiled conv 3x3x3->8 onto {} ROM-CiM subarray(s)",
        conv.subarrays()
    );

    let (cim_out, stats) = conv.forward(&image, &mut rng);
    let sw_out = conv2d_reference(&image, &weight, None, 1, 1);

    let mag = sw_out.abs_max();
    let max_err = cim_out
        .data()
        .iter()
        .zip(sw_out.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "max |CiM - software| = {max_err:.4} ({:.2}% of range)",
        100.0 * max_err / mag
    );
    println!(
        "macro activity: {} analog evaluations, {} ADC conversions, {} WL pulses",
        stats.analog_evaluations, stats.adc_conversions, stats.wl_pulses
    );
    println!(
        "energy {:.1} nJ, latency {:.1} us (serial, single macro)",
        stats.energy_pj / 1e3,
        stats.latency_ns / 1e3
    );
    println!(
        "\nThe 5-bit ADC with 10 simultaneously-activated rows resolves every \
         discharge count exactly, so the only error is 8-bit quantization — the \
         macro-level basis of the paper's accuracy claims."
    );
}
