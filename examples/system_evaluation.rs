//! System-level evaluation (the Fig. 13/14 experiment): compare YOLoC,
//! an iso-area single-chip SRAM-CiM accelerator, and an SRAM-CiM chiplet
//! system on the full-size YOLO (DarkNet-19) model.
//!
//! Run with `cargo run --release --example system_evaluation`.

use yoloc::core::system::{evaluate, SystemKind, SystemParams};
use yoloc::models::zoo;

fn main() {
    let p = SystemParams::paper_default();
    let yolo = zoo::yolo_v2(20, 5);
    println!(
        "YOLO (DarkNet-19 backbone): {:.1} M weights, {:.1} GMACs per 416x416 frame\n",
        yolo.param_count() as f64 / 1e6,
        yolo.macs().expect("consistent network") as f64 / 1e9
    );

    let yoloc = evaluate(&yolo, SystemKind::Yoloc, &p).expect("yoloc");
    let iso = yoloc.area.total_mm2() - yoloc.area.buffer_mm2;
    let single = evaluate(
        &yolo,
        SystemKind::SramSingleChip {
            cim_area_mm2: Some(iso),
        },
        &p,
    )
    .expect("single chip");
    let chiplet = evaluate(&yolo, SystemKind::SramChiplet { chips: None }, &p).expect("chiplets");

    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>14}",
        "system", "area cm2", "energy uJ", "latency ms", "eff TOPS/W"
    );
    for r in [&yoloc, &single, &chiplet] {
        println!(
            "{:<26} {:>10.2} {:>12.1} {:>12.2} {:>14.2}",
            r.system,
            r.area.total_mm2() / 100.0,
            r.energy.total_uj(),
            r.latency_ms,
            r.energy_eff_tops_w
        );
    }
    println!(
        "\nYOLoC vs iso-area SRAM-CiM chip : {:.1}x energy-efficiency improvement",
        yoloc.energy_eff_tops_w / single.energy_eff_tops_w
    );
    println!(
        "YOLoC vs chiplet system         : {:.1}x smaller, {:+.1}% energy efficiency",
        chiplet.area.total_mm2() / yoloc.area.total_mm2(),
        100.0 * (yoloc.energy_eff_tops_w / chiplet.energy_eff_tops_w - 1.0)
    );
    println!(
        "Single-chip SRAM-CiM DRAM traffic: {:.0} Mb per inference ({:.0}% of energy)",
        single.dram_traffic_bits as f64 / 1e6,
        100.0 * single.energy.dram_share()
    );
}
