//! Quickstart: the 60-second tour of the YOLoC reproduction.
//!
//! 1. Inspect the ROM-CiM macro specification (Table I).
//! 2. Program a quantized weight matrix into the analog macro and verify
//!    the bit-serial datapath against the integer reference.
//! 3. Wrap a pretrained convolution in a ReBranch and watch it learn a
//!    residual while the trunk stays frozen.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::cim::macro_model::{reference_mvm, MacroParams, RomMvm};
use yoloc::core::rebranch::{ReBranchConv, ReBranchRatios};
use yoloc::tensor::{Layer, Tensor};

fn main() {
    // --- 1. Table I, computed from circuit parameters -------------------
    let spec = MacroParams::rom_paper().spec();
    println!("ROM-CiM macro ({}):", spec.process);
    println!("  capacity        : {:.2} Mb", spec.macro_size_mb);
    println!("  area            : {:.3} mm2", spec.macro_area_mm2);
    println!("  density         : {:.2} Mb/mm2", spec.density_mb_per_mm2);
    println!("  throughput      : {:.1} GOPS", spec.throughput_gops);
    println!(
        "  energy efficiency: {:.1} TOPS/W",
        spec.energy_efficiency_tops_w
    );

    // --- 2. Functional MVM through the analog datapath ------------------
    let mut rng = StdRng::seed_from_u64(1);
    let (outs, ins) = (8, 128);
    let weights: Vec<i32> = (0..outs * ins)
        .map(|i| ((i * 37) % 255) as i32 - 127)
        .collect();
    let acts: Vec<i32> = (0..ins).map(|i| ((i * 11) % 256) as i32).collect();
    let engine = RomMvm::program(MacroParams::rom_paper(), &weights, outs, ins);
    let (y, stats) = engine.mvm(&acts, &mut rng);
    let golden = reference_mvm(&weights, outs, ins, &acts);
    assert_eq!(y, golden, "5-bit ADC design point is bit-exact");
    println!(
        "\nMacro MVM: {} outputs exact vs integer reference; {} analog \
         evaluations, {:.1} pJ, {:.1} ns",
        outs, stats.analog_evaluations, stats.energy_pj, stats.latency_ns
    );

    // --- 3. ReBranch: frozen trunk + trainable residual ----------------
    let trunk_w = Tensor::randn(&[8, 8, 3, 3], 0.0, 0.3, &mut rng);
    let mut rb = ReBranchConv::from_pretrained(
        "demo",
        trunk_w,
        None,
        1,
        1,
        ReBranchRatios::paper_default(),
        &mut rng,
    );
    println!(
        "\nReBranch: {} ROM weights (fixed at mask time), {} SRAM weights \
         (trainable) = {:.1}x compression of the trainable set",
        rb.rom_param_count(),
        rb.sram_param_count(),
        rb.trunk().weight.len() as f64 / rb.sram_param_count() as f64
    );
    let x = Tensor::randn(&[2, 8, 8, 8], 0.0, 1.0, &mut rng);
    let y0 = rb.forward(&x, false);
    // A freshly wrapped layer computes exactly the pretrained trunk.
    println!(
        "zero-initialized branch: output equals the ROM trunk (max dev {:.2e})",
        {
            let mut trunk_only = rb.forward(&x, false);
            trunk_only = trunk_only.sub(&y0);
            trunk_only.abs_max()
        }
    );
    // One SGD step moves only the residual conv.
    let target = y0.map(|v| v * 1.1);
    let (loss, grad) = yoloc::tensor::loss::mse(&rb.forward(&x, true), &target);
    rb.backward(&grad);
    yoloc::tensor::optim::Sgd::new(0.1).step(&mut rb.params_mut());
    println!("after one SGD step on the branch: loss was {loss:.4}; trunk untouched.");
}
