//! Transfer learning with ReBranch (the Fig. 10 experiment, one target).
//!
//! Pretrains a small VGG-style model on the broad synthetic task, then
//! deploys it on a far-domain target under four strategies and prints the
//! accuracy/area trade-off the paper's Fig. 10 reports.
//!
//! Run with `cargo run --release --example transfer_learning`.

use yoloc::core::rebranch::ReBranchRatios;
use yoloc::core::strategies::{evaluate_strategy, pretrain_base, Strategy, TrainConfig};
use yoloc::core::tiny_models::{default_channels, Family};
use yoloc::data::classification::TransferSuite;

fn main() {
    let seed = 2024;
    let suite = TransferSuite::new(seed);
    println!(
        "Pretraining a {}-class base model on '{}' ...",
        suite.pretrain.classes(),
        suite.pretrain.name
    );
    let base = pretrain_base(
        Family::Vgg,
        &default_channels(),
        &suite.pretrain,
        TrainConfig::pretrain(),
        seed,
    );

    let target = &suite.caltech_like;
    println!(
        "Transferring to far-domain target '{}' ({} classes)\n",
        target.name,
        target.classes()
    );
    let strategies = [
        Strategy::AllSram,
        Strategy::AllRom,
        Strategy::Atl { trainable_tail: 1 },
        Strategy::ReBranch(ReBranchRatios::paper_default()),
    ];
    println!(
        "{:<24} {:>9} {:>12} {:>12} {:>10}",
        "strategy", "accuracy", "ROM bits", "SRAM bits", "area mm2"
    );
    let mut all_sram_area = None;
    for (i, &s) in strategies.iter().enumerate() {
        let r = evaluate_strategy(&base, target, s, TrainConfig::transfer(), seed + i as u64);
        if matches!(s, Strategy::AllSram) {
            all_sram_area = Some(r.area_mm2);
        }
        println!(
            "{:<24} {:>8.1}% {:>12} {:>12} {:>10.4}",
            r.strategy,
            100.0 * r.accuracy,
            r.rom_bits,
            r.sram_bits,
            r.area_mm2
        );
        if let Some(base_area) = all_sram_area {
            if !matches!(s, Strategy::AllSram) {
                println!(
                    "{:<24} area = {:.2}x smaller than All-SRAM",
                    "",
                    base_area / r.area_mm2
                );
            }
        }
    }
    println!(
        "\nExpected shape (paper Fig. 10): ReBranch tracks All-SRAM accuracy at a \
         fraction of the SRAM-CiM area; All-ROM collapses on far domains."
    );
}
