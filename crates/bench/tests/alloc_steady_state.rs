//! The zero-allocation gate: after warm-up, inference through a reused
//! `ExecArena` must never touch the heap — not one allocation per call.
//!
//! This file intentionally holds a single test so no sibling test thread
//! allocates concurrently while the counter window is open (the counting
//! allocator in `yoloc_bench::alloc_track` counts process-wide).

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::alloc_track::allocations;
use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
use yoloc_models::zoo;
use yoloc_tensor::Tensor;

#[test]
fn steady_state_inference_allocates_nothing() {
    // Three representative graph families: plain feed-forward with
    // fused pool epilogues, residuals with projections, and the YOLO
    // passthrough head.
    let nets = [
        zoo::scaled(&zoo::vgg8(3), 16, (16, 16)),
        zoo::scaled(&zoo::resnet18(3), 16, (32, 32)),
        zoo::scaled(&zoo::tiny_yolo(4, 2), 16, (32, 32)),
    ];
    for desc in &nets {
        let net = CompiledNetwork::compile_random(desc, 7, CompileOptions::paper_default())
            .expect("zoo network compiles");
        let (c, h, w) = net.input_shape();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
        let mut arena = net.take_arena();
        // Warm-up: grows every slot and scratch buffer to its steady
        // footprint for this input shape.
        for _ in 0..2 {
            let (y, r) = net.infer_in(&x, &mut rng, &mut arena);
            std::hint::black_box((y.data()[0], r.latency_ns));
        }
        let before = allocations();
        for _ in 0..5 {
            let (y, r) = net.infer_in(&x, &mut rng, &mut arena);
            std::hint::black_box((y.data()[0], r.latency_ns));
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{}: steady-state inference touched the allocator {} time(s)",
            desc.name,
            after - before
        );
        net.give_arena(arena);
    }
}
