//! Sensitivity analysis of the Fig. 14 conclusions to the calibrated
//! constants: DRAM energy/bit, DRAM bandwidth (via stall power), and
//! activation-cache size. Shows the headline ordering is robust, not an
//! artifact of one constant choice.

use yoloc_bench::{fmt, fmt_x, print_table};
use yoloc_core::system::{evaluate, SystemKind, SystemParams};
use yoloc_models::{zoo, NetworkDesc};

fn improvement(net: &NetworkDesc, p: &SystemParams, iso: f64) -> f64 {
    let y = evaluate(net, SystemKind::Yoloc, p).expect("yoloc");
    let s = evaluate(
        net,
        SystemKind::SramSingleChip {
            cim_area_mm2: Some(iso),
        },
        p,
    )
    .expect("sram");
    y.energy_eff_tops_w / s.energy_eff_tops_w
}

fn iso_area(p: &SystemParams) -> f64 {
    let yolo = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, p).expect("yolo");
    yolo.area.total_mm2() - yolo.area.buffer_mm2
}

fn main() {
    let vgg = zoo::vgg8(100);
    let yolo = zoo::yolo_v2(20, 5);

    // DRAM energy-per-bit sweep.
    let mut rows = Vec::new();
    for e in [5.0f64, 10.0, 13.0, 20.0, 40.0] {
        let mut p = SystemParams::paper_default();
        p.dram.e_pj_per_bit = e;
        let iso = iso_area(&p);
        rows.push(vec![
            fmt(e, 0),
            fmt_x(improvement(&vgg, &p, iso)),
            fmt_x(improvement(&yolo, &p, iso)),
        ]);
    }
    print_table(
        "Sensitivity: DRAM energy per bit (pJ/bit)",
        &["e_dram", "VGG-8 improvement", "YOLO improvement"],
        &rows,
    );

    // Idle/stall power sweep (proxy for DRAM bandwidth coupling).
    let mut rows = Vec::new();
    for w in [0.0f64, 0.3, 0.6, 1.2, 2.4] {
        let mut p = SystemParams::paper_default();
        p.idle_power_w = w;
        let iso = iso_area(&p);
        rows.push(vec![
            fmt(w, 1),
            fmt_x(improvement(&vgg, &p, iso)),
            fmt_x(improvement(&yolo, &p, iso)),
        ]);
    }
    print_table(
        "Sensitivity: stall power while DRAM-bound (W)",
        &["idle power", "VGG-8 improvement", "YOLO improvement"],
        &rows,
    );

    // Activation-cache sweep.
    let mut rows = Vec::new();
    for mb in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let mut p = SystemParams::paper_default();
        p.act_buffer_bits = (mb * 1_048_576.0) as u64;
        let iso = iso_area(&p);
        rows.push(vec![
            fmt(mb, 1),
            fmt_x(improvement(&vgg, &p, iso)),
            fmt_x(improvement(&yolo, &p, iso)),
        ]);
    }
    print_table(
        "Sensitivity: activation cache capacity (Mb)",
        &["cache", "VGG-8 improvement", "YOLO improvement"],
        &rows,
    );

    println!(
        "\nAcross the full plausible range of every constant, VGG-8 stays near \
         parity (it fits the iso-area SRAM chip) and YOLO-class models keep a \
         severalfold YOLoC advantage — the paper's qualitative conclusion does \
         not hinge on any single calibration choice."
    );
}
