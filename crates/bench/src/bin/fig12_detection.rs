//! Fig. 12: object detection under transfer — mAP on VOC-like targets for
//! the SRAM-CiM baseline, Tiny-YOLO, prediction-only transfer (Option II)
//! and YOLoC (ReBranch), plus the full-size chip-area comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::{fmt, pct, print_table, run_parallel, smoke_or};
use yoloc_core::detector::{
    eval_map, pretrain_detector, train_detector, DetectionSuite, DetectorStrategy,
};
use yoloc_core::system::{evaluate, SystemKind, SystemParams};
use yoloc_models::zoo;

fn main() {
    let seed = 33;
    let suite = DetectionSuite::new(seed);
    let channels = [16usize, 24, 32];
    println!("Pretraining COCO-like base detector ...");
    let base = pretrain_detector(&channels, &suite, smoke_or(40, 700), seed);

    let targets = [
        (&suite.voc_like, "COCO->VOC-like"),
        (&suite.pedestrian_like, "COCO->Pedestrian"),
        (&suite.traffic_like, "COCO->Traffic"),
    ];
    let strategies = [
        (
            "All layers trainable (SRAM-CiM)",
            Some(DetectorStrategy::AllSram),
        ),
        (
            "Only prediction trainable (Option II)",
            Some(DetectorStrategy::PredictionOnly),
        ),
        (
            "Proposed ReBranch (Option IV / YOLoC)",
            Some(DetectorStrategy::ReBranch { d: 4, u: 4 }),
        ),
        ("Tiny-YOLO (smaller backbone, all trainable)", None),
    ];

    // Every (strategy, target) cell is an independent transfer run on its
    // own seed; fan the grid out in one go.
    let base_ref = &base;
    let maps = {
        let jobs: Vec<_> = strategies
            .iter()
            .flat_map(|&(_, strategy)| {
                targets.iter().enumerate().map(move |(ti, (task, _))| {
                    move || {
                        let mut rng = StdRng::seed_from_u64(seed + 100 + ti as u64);
                        match strategy {
                            Some(s) => {
                                let mut det = base_ref.with_strategy(s, task.classes, &mut rng);
                                train_detector(
                                    &mut det,
                                    task,
                                    smoke_or(40, 550),
                                    16,
                                    0.05,
                                    &mut rng,
                                );
                                eval_map(&mut det, task, smoke_or(12, 60), &mut rng)
                            }
                            None => {
                                // Tiny-YOLO: smaller backbone from scratch.
                                let mut det = yoloc_core::detector::TinyYoloDetector::new(
                                    &[8, 12, 16],
                                    task.classes,
                                    &mut rng,
                                );
                                train_detector(
                                    &mut det,
                                    task,
                                    smoke_or(40, 550),
                                    16,
                                    0.05,
                                    &mut rng,
                                );
                                eval_map(&mut det, task, smoke_or(12, 60), &mut rng)
                            }
                        }
                    }
                })
            })
            .collect();
        run_parallel(jobs)
    };
    let mut rows = Vec::new();
    for (si, (label, _)) in strategies.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for ti in 0..targets.len() {
            row.push(pct(maps[si * targets.len() + ti] as f64));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 12 (mAP table): detection transfer",
        &["Method", targets[0].1, targets[1].1, targets[2].1],
        &rows,
    );

    // Chip-area comparison on the full-size models (Fig. 12 bar chart).
    let p = SystemParams::paper_default();
    let yolo = zoo::yolo_v2(20, 5);
    let tiny = zoo::tiny_yolo(20, 5);
    let yoloc = evaluate(&yolo, SystemKind::Yoloc, &p).expect("yoloc");
    let sram_fit_area = yolo.weight_bits(8) as f64 / 1_048_576.0 / p.sram.spec().density_mb_per_mm2;
    let tiny_fit_area = tiny.weight_bits(8) as f64 / 1_048_576.0 / p.sram.spec().density_mb_per_mm2;
    // Deep-Conv keeps all but the last conv group in ROM.
    let deep_conv_area = {
        let rom_bits = yolo.weight_bits(8) * 9 / 10;
        let sram_bits = yolo.weight_bits(8) / 10;
        rom_bits as f64 / 1_048_576.0 / p.rom.spec().density_mb_per_mm2
            + sram_bits as f64 / 1_048_576.0 / p.sram.spec().density_mb_per_mm2
    };
    let area_rows = vec![
        vec![
            "SRAM-CiM (YOLO, all weights fit)".into(),
            fmt(sram_fit_area / 100.0, 2),
            yoloc_bench::fmt_x(sram_fit_area / yoloc.area.total_mm2()),
        ],
        vec![
            "Tiny-YOLO (SRAM-CiM, all weights fit)".into(),
            fmt(tiny_fit_area / 100.0, 2),
            yoloc_bench::fmt_x(tiny_fit_area / yoloc.area.total_mm2()),
        ],
        vec![
            "Deep-Conv (Option II)".into(),
            fmt(deep_conv_area / 100.0, 2),
            yoloc_bench::fmt_x(deep_conv_area / yoloc.area.total_mm2()),
        ],
        vec![
            "YOLoC (proposed)".into(),
            fmt(yoloc.area.total_mm2() / 100.0, 2),
            "1.0x (ref)".into(),
        ],
    ];
    print_table(
        "Fig. 12 (area): chip area to hold all weights",
        &["Method", "Chip area (cm2)", "vs YOLoC"],
        &area_rows,
    );
    println!(
        "\nPaper: YOLoC chip area is 9.7x below the all-weights-fit SRAM-CiM YOLO \
         chip and 2.4x below Tiny-YOLO's; mAP: ReBranch 81.4% vs SRAM-CiM 81.2% \
         (COCO->VOC), with Option II at 78.3% and Tiny-YOLO at 70.7%."
    );
}
