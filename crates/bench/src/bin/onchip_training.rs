//! Extension experiment (paper §3.3): on-chip training overhead of
//! adapting a deployed model — full SRAM-CiM training \[8\] vs ReBranch-only
//! vs head-only updates.

use yoloc_bench::{fmt, fmt_x, print_table};
use yoloc_core::system::SystemParams;
use yoloc_core::training_cost::{training_step_cost, TrainableSet};
use yoloc_models::zoo;

fn main() {
    let p = SystemParams::paper_default();
    let models = [
        zoo::vgg8(100),
        zoo::resnet18(100),
        zoo::tiny_yolo(20, 5),
        zoo::yolo_v2(20, 5),
    ];
    let mut rows = Vec::new();
    for net in &models {
        let all = training_step_cost(net, TrainableSet::All, &p).expect("consistent");
        let rb = training_step_cost(net, TrainableSet::ReBranchOnly, &p).expect("consistent");
        let head = training_step_cost(net, TrainableSet::HeadOnly, &p).expect("consistent");
        rows.push(vec![
            net.name.clone(),
            format!("{:.1} M", all.updated_params as f64 / 1e6),
            format!("{:.2} M", rb.updated_params as f64 / 1e6),
            fmt(all.total_uj(), 1),
            fmt(rb.total_uj(), 1),
            fmt(head.total_uj(), 1),
            fmt_x(all.total_uj() / rb.total_uj()),
        ]);
    }
    print_table(
        "On-chip training: one SGD step (batch 1)",
        &[
            "Model",
            "Updated params (all)",
            "Updated params (ReBranch)",
            "All-trainable energy (uJ)",
            "ReBranch energy (uJ)",
            "Head-only energy (uJ)",
            "ReBranch saving",
        ],
        &rows,
    );
    println!(
        "\nPaper §3.3: storing >90% of weights in ROM 'provides a chance to \
         greatly reduce the on-chip training overhead'. The saving comes from \
         the skipped weight-gradient MACs and the ~16x fewer SRAM-CiM array \
         update writes; the forward and input-gradient passes are unavoidable."
    );
}
