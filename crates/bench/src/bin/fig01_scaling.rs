//! Fig. 1(a): SRAM density vs tape-out cost across technology nodes, and
//! where the 28 nm ROM-CiM design point sits.

use yoloc_bench::{fmt, fmt_x, print_table};
use yoloc_cim::technology::{node, node_matching_density, ROM_CIM_28NM_DENSITY_MB_MM2, TECH_NODES};

fn main() {
    let rows: Vec<Vec<String>> = TECH_NODES
        .iter()
        .map(|n| {
            vec![
                format!("{} nm", n.node_nm),
                fmt(n.sram_density_mb_mm2, 2),
                fmt(n.tapeout_cost_norm, 1),
            ]
        })
        .collect();
    print_table(
        "Fig. 1(a): SRAM density and normalized tape-out cost vs process node",
        &["Node", "SRAM density (Mb/mm2)", "Tape-out cost (norm.)"],
        &rows,
    );

    let n28 = node(28).expect("28 nm in table");
    println!(
        "\nROM-CiM (this work) at 28 nm: {ROM_CIM_28NM_DENSITY_MB_MM2:.1} Mb/mm2 of \
         compute-capable memory = {} the plain 28 nm SRAM density.",
        fmt_x(ROM_CIM_28NM_DENSITY_MB_MM2 / n28.sram_density_mb_mm2)
    );
    if let Some(m) = node_matching_density(ROM_CIM_28NM_DENSITY_MB_MM2) {
        println!(
            "Matching that density with plain SRAM requires the {} nm node, whose \
             tape-out cost is {} the 28 nm cost — the scaling argument of Fig. 1(a).",
            m.node_nm,
            fmt_x(m.tapeout_cost_norm / n28.tapeout_cost_norm)
        );
    }
}
