//! Fault-injection benchmark: `BENCH_faults.json` writer and schema
//! gate.
//!
//! Two experiments, both pure functions of their seeds:
//!
//! 1. **Accuracy vs fault rate** — the zoo's VGG compiled at a sweep
//!    of uniform fault rates (stuck ROM bits, dead subarrays, faulty
//!    ADC columns, degraded links); each faulted deployment classifies
//!    a fixed random input batch and is scored against the pristine
//!    deployment: top-1 agreement, exact-logit match fraction, mean
//!    absolute logit deviation. Rate 0 must score perfect agreement —
//!    the zero-fault path is bit-identical by construction.
//! 2. **Detect / repair / recover** — the `chaos_sim` scenario as a
//!    measurement: a faulty twin is injected into a health-monitored
//!    [`Broker`] mid-trace, and the report records the canary's
//!    detection latency, the repair (quarantine) time, the requests
//!    lost while degraded, the retry volume, and — via captures
//!    checked against the pristine oracle — that **zero** corrupt
//!    responses were released.
//!
//! Usage:
//!
//! * `bench_faults` — full run, writes `BENCH_faults.json` (under
//!   `--smoke`/`YOLOC_SMOKE=1`: tiny config, writes
//!   `target/BENCH_faults.smoke.json`, committed baseline untouched);
//! * `bench_faults --smoke --check-schema` — smoke run, then validate
//!   the report it just wrote (the CI gate);
//! * `bench_faults --check-schema [PATH]` — validate an existing
//!   report (default `BENCH_faults.json`) without running anything.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use serde::Serialize;
use yoloc_bench::report::Json;
use yoloc_bench::{print_table, smoke};
use yoloc_cim::FaultSpec;
use yoloc_core::compiler::{CompileOptions, CompiledNetwork, FaultConfig};
use yoloc_core::engine::{sample_stream_seed, WorkerPool};
use yoloc_core::serve::{
    AdmissionPolicy, ArrivalPattern, Broker, BrokerConfig, Disposition, HealthConfig, LoadGen,
    TenantConfig, TrafficSpec, VirtualClock,
};
use yoloc_models::{zoo, NetworkDesc};
use yoloc_tensor::Tensor;

const SCHEMA: &str = "yoloc-bench-faults/1";
const COMPILE_SEED: u64 = 2022;
const FAULT_SEED: u64 = 5;
const LOADGEN_SEED: u64 = 29;
const INFER_SEED: u64 = 0xFA17_CA57;
const CHAOS_AT_NS: u64 = 600_000;
const REPAIR_NS: u64 = 1_000_000;
const SPARES: u64 = 4;

fn bench_desc() -> NetworkDesc {
    if smoke() {
        zoo::scaled(&zoo::vgg8(3), 16, (16, 16))
    } else {
        zoo::scaled(&zoo::vgg8(8), 16, (16, 16))
    }
}

fn fault_rates() -> Vec<f64> {
    if smoke() {
        vec![0.0, 1e-3, 1e-2]
    } else {
        vec![0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2]
    }
}

fn eval_batch() -> usize {
    if smoke() {
        4
    } else {
        16
    }
}

fn compile_at_rate(desc: &NetworkDesc, rate: f64) -> CompiledNetwork {
    let mut opts = CompileOptions::paper_default();
    if rate > 0.0 {
        opts.faults = Some(FaultConfig::sized(
            FaultSpec::uniform(FAULT_SEED, rate),
            SPARES,
        ));
    } else {
        opts.faults = Some(FaultConfig::sized(FaultSpec::none(), SPARES));
    }
    CompiledNetwork::compile_random(desc, COMPILE_SEED, opts).expect("faulted compile")
}

/// One point of the accuracy-vs-fault-rate curve.
struct CurvePoint {
    rate: f64,
    dead_subarrays: u64,
    top1_agreement: f64,
    exact_match_fraction: f64,
    mean_abs_dev: f64,
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

fn fault_curve(desc: &NetworkDesc) -> Vec<CurvePoint> {
    let pristine =
        CompiledNetwork::compile_random(desc, COMPILE_SEED, CompileOptions::paper_default())
            .expect("pristine compile");
    let (c, h, w) = pristine.input_shape();
    let inputs: Vec<Tensor> = (0..eval_batch())
        .map(|i| {
            Tensor::rand_uniform(
                &[1, c, h, w],
                0.0,
                1.0,
                &mut StdRng::seed_from_u64(sample_stream_seed(COMPILE_SEED, i)),
            )
        })
        .collect();
    let reference: Vec<Vec<f32>> = inputs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut rng = StdRng::seed_from_u64(sample_stream_seed(INFER_SEED, i));
            pristine.infer(x, &mut rng).0.data().to_vec()
        })
        .collect();

    fault_rates()
        .into_iter()
        .map(|rate| {
            let net = compile_at_rate(desc, rate);
            let dead = net.fault_map.as_ref().map_or(0, |fm| fm.dead.len() as u64);
            let mut top1 = 0usize;
            let mut exact = 0usize;
            let mut dev_sum = 0.0f64;
            let mut dev_n = 0usize;
            for (i, x) in inputs.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(sample_stream_seed(INFER_SEED, i));
                let y = net.infer(x, &mut rng).0.data().to_vec();
                let r = &reference[i];
                if argmax(&y) == argmax(r) {
                    top1 += 1;
                }
                if &y == r {
                    exact += 1;
                }
                for (a, b) in y.iter().zip(r) {
                    dev_sum += f64::from((a - b).abs());
                    dev_n += 1;
                }
            }
            CurvePoint {
                rate,
                dead_subarrays: dead,
                top1_agreement: top1 as f64 / inputs.len() as f64,
                exact_match_fraction: exact as f64 / inputs.len() as f64,
                mean_abs_dev: dev_sum / dev_n as f64,
            }
        })
        .collect()
}

/// The serving-layer chaos measurement.
struct ChaosOutcome {
    offered: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    timed_out: u64,
    retried: u64,
    probes: u64,
    detection_latency_ns: u64,
    recovery_ns: u64,
    lost_during_repair: u64,
    post_repair_completions: u64,
    corrupt_released: u64,
}

fn chaos_measurement(desc: &NetworkDesc) -> ChaosOutcome {
    let pristine =
        CompiledNetwork::compile_random(desc, COMPILE_SEED, CompileOptions::paper_default())
            .expect("pristine compile");
    let mut opts = CompileOptions::paper_default();
    opts.faults = Some(FaultConfig::sized(
        FaultSpec {
            stuck_rate: 0.02,
            dead_subarray_rate: 0.10,
            adc_fault_rate: 0.05,
            ..FaultSpec::uniform(FAULT_SEED, 0.0)
        },
        SPARES,
    ));
    let faulty = CompiledNetwork::compile_random(desc, COMPILE_SEED, opts).expect("twin compile");

    let trace = LoadGen::new(LOADGEN_SEED).trace(
        &[TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson {
                rate_rps: 100_000.0,
            },
            deadline_ns: None,
        }],
        if smoke() { 1_500_000 } else { 3_000_000 },
    );
    let out = WorkerPool::with(4, |pool| {
        let mut broker = Broker::new(
            VirtualClock::new(),
            BrokerConfig {
                infer_seed: INFER_SEED,
                batch_overhead_ns: 20_000,
                capture: true,
                health: Some(HealthConfig {
                    canary_period_ns: 100_000,
                    canary_seed: 0xCA_11A2,
                    max_retries: 3,
                    repair_ns: REPAIR_NS,
                }),
            },
        );
        broker.deploy(
            &desc.name,
            &pristine,
            TenantConfig {
                queue_cap: trace.len().max(1),
                admission: AdmissionPolicy::RejectNew,
                max_batch: 8,
                window_ns: 40_000,
            },
        );
        broker.inject_fault(0, CHAOS_AT_NS, &faulty);
        broker.run(&trace, pool)
    });

    let hs = &out.health[0];
    let detect = hs.failures_at_ns.first().copied().unwrap_or(0);
    let repair = hs.repairs_at_ns.first().copied().unwrap_or(detect);
    let lost_during_repair = out
        .outcomes
        .iter()
        .filter(|o| {
            matches!(o.disposition, Disposition::Shed | Disposition::TimedOut)
                && o.finish_ns >= detect
                && o.finish_ns <= repair
        })
        .count() as u64;
    let post_repair_completions = out
        .outcomes
        .iter()
        .filter(|o| o.disposition == Disposition::Completed && o.start_ns >= repair)
        .count() as u64;

    // Score every released capture against the pristine oracle: any
    // mismatch is a corrupt response that escaped the canary.
    let (c, h, w) = pristine.input_shape();
    let mut oracle: HashMap<u64, Vec<f32>> = HashMap::new();
    let mut arena = pristine.take_arena();
    for a in &trace {
        let x = Tensor::rand_uniform(
            &[1, c, h, w],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(a.input_seed),
        );
        let mut rng = StdRng::seed_from_u64(sample_stream_seed(INFER_SEED, a.id as usize));
        let (y, _) = pristine.infer_in(&x, &mut rng, &mut arena);
        oracle.insert(a.id, y.data().to_vec());
    }
    pristine.give_arena(arena);
    let corrupt_released = out
        .captures
        .iter()
        .filter(|cap| oracle.get(&cap.id).map(Vec::as_slice) != Some(cap.logits.as_slice()))
        .count() as u64;

    ChaosOutcome {
        offered: out.report.offered,
        completed: out.report.completed,
        shed: out.report.shed,
        rejected: out.report.rejected,
        timed_out: out.report.timed_out,
        retried: out.report.retried,
        probes: hs.probes,
        detection_latency_ns: detect.saturating_sub(CHAOS_AT_NS),
        recovery_ns: repair.saturating_sub(detect),
        lost_during_repair,
        post_repair_completions,
        corrupt_released,
    }
}

/// Appends `what` to `errs` when `ok` does not hold.
fn check(errs: &mut Vec<String>, ok: bool, what: String) {
    if !ok {
        errs.push(what);
    }
}

/// Validates one parsed report, returning every violation.
fn schema_violations(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    check(
        &mut errs,
        doc.get("schema").and_then(Json::as_str) == Some(SCHEMA),
        format!("schema must be {SCHEMA:?}"),
    );
    let curve = doc.get("fault_curve").and_then(Json::as_arr).unwrap_or(&[]);
    check(
        &mut errs,
        curve.len() >= 2,
        "fault_curve must sweep at least 2 rates".to_string(),
    );
    let mut prev_rate = f64::NEG_INFINITY;
    for (i, p) in curve.iter().enumerate() {
        let rate = p.get("rate").and_then(Json::as_num).unwrap_or(f64::NAN);
        check(
            &mut errs,
            rate > prev_rate,
            format!("fault_curve[{i}]: rates must be strictly increasing"),
        );
        prev_rate = rate;
        let top1 = p
            .get("top1_agreement")
            .and_then(Json::as_num)
            .unwrap_or(-1.0);
        check(
            &mut errs,
            (0.0..=1.0).contains(&top1),
            format!("fault_curve[{i}]: top1_agreement must be a fraction"),
        );
        if i == 0 {
            check(
                &mut errs,
                rate == 0.0,
                "fault_curve[0] must be the zero-fault baseline".to_string(),
            );
            check(
                &mut errs,
                p.get("exact_match_fraction").and_then(Json::as_num) == Some(1.0),
                "fault_curve[0]: the zero-fault deployment must match the pristine \
                 one bit-for-bit"
                    .to_string(),
            );
        }
    }
    let serving = doc.get("serving");
    let f = |k: &str| serving.and_then(|s| s.get(k)).and_then(Json::as_u64);
    match (
        f("offered"),
        f("completed"),
        f("shed"),
        f("rejected"),
        f("timed_out"),
    ) {
        (Some(o), Some(c), Some(s), Some(r), Some(t)) => {
            check(
                &mut errs,
                o > 0,
                "serving.offered must be positive".to_string(),
            );
            check(
                &mut errs,
                c + s + r + t == o,
                "completed + shed + rejected + timed_out must equal offered".to_string(),
            );
        }
        _ => errs.push("serving block must carry the five request counters".to_string()),
    }
    check(
        &mut errs,
        f("probes") > Some(0),
        "serving.probes: canaries must have run".to_string(),
    );
    check(
        &mut errs,
        f("recovery_ns") > Some(0),
        "serving.recovery_ns: the quarantine must lapse into a repair".to_string(),
    );
    check(
        &mut errs,
        f("detection_latency_ns").is_some(),
        "serving.detection_latency_ns must be recorded".to_string(),
    );
    check(
        &mut errs,
        f("retried") > Some(0),
        "serving.retried: the failed canary must void and retry work".to_string(),
    );
    check(
        &mut errs,
        f("post_repair_completions") > Some(0),
        "serving.post_repair_completions: service must recover after repair".to_string(),
    );
    check(
        &mut errs,
        f("corrupt_released") == Some(0),
        "serving.corrupt_released must be zero — no corrupt response may ship".to_string(),
    );
    errs
}

/// `--check-schema` mode: parse + validate a report file.
fn check_schema(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let errs = schema_violations(&doc);
    if errs.is_empty() {
        println!("{path}: schema {SCHEMA} OK ({} bytes)", text.len());
        std::process::exit(0);
    }
    eprintln!("{path}: {} schema violation(s):", errs.len());
    for e in &errs {
        eprintln!("  - {e}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_flag = args.iter().any(|a| a == "--smoke");
    let check_flag = args.iter().any(|a| a == "--check-schema");
    if smoke_flag {
        std::env::set_var("YOLOC_SMOKE", "1");
    }
    if check_flag && !smoke_flag {
        let path = args
            .iter()
            .skip_while(|a| *a != "--check-schema")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_faults.json".to_string());
        check_schema(&path);
    }

    let desc = bench_desc();
    println!("accuracy vs fault rate ({}) ...", desc.name);
    let curve = fault_curve(&desc);
    print_table(
        "Accuracy vs uniform fault rate (vs pristine deployment)",
        &[
            "Rate",
            "Dead subarrays",
            "Top-1 agree",
            "Exact",
            "Mean |dev|",
        ],
        &curve
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0e}", p.rate),
                    p.dead_subarrays.to_string(),
                    format!("{:.2}", p.top1_agreement),
                    format!("{:.2}", p.exact_match_fraction),
                    format!("{:.3e}", p.mean_abs_dev),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nchaos serving measurement (canary detect -> repair -> recover) ...");
    let chaos = chaos_measurement(&desc);
    print_table(
        "Fault detection and recovery (virtual clock)",
        &["Metric", "Value"],
        &[
            vec![
                "detection latency (us)".to_string(),
                format!("{:.1}", chaos.detection_latency_ns as f64 / 1e3),
            ],
            vec![
                "recovery / repair (us)".to_string(),
                format!("{:.1}", chaos.recovery_ns as f64 / 1e3),
            ],
            vec![
                "lost during repair".to_string(),
                chaos.lost_during_repair.to_string(),
            ],
            vec!["retried".to_string(), chaos.retried.to_string()],
            vec!["timed out".to_string(), chaos.timed_out.to_string()],
            vec![
                "post-repair completions".to_string(),
                chaos.post_repair_completions.to_string(),
            ],
            vec![
                "corrupt released".to_string(),
                chaos.corrupt_released.to_string(),
            ],
        ],
    );

    let doc = Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("smoke", Json::Bool(smoke())),
        ("model", Json::str(desc.name.clone())),
        ("fault_seed", FAULT_SEED.to_json()),
        (
            "fault_curve",
            Json::Arr(
                curve
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("rate", Json::Num(p.rate)),
                            ("dead_subarrays", p.dead_subarrays.to_json()),
                            ("top1_agreement", Json::Num(p.top1_agreement)),
                            ("exact_match_fraction", Json::Num(p.exact_match_fraction)),
                            ("mean_abs_dev", Json::Num(p.mean_abs_dev)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "serving",
            Json::obj([
                ("chaos_at_ns", CHAOS_AT_NS.to_json()),
                ("repair_ns", REPAIR_NS.to_json()),
                ("offered", chaos.offered.to_json()),
                ("completed", chaos.completed.to_json()),
                ("shed", chaos.shed.to_json()),
                ("rejected", chaos.rejected.to_json()),
                ("timed_out", chaos.timed_out.to_json()),
                ("retried", chaos.retried.to_json()),
                ("probes", chaos.probes.to_json()),
                ("detection_latency_ns", chaos.detection_latency_ns.to_json()),
                ("recovery_ns", chaos.recovery_ns.to_json()),
                ("lost_during_repair", chaos.lost_during_repair.to_json()),
                (
                    "post_repair_completions",
                    chaos.post_repair_completions.to_json(),
                ),
                ("corrupt_released", chaos.corrupt_released.to_json()),
            ]),
        ),
    ]);

    let path = if smoke() {
        "target/BENCH_faults.smoke.json".to_string()
    } else {
        args.iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_faults.json".to_string())
    };
    std::fs::write(&path, doc.render()).expect("write fault report");
    println!("\nwrote {path}");

    // Self-gate: the document we just wrote must satisfy its own
    // schema (this is what `--smoke --check-schema` runs in CI).
    let errs = schema_violations(&doc);
    if !errs.is_empty() {
        eprintln!("{path}: {} schema violation(s):", errs.len());
        for e in &errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    println!("{path}: schema {SCHEMA} OK");
}
