//! Fig. 4 / Fig. 2: the CiM bit-cell zoo — the proposed 1T ROM cell
//! against the published SRAM-CiM cells, with the paper's 14.5-29.5x
//! density-advantage range.

use yoloc_bench::{fmt, fmt_x, print_table};
use yoloc_cim::CellKind;

fn main() {
    let rows: Vec<Vec<String>> = CellKind::ALL
        .iter()
        .map(|&c| {
            vec![
                format!("{c:?}"),
                c.transistors().to_string(),
                fmt(c.area_um2(), 3),
                if c == CellKind::Rom1T {
                    "1.0 (ref)".to_string()
                } else {
                    fmt_x(c.rom_density_advantage())
                },
                if c.writable() { "yes" } else { "no (mask)" }.to_string(),
                if c.non_volatile() { "yes" } else { "no" }.to_string(),
                fmt(c.standby_leakage_pw(), 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 4: CiM bit-cell comparison at 28 nm",
        &[
            "Cell",
            "Transistors",
            "Area (um2/bit)",
            "ROM density advantage",
            "Writable",
            "Non-volatile",
            "Standby leakage (pW/cell)",
        ],
        &rows,
    );
    println!(
        "\nPaper: ROM cell density advantage over SRAM-CiM cells is 14.5-29.5x; the \
         compact-rule 6T reference is 16x and the ISSCC'21 [3] cell 18.5x."
    );
}
