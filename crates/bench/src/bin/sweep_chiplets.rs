//! Extension of Fig. 14(a): sweep the chiplet count for the SRAM-CiM
//! multi-chip baseline on YOLO, mapping the area/energy/latency frontier
//! YOLoC is compared against.

use yoloc_bench::{fmt, print_table};
use yoloc_core::system::{evaluate, SystemKind, SystemParams};
use yoloc_models::zoo;

fn main() {
    let p = SystemParams::paper_default();
    let yolo = zoo::yolo_v2(20, 5);
    let yoloc = evaluate(&yolo, SystemKind::Yoloc, &p).expect("yoloc");

    let mut rows = vec![vec![
        "YOLoC (1 chip)".to_string(),
        fmt(yoloc.area.total_mm2() / 100.0, 2),
        fmt(yoloc.energy.total_uj() / 1e3, 2),
        fmt(yoloc.latency_ms, 2),
        fmt(yoloc.energy_eff_tops_w, 2),
        "0".into(),
    ]];
    for chips in [2usize, 4, 6, 9, 12, 16] {
        let r =
            evaluate(&yolo, SystemKind::SramChiplet { chips: Some(chips) }, &p).expect("chiplet");
        rows.push(vec![
            r.system.clone(),
            fmt(r.area.total_mm2() / 100.0, 2),
            fmt(r.energy.total_uj() / 1e3, 2),
            fmt(r.latency_ms, 2),
            fmt(r.energy_eff_tops_w, 2),
            fmt(r.link_traffic_bits as f64 / 1e6, 1),
        ]);
    }
    print_table(
        "Chiplet-count sweep on YOLO (DarkNet-19)",
        &[
            "System",
            "Area (cm2)",
            "Energy (mJ/inf)",
            "Latency (ms)",
            "Eff. (TOPS/W)",
            "Link traffic (Mb/inf)",
        ],
        &rows,
    );
    println!(
        "\nMore chiplets shorten per-chip mapping but add link crossings; the \
         total silicon stays ~{}x the YOLoC chip no matter the partitioning — \
         the paper's area argument is partition-independent.",
        fmt(
            evaluate(&yolo, SystemKind::SramChiplet { chips: None }, &p)
                .expect("chiplet")
                .area
                .total_mm2()
                / yoloc.area.total_mm2(),
            1
        )
    );
}
