//! Extension of Fig. 14(a): sweep the chiplet count for the SRAM-CiM
//! multi-chip baseline on YOLO, mapping the area/energy/latency frontier
//! YOLoC is compared against.
//!
//! Part 2 complements the static model with **live** sharded execution:
//! a scaled YOLO graph is compiled under `MappingStrategy::Sharded` at
//! each chip count and actually executed, so the link traffic/energy and
//! the shard-topology latency come out of the measuring executor rather
//! than the closed-form system model.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::{fmt, print_table, smoke_or};
use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
use yoloc_core::mapping::MappingStrategy;
use yoloc_core::system::{evaluate, SystemKind, SystemParams};
use yoloc_models::zoo;
use yoloc_tensor::Tensor;

/// Live sharded execution of a scaled YOLO graph at each chip count.
fn live_shard_sweep() -> Vec<Vec<String>> {
    let desc = zoo::scaled(&zoo::yolo_v2(4, 2), smoke_or(32, 16), (64, 64));
    let chip_counts = smoke_or(vec![1usize, 4], vec![1usize, 2, 4, 8]);
    let mut rows = Vec::new();
    for chips in chip_counts {
        let mut opts = CompileOptions::paper_default();
        opts.mapping = MappingStrategy::Sharded { chips };
        let net = CompiledNetwork::compile_random(&desc, 2022, opts).expect("compile");
        let mut rng = StdRng::seed_from_u64(7);
        let (c, h, w) = net.input_shape();
        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
        let (_, report) = net.infer(&x, &mut rng);
        let shard = net.mapping.shard.as_ref().expect("shard plan");
        rows.push(vec![
            format!("{chips} chip(s)"),
            shard.subarrays_total.to_string(),
            shard.boundary_crossings.to_string(),
            fmt(report.link_traffic_bits as f64 / 1e3, 1),
            fmt(report.energy.link_uj, 3),
            fmt(report.latency_ns / 1e3, 1),
            fmt(report.energy.total_uj(), 2),
        ]);
    }
    rows
}

fn main() {
    let p = SystemParams::paper_default();
    let yolo = zoo::yolo_v2(20, 5);
    let yoloc = evaluate(&yolo, SystemKind::Yoloc, &p).expect("yoloc");

    let mut rows = vec![vec![
        "YOLoC (1 chip)".to_string(),
        fmt(yoloc.area.total_mm2() / 100.0, 2),
        fmt(yoloc.energy.total_uj() / 1e3, 2),
        fmt(yoloc.latency_ms, 2),
        fmt(yoloc.energy_eff_tops_w, 2),
        "0".into(),
    ]];
    for chips in [2usize, 4, 6, 9, 12, 16] {
        let r =
            evaluate(&yolo, SystemKind::SramChiplet { chips: Some(chips) }, &p).expect("chiplet");
        rows.push(vec![
            r.system.clone(),
            fmt(r.area.total_mm2() / 100.0, 2),
            fmt(r.energy.total_uj() / 1e3, 2),
            fmt(r.latency_ms, 2),
            fmt(r.energy_eff_tops_w, 2),
            fmt(r.link_traffic_bits as f64 / 1e6, 1),
        ]);
    }
    print_table(
        "Chiplet-count sweep on YOLO (DarkNet-19)",
        &[
            "System",
            "Area (cm2)",
            "Energy (mJ/inf)",
            "Latency (ms)",
            "Eff. (TOPS/W)",
            "Link traffic (Mb/inf)",
        ],
        &rows,
    );
    println!(
        "\nMore chiplets shorten per-chip mapping but add link crossings; the \
         total silicon stays ~{}x the YOLoC chip no matter the partitioning — \
         the paper's area argument is partition-independent.",
        fmt(
            evaluate(&yolo, SystemKind::SramChiplet { chips: None }, &p)
                .expect("chiplet")
                .area
                .total_mm2()
                / yoloc.area.total_mm2(),
            1
        )
    );

    print_table(
        "Live sharded execution (MappingStrategy::Sharded, measured by the executor)",
        &[
            "Shard",
            "Subarrays",
            "Die crossings",
            "Link traffic (kb/inf)",
            "Link energy (uJ/inf)",
            "Latency (us/inf)",
            "Total energy (uJ/inf)",
        ],
        &live_shard_sweep(),
    );
    println!(
        "\nThe live rows execute a scaled YOLO graph through the sharded \
         compiler: link traffic appears exactly at the die boundaries of \
         the shard plan and is priced per bit through the SIMBA-class \
         link, on top of each die's mesh NoC."
    );
}
