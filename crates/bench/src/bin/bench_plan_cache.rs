//! Cold-vs-warm plan-cache benchmark and `BENCH_engine.json` patcher.
//!
//! Measures, for every zoo network the engine harness covers, a **cold**
//! deploy (full graph compile + serialized-plan store) against a **warm**
//! deploy served from the content-addressed on-disk plan cache
//! ([`yoloc_core::compiler::cache`]), counting recompilations with the
//! process-wide [`yoloc_core::compiler::compile_count`] counter and
//! checking that the cached plan executes bit-identically to the fresh
//! compile. The measurement itself lives in
//! [`yoloc_bench::plan_cache`] and is shared with `bench_engine`.
//!
//! The resulting `plan_cache` block is **patched into** an existing
//! `BENCH_engine.json` (schema bumped to `yoloc-bench-engine/7`,
//! every other field preserved byte-for-byte — the shim's renderer
//! round-trips the committed report exactly), so the committed baseline
//! can pick up fresh plan-cache numbers without re-running the full
//! engine harness. Under `--smoke`/`YOLOC_SMOKE=1` the committed report
//! is left untouched: the block goes to
//! `target/BENCH_plan_cache.smoke.json` instead.
//!
//! Usage: `bench_plan_cache [--smoke] [PATH]` (default path
//! `BENCH_engine.json`).

use yoloc_bench::plan_cache::{measure_plan_cache, plan_cache_json, plan_cache_rows, zoo_nets};
use yoloc_bench::report::Json;
use yoloc_bench::{print_table, smoke};

const SEED: u64 = 2022;

/// Sets `key` in a JSON object, replacing an existing entry in place
/// (preserving its position) or appending a new one.
fn set_field(doc: &mut Json, key: &str, value: Json) {
    let Json::Obj(fields) = doc else {
        panic!("report root must be a JSON object");
    };
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => fields.push((key.to_string(), value)),
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // Let the library's smoke() see the flag-driven mode too.
        std::env::set_var("YOLOC_SMOKE", "1");
    }
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let entries = measure_plan_cache(&zoo_nets(), SEED + 7);
    print_table(
        "Content-addressed plan cache (cold compile vs warm disk deploy)",
        &[
            "Network",
            "Cold compile (ms)",
            "Warm deploy (ms)",
            "Speedup",
            "Compiles (cold/warm)",
            "Bit-identical",
        ],
        &plan_cache_rows(&entries),
    );
    let block = plan_cache_json(&entries);
    assert!(
        entries.iter().all(|e| e.compiles_warm == 0),
        "a warm deploy recompiled — the plan cache is broken"
    );
    assert!(
        entries.iter().all(|e| e.bit_identical),
        "a cached plan diverged from its cold compile"
    );

    if smoke() {
        // Smoke runs measure tiny configurations; never patch the
        // committed baseline with them.
        let out = "target/BENCH_plan_cache.smoke.json";
        let doc = Json::obj([("smoke", Json::Bool(true)), ("plan_cache", block)]);
        std::fs::write(out, doc.render()).expect("write smoke plan-cache report");
        println!("\nwrote {out} (smoke mode: committed baseline untouched)");
        return;
    }

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run bench_engine first)"));
    let mut doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    set_field(&mut doc, "schema", Json::str("yoloc-bench-engine/7"));
    set_field(&mut doc, "plan_cache", block);
    std::fs::write(&path, doc.render()).expect("write patched engine report");
    println!("\npatched {path}: schema yoloc-bench-engine/7, plan_cache block refreshed");
    println!("validate with: bench_engine --check-schema {path}");
}
