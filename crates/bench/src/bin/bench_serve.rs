//! Continuous-batching serving benchmark: `BENCH_serve.json` writer and
//! schema gate.
//!
//! Deploys the serving zoo twice through a content-addressed on-disk
//! [`PlanCache`] — a **cold** deploy (compile + store) and a **warm**
//! deploy from a fresh cache instance on the same directory (a server
//! restart served purely from disk, `compiles_warm == 0` counted with
//! the process-wide compile counter) — then serves a seeded mixed
//! traffic trace (Poisson + bursty + ramp streams across the resident
//! models) through the [`Broker`] on the virtual clock and writes the
//! aggregated [`ServeReport`](yoloc_core::serve::ServeReport) as
//! `BENCH_serve.json`, schema
//! `yoloc-bench-serve/2`.
//!
//! Every virtual-clock field in the report is a pure function of the
//! seeds (the simulated timeline never reads the host's clock or
//! entropy), so those fields regenerate byte-identically on any machine
//! — sustained QPS included, which is why a kernel-tier speedup cannot
//! move it. Schema v2 adds the one deliberate exception: a `measured`
//! block with the host wall-clock of the broker run
//! (`host_wall_serve_s`, `wall_completed_per_sec`), where the kernel
//! tier *does* show up. It is validated for presence and positivity
//! only, never for a specific value; wall-clock deploy timings still go
//! to stdout only.
//!
//! Usage:
//!
//! * `bench_serve` — full run, writes `BENCH_serve.json` (under
//!   `--smoke`/`YOLOC_SMOKE=1`: tiny config, writes
//!   `target/BENCH_serve.smoke.json`, committed baseline untouched);
//! * `bench_serve --smoke --check-schema` — smoke run, then validate
//!   the report it just wrote (the CI gate);
//! * `bench_serve --check-schema [PATH]` — validate an existing report
//!   (default `BENCH_serve.json`) without running anything.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use serde::Serialize;
use yoloc_bench::report::Json;
use yoloc_bench::{print_table, smoke};
use yoloc_core::compiler::cache::PlanCache;
use yoloc_core::compiler::{compile_count, CompileOptions, CompiledNetwork};
use yoloc_core::engine::WorkerPool;
use yoloc_core::serve::{
    AdmissionPolicy, ArrivalPattern, Broker, BrokerConfig, LoadGen, TenantConfig, TrafficSpec,
    VirtualClock,
};
use yoloc_models::{zoo, NetworkDesc};
use yoloc_tensor::Tensor;

const SCHEMA: &str = "yoloc-bench-serve/2";
const COMPILE_SEED: u64 = 2022;
const LOADGEN_SEED: u64 = 77;
const INFER_SEED: u64 = 0x5E12_F00D;
const WORKERS: usize = 4;
const WINDOW_NS: u64 = 50_000;

/// The resident serving zoo (tiny under smoke).
fn serve_nets() -> Vec<NetworkDesc> {
    if smoke() {
        vec![
            zoo::scaled(&zoo::vgg8(4), 16, (16, 16)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 32, (32, 32)),
        ]
    } else {
        vec![
            zoo::scaled(&zoo::vgg8(8), 16, (16, 16)),
            zoo::scaled(&zoo::resnet18(8), 16, (32, 32)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 32, (32, 32)),
        ]
    }
}

/// The mixed traffic mix over `n` resident models: a deadline-bound
/// Poisson stream, a queue-flooding bursty stream, and a ramp, spread
/// round-robin across the tenants.
fn traffic(n: usize) -> Vec<TrafficSpec> {
    vec![
        TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson { rate_rps: 80_000.0 },
            deadline_ns: Some(120_000),
        },
        TrafficSpec {
            model: 1 % n,
            pattern: ArrivalPattern::Bursty {
                period_ns: 120_000,
                burst: 20,
            },
            deadline_ns: Some(400_000),
        },
        TrafficSpec {
            model: 2 % n,
            pattern: ArrivalPattern::Ramp {
                start_rps: 10_000.0,
                end_rps: 120_000.0,
            },
            deadline_ns: None,
        },
    ]
}

fn duration_ns() -> u64 {
    if smoke() {
        600_000
    } else {
        2_000_000
    }
}

/// One model's cold/warm cache deploy, counters only (wall timings are
/// printed, never serialized — the report must regenerate
/// byte-identically on any host).
struct Deploy {
    net: CompiledNetwork,
    model: String,
    compiles_cold: u64,
    compiles_warm: u64,
    bit_identical: bool,
    cold_s: f64,
    warm_s: f64,
}

/// Deploys every net cold then warm through an on-disk cache (removed
/// afterwards), returning the *warm* networks for serving.
fn deploy_zoo(descs: &[NetworkDesc]) -> Vec<Deploy> {
    let dir = std::env::temp_dir().join(format!("yoloc-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CompileOptions::paper_default;
    let mut out = Vec::new();
    for desc in descs {
        println!("[deploy:{}] cold (compile + store) ...", desc.name);
        let before = compile_count();
        let t0 = Instant::now();
        let cold = PlanCache::at(&dir)
            .compile_random(desc, COMPILE_SEED, opts())
            .expect("zoo description must compile");
        let cold_s = t0.elapsed().as_secs_f64();
        let compiles_cold = compile_count() - before;

        println!("[deploy:{}] warm (disk lookup) ...", desc.name);
        let before = compile_count();
        let t1 = Instant::now();
        let warm = PlanCache::at(&dir)
            .compile_random(desc, COMPILE_SEED, opts())
            .expect("warm deploy");
        let warm_s = t1.elapsed().as_secs_f64();
        let compiles_warm = compile_count() - before;

        let (c, h, w) = cold.input_shape();
        let x = Tensor::rand_uniform(
            &[1, c, h, w],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(COMPILE_SEED + 3),
        );
        let (ya, ra) = cold.infer(&x, &mut StdRng::seed_from_u64(COMPILE_SEED + 5));
        let (yb, rb) = warm.infer(&x, &mut StdRng::seed_from_u64(COMPILE_SEED + 5));
        let bit_identical = ya.data() == yb.data() && ra == rb;

        out.push(Deploy {
            net: warm,
            model: desc.name.clone(),
            compiles_cold,
            compiles_warm,
            bit_identical,
            cold_s,
            warm_s,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn pattern_json(p: &ArrivalPattern) -> Json {
    match *p {
        ArrivalPattern::Poisson { rate_rps } => Json::obj([
            ("kind", Json::str("poisson")),
            ("rate_rps", Json::Num(rate_rps)),
        ]),
        ArrivalPattern::Bursty { period_ns, burst } => Json::obj([
            ("kind", Json::str("bursty")),
            ("period_ns", period_ns.to_json()),
            ("burst", (burst as u64).to_json()),
        ]),
        ArrivalPattern::Ramp { start_rps, end_rps } => Json::obj([
            ("kind", Json::str("ramp")),
            ("start_rps", Json::Num(start_rps)),
            ("end_rps", Json::Num(end_rps)),
        ]),
    }
}

/// Appends `what` to `errs` when `ok` does not hold.
fn check(errs: &mut Vec<String>, ok: bool, what: String) {
    if !ok {
        errs.push(what);
    }
}

/// Validates one parsed report, returning every violation.
fn schema_violations(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    check(
        &mut errs,
        doc.get("schema").and_then(Json::as_str) == Some(SCHEMA),
        format!("schema must be {SCHEMA:?}"),
    );
    // Warm plan-cache deploys: no recompiles, bit-identical execution.
    let deploy = doc.get("deploy").and_then(Json::as_arr).unwrap_or(&[]);
    check(
        &mut errs,
        !deploy.is_empty(),
        "deploy block must be a non-empty array".to_string(),
    );
    for entry in deploy {
        let model = entry
            .get("model")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        check(
            &mut errs,
            entry.get("compiles_cold").and_then(Json::as_u64) >= Some(1),
            format!("deploy[{model}]: cold deploy must compile at least once"),
        );
        check(
            &mut errs,
            entry.get("compiles_warm").and_then(Json::as_u64) == Some(0),
            format!("deploy[{model}]: warm deploy must not recompile (compiles_warm == 0)"),
        );
        check(
            &mut errs,
            entry.get("bit_identical").and_then(Json::as_bool) == Some(true),
            format!("deploy[{model}]: warm deploy must execute bit-identically to the cold one"),
        );
    }
    let serve = doc.get("serve");
    let field = |k: &str| serve.and_then(|s| s.get(k)).and_then(Json::as_u64);
    check(
        &mut errs,
        field("horizon_ns") > Some(0),
        "serve.horizon_ns must be positive".to_string(),
    );
    // Global accounting: every offered request is completed, shed or
    // rejected.
    match (
        field("offered"),
        field("completed"),
        field("shed"),
        field("rejected"),
    ) {
        (Some(o), Some(c), Some(s), Some(r)) => {
            check(
                &mut errs,
                o > 0,
                "serve.offered must be positive".to_string(),
            );
            check(
                &mut errs,
                c + s + r == o,
                "completed + shed + rejected must equal offered".to_string(),
            );
        }
        _ => errs.push("serve block must carry the four request counters".to_string()),
    }
    let models = serve
        .and_then(|s| s.get("models"))
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    check(
        &mut errs,
        models.len() >= 2,
        "at least 2 resident models must be served".to_string(),
    );
    for m in models {
        let name = m.get("model").and_then(Json::as_str).unwrap_or("<unnamed>");
        let f = |k: &str| m.get(k).and_then(Json::as_u64);
        match (f("offered"), f("completed"), f("shed"), f("rejected")) {
            (Some(o), Some(c), Some(s), Some(r)) => check(
                &mut errs,
                c + s + r == o,
                format!("serve.models[{name}]: per-model request accounting broke"),
            ),
            _ => errs.push(format!("serve.models[{name}]: missing request counters")),
        }
        match (f("deadline_hits"), f("deadline_misses"), f("completed")) {
            (Some(h), Some(miss), Some(c)) => check(
                &mut errs,
                h + miss == c,
                format!("serve.models[{name}]: deadline accounting must cover completions"),
            ),
            _ => errs.push(format!("serve.models[{name}]: missing deadline counters")),
        }
        check(
            &mut errs,
            f("p99_ns").is_some(),
            format!("serve.models[{name}]: p99 latency must be recorded"),
        );
        check(
            &mut errs,
            m.get("sustained_qps").and_then(Json::as_num) > Some(0.0),
            format!("serve.models[{name}]: sustained QPS must be positive"),
        );
    }
    // v2: the host wall-clock block. Host-dependent by design, so the
    // gate only checks presence and positivity — never a specific value.
    let measured = doc.get("measured");
    for k in ["host_wall_serve_s", "wall_completed_per_sec"] {
        check(
            &mut errs,
            measured
                .and_then(|m| m.get(k))
                .and_then(Json::as_num)
                .is_some_and(|v| v > 0.0),
            format!("measured.{k} must be present and positive"),
        );
    }
    errs
}

/// `--check-schema` mode: parse + validate a report file.
fn check_schema(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let errs = schema_violations(&doc);
    if errs.is_empty() {
        println!("{path}: schema {SCHEMA} OK ({} bytes)", text.len());
        std::process::exit(0);
    }
    eprintln!("{path}: {} schema violation(s):", errs.len());
    for e in &errs {
        eprintln!("  - {e}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_flag = args.iter().any(|a| a == "--smoke");
    let check_flag = args.iter().any(|a| a == "--check-schema");
    if smoke_flag {
        // Let the library's smoke() see the flag-driven mode too.
        std::env::set_var("YOLOC_SMOKE", "1");
    }
    if check_flag && !smoke_flag {
        let path = args
            .iter()
            .skip_while(|a| *a != "--check-schema")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        check_schema(&path);
    }

    let descs = serve_nets();
    let deploys = deploy_zoo(&descs);
    print_table(
        "Plan-cache serving deploys (cold compile vs warm disk deploy)",
        &[
            "Model",
            "Cold (ms)",
            "Warm (ms)",
            "Compiles (cold/warm)",
            "Bit-identical",
        ],
        &deploys
            .iter()
            .map(|d| {
                vec![
                    d.model.clone(),
                    format!("{:.1}", d.cold_s * 1e3),
                    format!("{:.2}", d.warm_s * 1e3),
                    format!("{} / {}", d.compiles_cold, d.compiles_warm),
                    if d.bit_identical { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        deploys.iter().all(|d| d.compiles_warm == 0),
        "a warm deploy recompiled — the plan cache is broken"
    );

    let specs = traffic(deploys.len());
    let trace = LoadGen::new(LOADGEN_SEED).trace(&specs, duration_ns());
    println!(
        "\nserving {} requests across {} models ({} ns simulated) ...",
        trace.len(),
        deploys.len(),
        duration_ns()
    );
    let serve_t0 = Instant::now();
    let out = WorkerPool::with(WORKERS, |pool| {
        let mut broker = Broker::new(
            VirtualClock::new(),
            BrokerConfig {
                infer_seed: INFER_SEED,
                batch_overhead_ns: 20_000,
                capture: false,
                health: None,
            },
        );
        for (i, d) in deploys.iter().enumerate() {
            broker.deploy(
                &d.model,
                &d.net,
                TenantConfig {
                    queue_cap: 16,
                    admission: if i % 2 == 0 {
                        AdmissionPolicy::ShedOldest
                    } else {
                        AdmissionPolicy::RejectNew
                    },
                    max_batch: 8,
                    window_ns: WINDOW_NS,
                },
            );
        }
        broker.run(&trace, pool)
    });
    let host_wall_serve_s = serve_t0.elapsed().as_secs_f64();
    let r = &out.report;
    print_table(
        "Continuous-batching serving (virtual clock)",
        &[
            "Model",
            "Offered",
            "Done/Shed/Rej",
            "p50/p99 (us)",
            "QPS",
            "Deadline miss",
        ],
        &r.models
            .iter()
            .map(|m| {
                vec![
                    m.name.clone(),
                    m.offered.to_string(),
                    format!("{}/{}/{}", m.completed, m.shed, m.rejected),
                    format!("{:.1}/{:.1}", m.p50_ns as f64 / 1e3, m.p99_ns as f64 / 1e3),
                    format!("{:.0}", m.sustained_qps),
                    m.deadline_misses.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let doc = Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("smoke", Json::Bool(smoke())),
        (
            "deploy",
            Json::Arr(
                deploys
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("model", Json::str(d.model.clone())),
                            ("compiles_cold", d.compiles_cold.to_json()),
                            ("compiles_warm", d.compiles_warm.to_json()),
                            ("bit_identical", Json::Bool(d.bit_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "traffic",
            Json::obj([
                ("loadgen_seed", LOADGEN_SEED.to_json()),
                ("duration_ns", duration_ns().to_json()),
                ("requests", (trace.len() as u64).to_json()),
                (
                    "specs",
                    Json::Arr(
                        specs
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("model", (s.model as u64).to_json()),
                                    ("pattern", pattern_json(&s.pattern)),
                                    (
                                        "deadline_ns",
                                        match s.deadline_ns {
                                            Some(d) => d.to_json(),
                                            None => Json::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("serve", r.to_json()),
        // Host wall clock of the broker run — the only host-dependent
        // fields in the report (see the module docs); everything above
        // regenerates byte-identically from the seeds.
        (
            "measured",
            Json::obj([
                ("host_wall_serve_s", Json::Num(host_wall_serve_s)),
                (
                    "wall_completed_per_sec",
                    Json::Num(r.completed as f64 / host_wall_serve_s),
                ),
            ]),
        ),
    ]);

    let path = if smoke() {
        "target/BENCH_serve.smoke.json".to_string()
    } else {
        args.iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".to_string())
    };
    std::fs::write(&path, doc.render()).expect("write serve report");
    println!("\nwrote {path}");

    // Self-gate: the document we just wrote must satisfy its own
    // schema (this is what `--smoke --check-schema` runs in CI).
    let errs = schema_violations(&doc);
    if !errs.is_empty() {
        eprintln!("{path}: {} schema violation(s):", errs.len());
        for e in &errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    println!("{path}: schema {SCHEMA} OK");
}
