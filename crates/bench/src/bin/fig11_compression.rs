//! Fig. 11: ReBranch hyper-parameter analysis.
//!
//! (a) accuracy and ROM/SRAM area vs overall branch compression D*U
//!     (4, 16, 64);
//! (b) accuracy vs the split of a fixed 16x budget between compression D
//!     and decompression U (1-16, 2-8, 4-4, 8-2, 16-1).

use yoloc_bench::{default_workers, fmt, pct, print_table, smoke_or, WorkerPool};
use yoloc_core::rebranch::ReBranchRatios;
use yoloc_core::strategies::{evaluate_strategy, pretrain_base, Strategy, TrainConfig};
use yoloc_core::tiny_models::{default_channels, Family};
use yoloc_data::classification::TransferSuite;

fn main() {
    let seed = 21;
    let suite = TransferSuite::new(seed);
    let target = &suite.fashion_like;

    for family in [Family::Vgg, Family::ResNet] {
        println!("\n=== {family:?}-style model ===");
        let base = pretrain_base(
            family,
            &default_channels(),
            &suite.pretrain,
            smoke_or(TrainConfig::smoke(), TrainConfig::pretrain()),
            seed,
        );

        // Both sweeps fan out over one persistent pool per family; every
        // (D, U) cell is an independent transfer run on a fixed seed.
        let base_ref = &base;
        let du_a = [(2usize, 2usize), (4, 4), (8, 8)];
        let du_b = [(1usize, 16usize), (2, 8), (4, 4), (8, 2), (16, 1)];
        let workers = default_workers();
        let (res_a, res_b) = WorkerPool::with(workers, |pool| {
            let jobs_a: Vec<_> = du_a
                .iter()
                .map(|&(d, u)| {
                    move || {
                        evaluate_strategy(
                            base_ref,
                            target,
                            Strategy::ReBranch(ReBranchRatios { d, u }),
                            smoke_or(TrainConfig::smoke(), TrainConfig::transfer()),
                            seed + (d * 10 + u) as u64,
                        )
                    }
                })
                .collect();
            let jobs_b: Vec<_> = du_b
                .iter()
                .map(|&(d, u)| {
                    move || {
                        evaluate_strategy(
                            base_ref,
                            target,
                            Strategy::ReBranch(ReBranchRatios { d, u }),
                            smoke_or(TrainConfig::smoke(), TrainConfig::transfer()),
                            seed + (d * 100 + u) as u64,
                        )
                    }
                })
                .collect();
            (pool.run(jobs_a), pool.run(jobs_b))
        });

        // (a) D*U sweep with D == U.
        let mut rows = Vec::new();
        for ((d, u), r) in du_a.into_iter().zip(&res_a) {
            rows.push(vec![
                format!("{}", d * u),
                format!("{d}-{u}"),
                pct(r.accuracy as f64),
                fmt(r.rom_bits as f64 / 8.0 / 1e6, 3),
                fmt(r.sram_bits as f64 / 8.0 / 1e6, 3),
                fmt(r.area_mm2, 4),
            ]);
        }
        print_table(
            &format!("Fig. 11(a): branch compression sweep ({})", target.name),
            &[
                "D*U",
                "D-U",
                "Accuracy",
                "ROM weights (M)",
                "SRAM weights (M)",
                "Area (mm2)",
            ],
            &rows,
        );

        // (b) split sweep at fixed D*U = 16.
        let mut rows = Vec::new();
        for ((d, u), r) in du_b.into_iter().zip(&res_b) {
            rows.push(vec![format!("{d}-{u}"), pct(r.accuracy as f64)]);
        }
        print_table(
            &format!("Fig. 11(b): D-U split at 16x ({})", target.name),
            &["Compression-Decompression", "Accuracy"],
            &rows,
        );
    }
    println!(
        "\nPaper: D=U=4 maximizes accuracy (93.1% ResNet-18, 90.2% VGG-8); 16x \
         total compression balances area saving against model flexibility — \
         smaller D*U makes SRAM the area bottleneck, larger D*U loses accuracy."
    );
}
