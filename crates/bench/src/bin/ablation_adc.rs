//! Ablation: the ADC-resolution / simultaneously-activated-rows trade-off
//! the paper flags for future work (§4.3.1): more active rows per analog
//! evaluation means fewer evaluations (faster, lower energy) but the 5-bit
//! ADC can no longer resolve single discharge events, so the MAC result
//! degrades. Also sweeps bit-line noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::{default_workers, fmt, print_table, WorkerPool};
use yoloc_cim::macro_model::{reference_mvm, MacroParams, RomMvm};

fn max_rel_error(rows_per_activation: usize, noise: f32, seed: u64) -> (f64, f64, f64) {
    let mut params = MacroParams::rom_paper();
    params.rows_per_activation = rows_per_activation;
    params.noise_sigma = noise;
    let (outs, ins) = (16, 128);
    let codes: Vec<i32> = (0..outs * ins)
        .map(|i| ((i * 131) % 255) as i32 - 127)
        .collect();
    let acts: Vec<i32> = (0..ins).map(|i| ((i * 17) % 256) as i32).collect();
    let engine = RomMvm::program(params, &codes, outs, ins);
    let mut rng = StdRng::seed_from_u64(seed);
    let (y, stats) = engine.mvm(&acts, &mut rng);
    let exact = reference_mvm(&codes, outs, ins, &acts);
    let mut worst = 0.0f64;
    for (a, b) in y.iter().zip(&exact) {
        let denom = (*b).abs().max(10_000) as f64;
        worst = worst.max((a - b).abs() as f64 / denom);
    }
    (worst, stats.energy_pj, stats.latency_ns)
}

fn main() {
    // Both sweeps are independent MVM executions; fan them across one
    // persistent pool (each cell re-seeds its own RNG).
    let rpa_sweep = [5usize, 8, 10, 16, 32, 64];
    let noise_sweep = [0.0f32, 0.2, 0.5, 1.0, 2.0];
    let workers = default_workers();
    let (rpa_results, noise_results) = WorkerPool::with(workers, |pool| {
        let rpa_jobs: Vec<_> = rpa_sweep
            .iter()
            .map(|&rpa| move || max_rel_error(rpa, 0.0, 1))
            .collect();
        let noise_jobs: Vec<_> = noise_sweep
            .iter()
            .map(|&noise| move || max_rel_error(10, noise, 2))
            .collect();
        (pool.run(rpa_jobs), pool.run(noise_jobs))
    });

    // Rows-per-activation sweep (noiseless).
    let mut rows = Vec::new();
    for (&rpa, &(err, energy, latency)) in rpa_sweep.iter().zip(&rpa_results) {
        let exact = if rpa * 3 <= 31 { "yes" } else { "no" };
        rows.push(vec![
            rpa.to_string(),
            format!("{}", rpa * 3),
            exact.to_string(),
            format!("{:.2}%", 100.0 * err),
            fmt(energy, 1),
            fmt(latency, 2),
        ]);
    }
    print_table(
        "ADC trade-off: simultaneously activated rows vs accuracy/energy (5-bit ADC)",
        &[
            "Rows/activation",
            "Max discharge count",
            "ADC resolves exactly",
            "Max MVM error",
            "Energy (pJ)",
            "Latency (ns)",
        ],
        &rows,
    );

    // Noise sweep at the paper design point.
    let mut rows = Vec::new();
    for (&noise, &(err, _, _)) in noise_sweep.iter().zip(&noise_results) {
        rows.push(vec![fmt(noise as f64, 1), format!("{:.2}%", 100.0 * err)]);
    }
    print_table(
        "Bit-line noise sweep at the paper design point (10 rows/activation)",
        &["Noise sigma (counts)", "Max MVM error"],
        &rows,
    );
    println!(
        "\nThe paper's design point (10 rows x 3 pulses = 30 counts <= 31 ADC \
         levels) is the largest activation group the 5-bit ADC reads exactly; \
         beyond it, parallelism trades against MAC fidelity."
    );
}
