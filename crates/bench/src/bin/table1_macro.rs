//! Table I: the ROM-CiM macro specification summary, computed from the
//! circuit-level parameters (not hard-coded), next to the paper's values
//! and the SRAM-CiM counterpart.

use yoloc_bench::{fmt, fmt_x, print_table};
use yoloc_cim::MacroParams;

fn main() {
    let rom = MacroParams::rom_paper().spec();
    let sram = MacroParams::sram_paper().spec();
    let rows = vec![
        vec!["Process".into(), rom.process.clone(), "28nm CMOS".into()],
        vec![
            "Macro size".into(),
            format!("{} Mb", fmt(rom.macro_size_mb, 2)),
            "1.2 Mb".into(),
        ],
        vec![
            "Macro area".into(),
            format!("{} mm2", fmt(rom.macro_area_mm2, 3)),
            "0.24 mm2".into(),
        ],
        vec![
            "Macro density".into(),
            format!("{} Mb/mm2", fmt(rom.density_mb_per_mm2, 2)),
            "5 Mb/mm2 (25.6x)".into(),
        ],
        vec![
            "Cell area".into(),
            format!("{} um2", fmt(rom.cell_area_um2, 3)),
            "0.014 um2".into(),
        ],
        vec![
            "Input x weight".into(),
            format!("{}-bit x {}-bit", rom.act_bits, rom.weight_bits),
            "8-bit x 8-bit".into(),
        ],
        vec![
            "Inference time".into(),
            format!("{} ns", fmt(rom.inference_time_ns, 1)),
            "8.9 ns".into(),
        ],
        vec![
            "Operation number".into(),
            rom.operation_number.to_string(),
            "256".into(),
        ],
        vec![
            "Throughput".into(),
            format!("{} GOPS", fmt(rom.throughput_gops, 1)),
            "28.8 GOPS".into(),
        ],
        vec![
            "Macro area efficiency".into(),
            format!("{} GOPS/mm2", fmt(rom.area_efficiency_gops_mm2, 1)),
            "119.4 GOPS/mm2".into(),
        ],
        vec![
            "MAC energy efficiency".into(),
            format!("{} TOPS/W", fmt(rom.energy_efficiency_tops_w, 1)),
            "11.5 TOPS/W".into(),
        ],
        vec![
            "Standby power".into(),
            format!("{} W (non-volatile)", fmt(rom.standby_power_w, 3)),
            "0 (non-volatile)".into(),
        ],
    ];
    print_table(
        "Table I: ROM-CiM macro specification (computed vs paper)",
        &["Item", "This reproduction", "Paper"],
        &rows,
    );

    print_table(
        "SRAM-CiM counterpart (ISSCC'21 [3]-class macro)",
        &["Item", "Value"],
        &[
            vec![
                "Macro size".into(),
                format!("{} Mb", fmt(sram.macro_size_mb, 3)),
            ],
            vec![
                "Macro density".into(),
                format!("{} Mb/mm2", fmt(sram.density_mb_per_mm2, 3)),
            ],
            vec![
                "ROM/SRAM macro density ratio".into(),
                fmt_x(rom.density_mb_per_mm2 / sram.density_mb_per_mm2),
            ],
            vec![
                "Standby power".into(),
                format!("{:.2e} W (volatile)", sram.standby_power_w),
            ],
        ],
    );
    println!("\nPaper: ROM-CiM density is 19x the SRAM-CiM macro in the same process.");
}
