//! Fig. 14: chip-level comparison — (a) energy efficiency vs area for
//! YOLoC / iso-area single-chip SRAM-CiM / SRAM-CiM chiplets, (b) YOLoC
//! area breakdown, (c) per-model energy breakdown and improvement ratios.

use yoloc_bench::{fmt, fmt_x, pct, print_table};
use yoloc_core::system::{evaluate, SystemKind, SystemParams};
use yoloc_models::{zoo, NetworkDesc};

fn main() {
    let p = SystemParams::paper_default();
    let models: Vec<NetworkDesc> = vec![
        zoo::vgg8(100),
        zoo::resnet18(100),
        zoo::tiny_yolo(20, 5),
        zoo::yolo_v2(20, 5),
    ];

    // The comparison chip: the YOLO-sized YOLoC design and an SRAM-CiM
    // chip of the same CiM area (the "[3]-single chip" of Fig. 14a).
    let yolo_chip = evaluate(&models[3], SystemKind::Yoloc, &p).expect("yolo");
    let iso_area = yolo_chip.area.total_mm2() - yolo_chip.area.buffer_mm2;

    // (a) energy efficiency vs area for YOLO.
    let single = evaluate(
        &models[3],
        SystemKind::SramSingleChip {
            cim_area_mm2: Some(iso_area),
        },
        &p,
    )
    .expect("single");
    let chiplet =
        evaluate(&models[3], SystemKind::SramChiplet { chips: None }, &p).expect("chiplet");
    print_table(
        "Fig. 14(a): YOLO (DarkNet-19) — energy efficiency vs area",
        &[
            "System",
            "Area (cm2)",
            "Energy efficiency (TOPS/W)",
            "Latency (ms)",
        ],
        &[
            vec![
                yolo_chip.system.clone(),
                fmt(yolo_chip.area.total_mm2() / 100.0, 2),
                fmt(yolo_chip.energy_eff_tops_w, 2),
                fmt(yolo_chip.latency_ms, 2),
            ],
            vec![
                single.system.clone(),
                fmt(single.area.total_mm2() / 100.0, 2),
                fmt(single.energy_eff_tops_w, 2),
                fmt(single.latency_ms, 2),
            ],
            vec![
                chiplet.system.clone(),
                fmt(chiplet.area.total_mm2() / 100.0, 2),
                fmt(chiplet.energy_eff_tops_w, 2),
                fmt(chiplet.latency_ms, 2),
            ],
        ],
    );
    println!(
        "Paper: YOLoC ~10x smaller than the chiplet system at ~2% better energy \
         efficiency; the iso-area single chip collapses on DRAM traffic."
    );

    // (b) YOLoC area breakdown.
    let a = &yolo_chip.area;
    let total = a.total_mm2();
    print_table(
        "Fig. 14(b): YOLoC chip area breakdown (YOLO configuration)",
        &["Component", "mm2", "Share"],
        &[
            vec![
                "CiM arrays (ROM)".into(),
                fmt(a.rom_array_mm2, 1),
                pct(a.rom_array_mm2 / total),
            ],
            vec![
                "CiM arrays (SRAM)".into(),
                fmt(a.sram_array_mm2, 1),
                pct(a.sram_array_mm2 / total),
            ],
            vec!["ADC".into(), fmt(a.adc_mm2, 1), pct(a.adc_mm2 / total)],
            vec![
                "R/W + drivers".into(),
                fmt(a.driver_mm2, 1),
                pct(a.driver_mm2 / total),
            ],
            vec![
                "Peripheral/control".into(),
                fmt(a.ctrl_mm2, 1),
                pct(a.ctrl_mm2 / total),
            ],
            vec![
                "Buffer".into(),
                fmt(a.buffer_mm2, 1),
                pct(a.buffer_mm2 / total),
            ],
        ],
    );
    println!("Paper: array 37%, ADC 21%, R/W 20%, peripheral 12%, buffer 10%.");

    // (c) per-model energy breakdown + improvement ratios on the fixed
    // iso-area chip pair.
    let mut rows = Vec::new();
    for m in &models {
        let y = evaluate(m, SystemKind::Yoloc, &p).expect("yoloc");
        let s = evaluate(
            m,
            SystemKind::SramSingleChip {
                cim_area_mm2: Some(iso_area),
            },
            &p,
        )
        .expect("sram");
        let e = &s.energy;
        let total = e.total_uj();
        rows.push(vec![
            m.name.clone(),
            fmt(total, 1),
            pct((e.cim_uj) / total),
            pct(e.peripheral_uj / total),
            pct(e.buffer_uj / total),
            pct(e.dram_share()),
            fmt(y.energy.total_uj(), 1),
            fmt_x(y.energy_eff_tops_w / s.energy_eff_tops_w),
        ]);
    }
    print_table(
        "Fig. 14(c): SRAM-CiM energy breakdown per model and YOLoC improvement",
        &[
            "Model",
            "SRAM-CiM energy (uJ/inf)",
            "CiM",
            "Peripheral",
            "Buffer",
            "DRAM (+stall)",
            "YOLoC energy (uJ/inf)",
            "Energy-eff. improvement",
        ],
        &rows,
    );
    println!(
        "Paper improvement ratios: VGG-8 1x, ResNet-18 4.8x, Tiny-YOLO 10.2x, \
         YOLO 14.8x; DRAM dominates the baseline as models grow."
    );

    // Latency overhead of the residual branch (paper: ~8% on YOLO).
    let mut no_branch = p.clone();
    no_branch.branch_overlap = 0.0;
    let base = evaluate(&models[3], SystemKind::Yoloc, &no_branch).expect("base");
    println!(
        "\nReBranch latency overhead on YOLO: {} (paper: ~8%)",
        pct(yolo_chip.latency_ms / base.latency_ms - 1.0)
    );
}
