//! Kernel-tier benchmark and `BENCH_engine.json` patcher.
//!
//! Measures the tier-3 kernel work (runtime-dispatched SIMD with the
//! AVX-512 tier, batch-transposed MVM layouts and vectorized staging in
//! `yoloc-cim`) on the lowered im2col shapes of the zoo networks the
//! engine harness runs: per unique `(outs, ins)` shape, `mvm_batch` is
//! timed under the forced scalar tier and under the runtime-dispatched
//! tier (asserting bit-identical values and `MvmStats` between the
//! two), the staging (im2col gather + quantization) cost is measured
//! separately per shape, and the MVM-weighted aggregate
//! `speedup_vs_scalar`, the per-shape time shares/layouts and the
//! selected ISA are recorded as the schema-v7 `kernel_tier` block. The
//! measurement lives in [`yoloc_bench::kernel_tier`] and is shared with
//! `bench_engine`.
//!
//! Like `bench_plan_cache`, the full run **patches** the block into an
//! existing `BENCH_engine.json` (schema bumped to `yoloc-bench-engine/7`,
//! every other field preserved byte-for-byte) so the committed baseline
//! can pick up fresh kernel numbers without re-running the whole engine
//! harness. Under `--smoke`/`YOLOC_SMOKE=1` the committed report is left
//! untouched and the block goes to `target/BENCH_kernels.smoke.json`.
//!
//! `--check-schema [PATH]` validates the `kernel_tier` block of an
//! existing report instead of measuring: selected tier in
//! {scalar, avx2, avx512}, all tiers bit-identical, time shares
//! summing to one, and for committed full runs that selected a SIMD
//! tier a speedup of at least 2.5x on every small (`outs <= 4`)
//! shape and at least a 3.0x MVM-weighted aggregate — the CI gate
//! for the tier-3 kernel acceptance criterion.
//!
//! Usage: `bench_kernels [--smoke | --check-schema] [PATH]` (default
//! path `BENCH_engine.json`).

use yoloc_bench::kernel_tier::{kernel_tier_violations, measure_kernel_tier};
use yoloc_bench::plan_cache::zoo_nets;
use yoloc_bench::report::Json;
use yoloc_bench::{fmt_x, print_table, smoke};

const SEED: u64 = 2022;

/// Sets `key` in a JSON object, replacing an existing entry in place
/// (preserving its position) or appending a new one.
fn set_field(doc: &mut Json, key: &str, value: Json) {
    let Json::Obj(fields) = doc else {
        panic!("report root must be a JSON object");
    };
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => fields.push((key.to_string(), value)),
    }
}

/// `--check-schema` mode: validate the committed baseline's block.
fn check_schema(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let errs = kernel_tier_violations(&doc);
    if errs.is_empty() {
        let s = doc
            .get("kernel_tier")
            .and_then(|k| k.get("speedup_vs_scalar"))
            .and_then(Json::as_num)
            .unwrap_or(f64::NAN);
        println!("{path}: kernel_tier OK (speedup_vs_scalar {s:.2}x)");
        std::process::exit(0);
    }
    eprintln!("{path}: {} kernel_tier violation(s):", errs.len());
    for e in &errs {
        eprintln!("  - {e}");
    }
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--check-schema") {
        let path = std::env::args()
            .skip_while(|a| a != "--check-schema")
            .nth(1)
            .unwrap_or_else(|| "BENCH_engine.json".to_string());
        check_schema(&path);
    }
    if std::env::args().any(|a| a == "--smoke") {
        // Let the library's smoke() see the flag-driven mode too.
        std::env::set_var("YOLOC_SMOKE", "1");
    }
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let tier = measure_kernel_tier(&zoo_nets(), SEED + 13);
    print_table(
        "Kernel tiers on the zoo's lowered MVM shapes (scalar vs dispatched)",
        &[
            "Shape (outs x ins)",
            "MVMs/pass",
            "Scalar (ns/mvm)",
            "Dispatched (ns/mvm)",
            "Stage (ns/mvm)",
            "Layout",
            "Time share",
            "Speedup",
            "Bit-identical",
        ],
        &tier.rows(),
    );
    println!(
        "\nselected tier: {} (avx2 detected: {}, avx512 detected: {}), MVM-weighted speedup {}",
        tier.selected.label(),
        tier.avx2_detected,
        tier.avx512_detected,
        fmt_x(tier.speedup_vs_scalar)
    );
    if let Some(e) = &tier.end_to_end {
        println!(
            "end-to-end (informational, {}): scalar {:.2} ms vs dispatched {:.2} ms = {} \
             (bounded by the non-MVM share of an inference)",
            e.model,
            e.scalar_s * 1e3,
            e.dispatched_s * 1e3,
            fmt_x(e.scalar_s / e.dispatched_s)
        );
    }
    let block = tier.json();

    if smoke() {
        // Smoke runs measure tiny configurations; never patch the
        // committed baseline with them.
        let out = "target/BENCH_kernels.smoke.json";
        let doc = Json::obj([("smoke", Json::Bool(true)), ("kernel_tier", block)]);
        std::fs::write(out, doc.render()).expect("write smoke kernel report");
        let errs = kernel_tier_violations(&doc);
        assert!(errs.is_empty(), "smoke kernel_tier gates failed: {errs:?}");
        println!("\nwrote {out} (smoke mode: committed baseline untouched)");
        return;
    }

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run bench_engine first)"));
    let mut doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    set_field(&mut doc, "schema", Json::str("yoloc-bench-engine/7"));
    set_field(&mut doc, "kernel_tier", block);
    let errs = kernel_tier_violations(&doc);
    std::fs::write(&path, doc.render()).expect("write patched engine report");
    assert!(
        errs.is_empty(),
        "kernel_tier gates failed (block written to {path} anyway): {errs:?}"
    );
    println!("\npatched {path}: schema yoloc-bench-engine/7, kernel_tier block refreshed");
    println!("validate with: bench_engine --check-schema {path}");
}
