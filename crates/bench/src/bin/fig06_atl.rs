//! Fig. 6(b): alternative-transfer-learning transferability decay —
//! accuracy as a function of how many conv stages stay frozen in ROM.
//!
//! Reproduces the ordering "all layers trainable > shallow-frozen >
//! deep-frozen > classifier-only", i.e. transferability decays with depth.

use yoloc_bench::{pct, print_table, run_parallel, smoke_or};
use yoloc_core::strategies::{evaluate_strategy, pretrain_base, Strategy, TrainConfig};
use yoloc_core::tiny_models::{default_channels, Family};
use yoloc_data::classification::TransferSuite;

fn main() {
    let seed = 42;
    let suite = TransferSuite::new(seed);
    let channels = default_channels();
    println!("Pretraining VGG-style base on {} ...", suite.pretrain.name);
    let base = pretrain_base(
        Family::Vgg,
        &channels,
        &suite.pretrain,
        smoke_or(TrainConfig::smoke(), TrainConfig::pretrain()),
        seed,
    );
    let n_blocks = channels.len();
    let cfg = smoke_or(TrainConfig::smoke(), TrainConfig::transfer());

    // The whole frozen-depth x target sweep fans out in one go; each
    // (target, depth) cell trains independently on a fixed seed.
    let base_ref = &base;
    let targets = [&suite.cifar10_like, &suite.caltech_like];
    let jobs: Vec<_> = targets
        .iter()
        .flat_map(|&target| {
            (0..=n_blocks).map(move |frozen| {
                let strategy = if frozen == n_blocks {
                    Strategy::AllRom
                } else if frozen == 0 {
                    Strategy::AllSram
                } else {
                    Strategy::Atl {
                        trainable_tail: n_blocks - frozen,
                    }
                };
                move || evaluate_strategy(base_ref, target, strategy, cfg, seed + frozen as u64)
            })
        })
        .collect();
    let results = run_parallel(jobs);
    for (ti, target) in targets.iter().enumerate() {
        let mut rows = Vec::new();
        for frozen in 0..=n_blocks {
            let r = &results[ti * (n_blocks + 1) + frozen];
            rows.push(vec![
                frozen.to_string(),
                r.strategy.clone(),
                pct(r.accuracy as f64),
            ]);
        }
        print_table(
            &format!(
                "Fig. 6(b): accuracy vs frozen depth ({} -> {})",
                suite.pretrain.name, target.name
            ),
            &["Frozen conv stages", "Strategy", "Accuracy"],
            &rows,
        );
    }
    println!(
        "\nPaper: freezing all feature-extractor layers (classifier-only training) \
         loses ~4% on near domains and far more on distant ones; early layers have \
         high transferability, deep layers low."
    );
}
