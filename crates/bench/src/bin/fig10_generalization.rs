//! Fig. 10: ReBranch generalization analysis — accuracy on four transfer
//! targets and normalized memory area, for VGG-8-style and
//! ResNet-18-style models under All-SRAM / All-ROM / Deep-Conv / ReBranch
//! (plus ROSL and SPWD, the other two Fig. 6 options).

use yoloc_bench::{fmt, pct, print_table, run_parallel, smoke_or};
use yoloc_core::rebranch::ReBranchRatios;
use yoloc_core::strategies::{evaluate_strategy, pretrain_base, Strategy, TrainConfig};
use yoloc_core::tiny_models::{default_channels, Family};
use yoloc_data::classification::TransferSuite;

fn main() {
    let seed = 7;
    let suite = TransferSuite::new(seed);
    let strategies = [
        Strategy::AllSram,
        Strategy::AllRom,
        Strategy::Atl { trainable_tail: 1 }, // "Deep Conv"
        Strategy::ReBranch(ReBranchRatios::paper_default()),
        Strategy::Spwd { bits: 2 },
        Strategy::Rosl { shots: 10 },
    ];

    for family in [Family::Vgg, Family::ResNet] {
        println!(
            "\n=== {family:?}-style model (paper: {}) ===",
            match family {
                Family::Vgg => "VGG-8",
                Family::ResNet => "ResNet-18",
            }
        );
        println!("Pretraining on {} ...", suite.pretrain.name);
        let base = pretrain_base(
            family,
            &default_channels(),
            &suite.pretrain,
            smoke_or(TrainConfig::smoke(), TrainConfig::pretrain()),
            seed,
        );
        // Fig. 10(b): accuracy per target per strategy, fanned across the
        // persistent worker pool (results are deterministic per (strategy,
        // target) seed regardless of scheduling).
        let base_ref = &base;
        let jobs: Vec<_> = strategies
            .iter()
            .enumerate()
            .flat_map(|(si, &strategy)| {
                suite.targets().into_iter().map(move |target| {
                    move || {
                        evaluate_strategy(
                            base_ref,
                            target,
                            strategy,
                            smoke_or(TrainConfig::smoke(), TrainConfig::transfer()),
                            seed + si as u64,
                        )
                    }
                })
            })
            .collect();
        let results = run_parallel(jobs);
        let n_targets = suite.targets().len();
        let mut acc_rows = Vec::new();
        let mut area_rows = Vec::new();
        let mut all_sram_area = None;
        for (si, &strategy) in strategies.iter().enumerate() {
            let mut row = vec![strategy.label()];
            let mut sample_area = 0.0;
            for ti in 0..n_targets {
                let r = &results[si * n_targets + ti];
                row.push(pct(r.accuracy as f64));
                sample_area = r.area_mm2;
            }
            if matches!(strategy, Strategy::AllSram) {
                all_sram_area = Some(sample_area);
            }
            let norm = sample_area / all_sram_area.unwrap_or(sample_area);
            area_rows.push(vec![strategy.label(), fmt(sample_area, 4), fmt(norm, 3)]);
            acc_rows.push(row);
        }
        print_table(
            &format!("Fig. 10(b) accuracy, {family:?} (pretrain -> target)"),
            &[
                "Strategy",
                suite.cifar10_like.name.as_str(),
                suite.mnist_like.name.as_str(),
                suite.fashion_like.name.as_str(),
                suite.caltech_like.name.as_str(),
            ],
            &acc_rows,
        );
        print_table(
            &format!("Fig. 10(a) memory area, {family:?}"),
            &[
                "Strategy",
                "CiM memory area (mm2)",
                "Normalized to All-SRAM",
            ],
            &area_rows,
        );
    }
    println!(
        "\nPaper (Fig. 10): ReBranch saves ~10x memory area vs all-SRAM-CiM with \
         <0.4% accuracy loss; All-ROM collapses on the far-domain target \
         (Caltech101: 56.1% vs 66.8% all-SRAM)."
    );
}
