//! Baseline benchmark of the batched CiM inference engine, plus the
//! graph-compiled model-zoo scaling table.
//!
//! Part 1 measures samples/sec through a deployed `TinyCnn` on three
//! configurations and asserts their equivalence:
//!
//! * **serial** — the pre-engine baseline: one thread, cell-accurate
//!   analog reference path (`set_fast_path(false)`);
//! * **serial_fast_path** — one thread, the popcount fast path;
//! * **batched** — `infer_batch` over the persistent [`WorkerPool`] at
//!   a sweep of worker counts, fast path on.
//!
//! Part 2 exercises the graph compiler: zoo `NetworkDesc` architectures
//! (width/resolution-scaled so the functional simulator executes them in
//! milliseconds) are compiled with `CompiledNetwork::compile_random` and
//! run end-to-end through `infer_batch`, producing a per-network scaling
//! table — parameters, MACs, subarray placement (naive vs packed) and the
//! **live** per-inference `EnergyBreakdown` measured during execution.
//!
//! Emits `BENCH_engine.json` (schema `yoloc-bench-engine/2`, documented
//! in `README.md`); under `--smoke`/`YOLOC_SMOKE=1` the workload shrinks
//! and the report goes to `target/BENCH_engine.smoke.json` so the
//! committed baseline is not clobbered by tiny-config numbers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::report::{to_json, Json};
use yoloc_bench::{fmt, fmt_x, print_table, smoke, smoke_or, WorkerPool};
use yoloc_cim::MacroParams;
use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
use yoloc_core::pipeline::CimDeployedModel;
use yoloc_core::strategies::{pretrain_base, TrainConfig};
use yoloc_core::tiny_models::Family;
use yoloc_data::classification::TransferSuite;
use yoloc_models::{zoo, NetworkDesc};
use yoloc_tensor::Tensor;

const SEED: u64 = 2022;

fn batch() -> usize {
    smoke_or(4, 16)
}

fn reps() -> usize {
    smoke_or(1, 3)
}

fn worker_sweep() -> Vec<usize> {
    smoke_or(vec![1, 4], vec![1, 2, 4, 8])
}

/// Median wall-clock seconds of `reps` runs of `f` (one untimed warm-up).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Measured {
    label: &'static str,
    workers: Option<usize>,
    seconds: f64,
    samples: usize,
}

impl Measured {
    fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.seconds
    }

    fn json(&self) -> Json {
        let mut fields = vec![("path", Json::str(self.label))];
        if let Some(w) = self.workers {
            fields.push(("workers", Json::Num(w as f64)));
        }
        fields.push(("seconds", Json::Num(self.seconds)));
        fields.push(("samples_per_sec", Json::Num(self.samples_per_sec())));
        Json::obj(fields)
    }
}

fn measure_model(
    family: Family,
    channels: &[usize],
    name: &str,
    seed: u64,
) -> (Json, Vec<Vec<String>>) {
    let batch = batch();
    let reps = reps();
    let suite = TransferSuite::new(seed);
    println!("[{name}] training at smoke scale ...");
    let model = pretrain_base(
        family,
        channels,
        &suite.pretrain,
        TrainConfig::smoke(),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (cal, _) = suite.pretrain.batch(8, &mut rng);
    let mut deployed = CimDeployedModel::deploy(
        &model,
        &cal,
        MacroParams::rom_paper(),
        MacroParams::sram_paper(),
    );
    let (x, _) = suite.pretrain.batch(batch, &mut rng);

    println!("[{name}] measuring serial analog-reference path ...");
    deployed.set_fast_path(false);
    let serial_logits = deployed.infer(&x, &mut rng).0;
    let serial = Measured {
        label: "analog-reference",
        workers: None,
        seconds: median_secs(reps, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
        samples: batch,
    };

    println!("[{name}] measuring serial popcount fast path ...");
    deployed.set_fast_path(true);
    let fast_logits = deployed.infer(&x, &mut rng).0;
    assert_eq!(
        serial_logits.data(),
        fast_logits.data(),
        "fast path must be bit-identical to the analog reference"
    );
    let serial_fast = Measured {
        label: "popcount",
        workers: None,
        seconds: median_secs(reps, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
        samples: batch,
    };

    let deployed = &deployed; // shared borrow for the pool jobs
    let batched: Vec<Measured> = worker_sweep()
        .into_iter()
        .map(|workers| {
            println!("[{name}] measuring batched engine at {workers} worker(s) ...");
            WorkerPool::with(workers, |pool| {
                let batched_logits = deployed.infer_batch(&x, SEED, pool).0;
                assert_eq!(
                    fast_logits.data(),
                    batched_logits.data(),
                    "batched logits must be bit-identical to serial"
                );
                Measured {
                    label: "popcount",
                    workers: Some(workers),
                    seconds: median_secs(reps, || {
                        std::hint::black_box(deployed.infer_batch(&x, SEED, pool));
                    }),
                    samples: batch,
                }
            })
        })
        .collect();

    let w4 = batched
        .iter()
        .find(|m| m.workers == Some(4))
        .expect("worker sweep includes 4");
    let speedup_w4 = w4.samples_per_sec() / serial.samples_per_sec();

    let mut rows = Vec::new();
    for m in std::iter::once(&serial)
        .chain(std::iter::once(&serial_fast))
        .chain(batched.iter())
    {
        rows.push(vec![
            name.to_string(),
            match m.workers {
                None => format!("serial ({})", m.label),
                Some(w) => format!("batched x{w}"),
            },
            fmt(m.seconds * 1e3, 1),
            fmt(m.samples_per_sec(), 1),
            fmt_x(m.samples_per_sec() / serial.samples_per_sec()),
        ]);
    }

    let json = Json::obj([
        ("model", Json::str(name)),
        ("samples", Json::Num(batch as f64)),
        ("serial", serial.json()),
        ("serial_fast_path", serial_fast.json()),
        (
            "batched",
            Json::Arr(batched.iter().map(Measured::json).collect()),
        ),
        ("bit_identical", Json::Bool(true)),
        ("speedup_batched4_vs_serial", Json::Num(speedup_w4)),
    ]);
    (json, rows)
}

/// Compiles one scaled zoo architecture, runs it end-to-end through the
/// batched engine, and reports throughput plus the live energy breakdown.
fn measure_zoo_network(desc: &NetworkDesc, seed: u64) -> (Json, Vec<String>) {
    let batch = batch();
    let reps = reps();
    println!("[zoo:{}] compiling onto the macro fabric ...", desc.name);
    let net = CompiledNetwork::compile_random(desc, seed, CompileOptions::paper_default())
        .expect("zoo description must compile");
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (c, h, w) = net.input_shape();
    let x = Tensor::rand_uniform(&[batch, c, h, w], 0.0, 1.0, &mut rng);
    println!("[zoo:{}] executing through infer_batch ...", desc.name);
    let (report, seconds) = WorkerPool::with(4, |pool| {
        let (_, report) = net.infer_batch(&x, seed, pool);
        let seconds = median_secs(reps, || {
            std::hint::black_box(net.infer_batch(&x, seed, pool));
        });
        (report, seconds)
    });
    let params = desc.param_count();
    let macs = desc.macs().expect("analyzable");
    let per_sample = |v: f64| v / batch as f64;
    let energy_per_sample_uj = per_sample(report.energy.total_uj());
    let samples_per_sec = batch as f64 / seconds;
    let json = Json::obj([
        ("model", Json::str(desc.name.clone())),
        ("params", Json::Num(params as f64)),
        ("macs", Json::Num(macs as f64)),
        ("samples", Json::Num(batch as f64)),
        (
            "subarrays_naive",
            Json::Num(net.mapping.subarrays_naive as f64),
        ),
        (
            "subarrays_packed",
            Json::Num(net.mapping.subarrays_packed as f64),
        ),
        (
            "utilization_packed",
            Json::Num(net.mapping.utilization_packed),
        ),
        ("samples_per_sec", Json::Num(samples_per_sec)),
        (
            "latency_ms_per_sample",
            Json::Num(per_sample(report.latency_ns) / 1e6),
        ),
        ("energy_uj_per_sample", Json::Num(energy_per_sample_uj)),
        // The live, measured breakdown — serialized straight from the
        // executor's EnergyBreakdown via the serde shim.
        ("energy_breakdown_uj_per_batch", to_json(&report.energy)),
        (
            "dram_traffic_bits_per_batch",
            Json::Num(report.dram_traffic_bits as f64),
        ),
        (
            "noc_traffic_bits_per_batch",
            Json::Num(report.noc_traffic_bits as f64),
        ),
    ]);
    let row = vec![
        desc.name.clone(),
        format!("{:.2} M", params as f64 / 1e6),
        format!("{:.1} M", macs as f64 / 1e6),
        format!(
            "{} / {}",
            net.mapping.subarrays_packed, net.mapping.subarrays_naive
        ),
        fmt(samples_per_sec, 1),
        fmt(energy_per_sample_uj, 2),
        format!("{:.0}%", 100.0 * report.energy.dram_share()),
    ];
    (json, row)
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut workloads = Vec::new();
    let mut rows = Vec::new();
    for (family, channels, name) in [
        (Family::Vgg, &[8usize, 10][..], "vgg-style-8-10"),
        (Family::ResNet, &[8usize, 10][..], "resnet-style-8-10"),
    ] {
        let (json, model_rows) = measure_model(family, channels, name, SEED);
        workloads.push(json);
        rows.extend(model_rows);
    }
    print_table(
        "Batched CiM inference engine (model-zoo workload)",
        &[
            "Model",
            "Configuration",
            "Batch time (ms)",
            "Samples/sec",
            "vs serial",
        ],
        &rows,
    );

    // Part 2: graph-compiled zoo architectures, smallest to largest — the
    // per-network scaling table. Scaled to an executable footprint (the
    // full-size graphs are identical in topology; see zoo::scaled).
    let zoo_nets = if smoke() {
        vec![
            zoo::scaled(&zoo::vgg8(4), 16, (16, 16)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 32, (32, 32)),
        ]
    } else {
        vec![
            zoo::scaled(&zoo::vgg8(10), 16, (16, 16)),
            zoo::scaled(&zoo::resnet18(10), 16, (32, 32)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 16, (64, 64)),
            zoo::scaled(&zoo::darknet19(8), 16, (64, 64)),
            zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64)),
        ]
    };
    let mut zoo_json = Vec::new();
    let mut zoo_rows = Vec::new();
    for desc in &zoo_nets {
        let (json, row) = measure_zoo_network(desc, SEED + 7);
        zoo_json.push(json);
        zoo_rows.push(row);
    }
    print_table(
        "Graph-compiled zoo networks (live energy through the executor)",
        &[
            "Network",
            "Params",
            "MACs",
            "Subarrays (packed/naive)",
            "Samples/sec",
            "Energy (uJ/sample)",
            "DRAM share",
        ],
        &zoo_rows,
    );

    let doc = Json::obj([
        ("schema", Json::str("yoloc-bench-engine/2")),
        ("host_parallelism", Json::Num(host as f64)),
        ("smoke", Json::Bool(smoke())),
        ("batch", Json::Num(batch() as f64)),
        ("reps", Json::Num(reps() as f64)),
        (
            "worker_sweep",
            Json::Arr(
                worker_sweep()
                    .into_iter()
                    .map(|w| Json::Num(w as f64))
                    .collect(),
            ),
        ),
        ("workloads", Json::Arr(workloads)),
        ("zoo", Json::Arr(zoo_json)),
    ]);
    let path = if smoke() {
        "target/BENCH_engine.smoke.json"
    } else {
        "BENCH_engine.json"
    };
    std::fs::write(path, doc.render()).expect("write engine report");
    println!("\nwrote {path} (schema yoloc-bench-engine/2, see README.md)");
    println!(
        "note: 'serial' is the pre-engine baseline (one thread, cell-accurate \
         analog path); the batched rows add the popcount fast path and the \
         worker pool on top — all three emit bit-identical logits. The zoo \
         table runs graph-compiled NetworkDesc architectures end-to-end with \
         live memory-hierarchy energy accounting."
    );
}
