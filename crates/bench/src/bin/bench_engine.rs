//! Baseline benchmark of the batched CiM inference engine.
//!
//! Measures samples/sec through a deployed model on three configurations
//! and emits `BENCH_engine.json` (schema in `README.md`):
//!
//! * **serial** — the pre-engine baseline: one thread, cell-accurate
//!   analog reference path (`set_fast_path(false)`);
//! * **serial_fast_path** — one thread, the popcount fast path;
//! * **batched** — `infer_batch` over the persistent [`WorkerPool`] at
//!   1/2/4/8 workers, fast path on.
//!
//! All three produce bit-identical logits (asserted here and pinned by
//! unit tests); the report records the wall-clock cost of that
//! equivalence. On a single-core host the batched curve is flat and the
//! engine speedup comes from the fast path; on multi-core hosts the
//! worker sweep shows through on top of it.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::report::Json;
use yoloc_bench::{fmt, fmt_x, print_table, WorkerPool};
use yoloc_cim::MacroParams;
use yoloc_core::pipeline::CimDeployedModel;
use yoloc_core::strategies::{pretrain_base, TrainConfig};
use yoloc_core::tiny_models::Family;
use yoloc_data::classification::TransferSuite;

const BATCH: usize = 16;
const REPS: usize = 3;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 2022;

/// Median wall-clock seconds of `reps` runs of `f` (one untimed warm-up).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Measured {
    label: &'static str,
    workers: Option<usize>,
    seconds: f64,
}

impl Measured {
    fn samples_per_sec(&self) -> f64 {
        BATCH as f64 / self.seconds
    }

    fn json(&self) -> Json {
        let mut fields = vec![("path", Json::str(self.label))];
        if let Some(w) = self.workers {
            fields.push(("workers", Json::Num(w as f64)));
        }
        fields.push(("seconds", Json::Num(self.seconds)));
        fields.push(("samples_per_sec", Json::Num(self.samples_per_sec())));
        Json::obj(fields)
    }
}

fn measure_model(
    family: Family,
    channels: &[usize],
    name: &str,
    seed: u64,
) -> (Json, Vec<Vec<String>>) {
    let suite = TransferSuite::new(seed);
    println!("[{name}] training at smoke scale ...");
    let model = pretrain_base(
        family,
        channels,
        &suite.pretrain,
        TrainConfig::smoke(),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (cal, _) = suite.pretrain.batch(8, &mut rng);
    let mut deployed = CimDeployedModel::deploy(
        &model,
        &cal,
        MacroParams::rom_paper(),
        MacroParams::sram_paper(),
    );
    let (x, _) = suite.pretrain.batch(BATCH, &mut rng);

    println!("[{name}] measuring serial analog-reference path ...");
    deployed.set_fast_path(false);
    let serial_logits = deployed.infer(&x, &mut rng).0;
    let serial = Measured {
        label: "analog-reference",
        workers: None,
        seconds: median_secs(REPS, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
    };

    println!("[{name}] measuring serial popcount fast path ...");
    deployed.set_fast_path(true);
    let fast_logits = deployed.infer(&x, &mut rng).0;
    assert_eq!(
        serial_logits.data(),
        fast_logits.data(),
        "fast path must be bit-identical to the analog reference"
    );
    let serial_fast = Measured {
        label: "popcount",
        workers: None,
        seconds: median_secs(REPS, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
    };

    let deployed = &deployed; // shared borrow for the pool jobs
    let batched: Vec<Measured> = WORKER_SWEEP
        .iter()
        .map(|&workers| {
            println!("[{name}] measuring batched engine at {workers} worker(s) ...");
            WorkerPool::with(workers, |pool| {
                let batched_logits = deployed.infer_batch(&x, SEED, pool).0;
                assert_eq!(
                    fast_logits.data(),
                    batched_logits.data(),
                    "batched logits must be bit-identical to serial"
                );
                Measured {
                    label: "popcount",
                    workers: Some(workers),
                    seconds: median_secs(REPS, || {
                        std::hint::black_box(deployed.infer_batch(&x, SEED, pool));
                    }),
                }
            })
        })
        .collect();

    let w4 = batched
        .iter()
        .find(|m| m.workers == Some(4))
        .expect("worker sweep includes 4");
    let speedup_w4 = w4.samples_per_sec() / serial.samples_per_sec();

    let mut rows = Vec::new();
    for m in std::iter::once(&serial)
        .chain(std::iter::once(&serial_fast))
        .chain(batched.iter())
    {
        rows.push(vec![
            name.to_string(),
            match m.workers {
                None => format!("serial ({})", m.label),
                Some(w) => format!("batched x{w}"),
            },
            fmt(m.seconds * 1e3, 1),
            fmt(m.samples_per_sec(), 1),
            fmt_x(m.samples_per_sec() / serial.samples_per_sec()),
        ]);
    }

    let json = Json::obj([
        ("model", Json::str(name)),
        ("samples", Json::Num(BATCH as f64)),
        ("serial", serial.json()),
        ("serial_fast_path", serial_fast.json()),
        (
            "batched",
            Json::Arr(batched.iter().map(Measured::json).collect()),
        ),
        ("bit_identical", Json::Bool(true)),
        ("speedup_batched4_vs_serial", Json::Num(speedup_w4)),
    ]);
    (json, rows)
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut workloads = Vec::new();
    let mut rows = Vec::new();
    for (family, channels, name) in [
        (Family::Vgg, &[8usize, 10][..], "vgg-style-8-10"),
        (Family::ResNet, &[8usize, 10][..], "resnet-style-8-10"),
    ] {
        let (json, model_rows) = measure_model(family, channels, name, SEED);
        workloads.push(json);
        rows.extend(model_rows);
    }
    print_table(
        "Batched CiM inference engine (model-zoo workload)",
        &[
            "Model",
            "Configuration",
            "Batch time (ms)",
            "Samples/sec",
            "vs serial",
        ],
        &rows,
    );

    let doc = Json::obj([
        ("schema", Json::str("yoloc-bench-engine/1")),
        ("host_parallelism", Json::Num(host as f64)),
        ("batch", Json::Num(BATCH as f64)),
        ("reps", Json::Num(REPS as f64)),
        (
            "worker_sweep",
            Json::Arr(WORKER_SWEEP.iter().map(|&w| Json::Num(w as f64)).collect()),
        ),
        ("workloads", Json::Arr(workloads)),
    ]);
    std::fs::write("BENCH_engine.json", doc.render()).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json (schema yoloc-bench-engine/1, see README.md)");
    println!(
        "note: 'serial' is the pre-engine baseline (one thread, cell-accurate \
         analog path); the batched rows add the popcount fast path and the \
         worker pool on top — all three emit bit-identical logits."
    );
}
