//! Baseline benchmark of the batched CiM inference engine, plus the
//! graph-compiled model-zoo scaling table.
//!
//! Part 1 measures samples/sec through a deployed `TinyCnn` on three
//! configurations and asserts their equivalence:
//!
//! * **serial** — the pre-engine baseline: one thread, cell-accurate
//!   analog reference path (`set_fast_path(false)`);
//! * **serial_fast_path** — one thread, the popcount fast path;
//! * **batched** — `infer_batch` over the persistent [`WorkerPool`] at
//!   a sweep of worker counts, fast path on.
//!
//! Part 2 exercises the pass-based graph compiler: zoo `NetworkDesc`
//! architectures (width/resolution-scaled so the functional simulator
//! executes them in milliseconds) are compiled with
//! `CompiledNetwork::compile_random` and run end-to-end through
//! `infer_batch` **and** the tile-parallel scheduler (`infer_tiled`),
//! producing a per-network scaling table — parameters, MACs, subarray
//! placement, the pass-pipeline effect (op counts, planned arena vs
//! per-op allocation), the per-op latency profile, and the intra-sample
//! scaling of a *single* inference: wall-clock through the scheduler at a
//! worker sweep plus the host-independent modeled speedup of the
//! tile-parallel latency model (`ExecutionReport::intra_sample_latency_ns`).
//!
//! Schema v4 adds the arena-runtime acceptance measurements per zoo
//! network: a `single_thread` block with the per-inference wall-time
//! median through a reused `ExecArena` (`CompiledNetwork::infer_in`),
//! the steady-state heap-allocation count of that loop (measured by the
//! counting global allocator in [`yoloc_bench::alloc_track`]), and the
//! throughput ratio against the committed v3 baseline's serial
//! per-inference median (carried forward from the previous
//! `BENCH_engine.json` at generation time).
//!
//! Schema v5 adds the `plan_cache` block: per zoo network, the wall time
//! of a cold deploy (full compile + serialized-plan store) vs a warm
//! deploy served from the content-addressed on-disk plan cache
//! ([`yoloc_core::compiler::cache`]), with the recompilation count of
//! each measured via the process-wide compile counter
//! ([`yoloc_core::compiler::compile_count`]) — the acceptance gate is
//! `compiles_warm == 0` by counter, not wall clock. The standalone
//! `bench_plan_cache` binary regenerates just this block and patches it
//! into the committed report without re-running the full harness.
//!
//! Schema v6 adds the `kernel_tier` block: per unique lowered im2col
//! shape across the zoo, `mvm_batch` timed under the forced scalar
//! kernel tier vs the runtime-dispatched tier (AVX2 where the host has
//! it), bit-identity asserted between the two, and the MVM-weighted
//! aggregate `speedup_vs_scalar` plus the selected ISA recorded. The
//! measurement lives in [`yoloc_bench::kernel_tier`]; the standalone
//! `bench_kernels` binary regenerates just this block and patches it
//! into the committed report.
//!
//! Emits `BENCH_engine.json` (schema `yoloc-bench-engine/7`, documented
//! in `README.md`); under `--smoke`/`YOLOC_SMOKE=1` the workload shrinks
//! and the report goes to `target/BENCH_engine.smoke.json` so the
//! committed baseline is not clobbered by tiny-config numbers.
//!
//! `--check-schema` validates an existing report instead of measuring:
//! it parses the committed `BENCH_engine.json` with the shim's JSON
//! parser and checks the schema version, the required fields, and the
//! acceptance properties (modeled intra-sample speedup > 1.5x at 4
//! lanes; planned arena strictly below per-op allocation; zero
//! steady-state allocations; for committed full runs >= 1.5x
//! single-thread throughput over the v3 baseline; zero warm-deploy
//! recompiles in the `plan_cache` block; and the `kernel_tier` gates —
//! bit-identical tiers, speedup >= 1.0 always and >= 2.0 for committed
//! AVX2 runs), exiting non-zero on any violation — the CI gate for the
//! baseline.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::alloc_track::allocations;
use yoloc_bench::report::{to_json, Json};
use yoloc_bench::{fmt, fmt_x, print_table, smoke, smoke_or, WorkerPool};
use yoloc_cim::MacroParams;
use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
use yoloc_core::pipeline::CimDeployedModel;
use yoloc_core::strategies::{pretrain_base, TrainConfig};
use yoloc_core::tiny_models::Family;
use yoloc_data::classification::TransferSuite;
use yoloc_models::NetworkDesc;
use yoloc_tensor::Tensor;

const SEED: u64 = 2022;

fn batch() -> usize {
    smoke_or(4, 16)
}

fn reps() -> usize {
    smoke_or(1, 3)
}

fn worker_sweep() -> Vec<usize> {
    smoke_or(vec![1, 4], vec![1, 2, 4, 8])
}

/// Median wall-clock seconds of `reps` runs of `f` (one untimed warm-up).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Measured {
    label: &'static str,
    workers: Option<usize>,
    seconds: f64,
    samples: usize,
}

impl Measured {
    fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.seconds
    }

    fn json(&self) -> Json {
        let mut fields = vec![("path", Json::str(self.label))];
        if let Some(w) = self.workers {
            fields.push(("workers", to_json(&w)));
        }
        fields.push(("seconds", Json::Num(self.seconds)));
        fields.push(("samples_per_sec", Json::Num(self.samples_per_sec())));
        Json::obj(fields)
    }
}

fn measure_model(
    family: Family,
    channels: &[usize],
    name: &str,
    seed: u64,
) -> (Json, Vec<Vec<String>>) {
    let batch = batch();
    let reps = reps();
    let suite = TransferSuite::new(seed);
    println!("[{name}] training at smoke scale ...");
    let model = pretrain_base(
        family,
        channels,
        &suite.pretrain,
        TrainConfig::smoke(),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (cal, _) = suite.pretrain.batch(8, &mut rng);
    let mut deployed = CimDeployedModel::deploy(
        &model,
        &cal,
        MacroParams::rom_paper(),
        MacroParams::sram_paper(),
    );
    let (x, _) = suite.pretrain.batch(batch, &mut rng);

    println!("[{name}] measuring serial analog-reference path ...");
    deployed.set_fast_path(false);
    let serial_logits = deployed.infer(&x, &mut rng).0;
    let serial = Measured {
        label: "analog-reference",
        workers: None,
        seconds: median_secs(reps, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
        samples: batch,
    };

    println!("[{name}] measuring serial popcount fast path ...");
    deployed.set_fast_path(true);
    let fast_logits = deployed.infer(&x, &mut rng).0;
    assert_eq!(
        serial_logits.data(),
        fast_logits.data(),
        "fast path must be bit-identical to the analog reference"
    );
    let serial_fast = Measured {
        label: "popcount",
        workers: None,
        seconds: median_secs(reps, || {
            std::hint::black_box(deployed.infer(&x, &mut rng));
        }),
        samples: batch,
    };

    let deployed = &deployed; // shared borrow for the pool jobs
    let batched: Vec<Measured> = worker_sweep()
        .into_iter()
        .map(|workers| {
            println!("[{name}] measuring batched engine at {workers} worker(s) ...");
            WorkerPool::with(workers, |pool| {
                let batched_logits = deployed.infer_batch(&x, SEED, pool).0;
                assert_eq!(
                    fast_logits.data(),
                    batched_logits.data(),
                    "batched logits must be bit-identical to serial"
                );
                Measured {
                    label: "popcount",
                    workers: Some(workers),
                    seconds: median_secs(reps, || {
                        std::hint::black_box(deployed.infer_batch(&x, SEED, pool));
                    }),
                    samples: batch,
                }
            })
        })
        .collect();

    let w4 = batched
        .iter()
        .find(|m| m.workers == Some(4))
        .expect("worker sweep includes 4");
    let speedup_w4 = w4.samples_per_sec() / serial.samples_per_sec();

    let mut rows = Vec::new();
    for m in std::iter::once(&serial)
        .chain(std::iter::once(&serial_fast))
        .chain(batched.iter())
    {
        rows.push(vec![
            name.to_string(),
            match m.workers {
                None => format!("serial ({})", m.label),
                Some(w) => format!("batched x{w}"),
            },
            fmt(m.seconds * 1e3, 1),
            fmt(m.samples_per_sec(), 1),
            fmt_x(m.samples_per_sec() / serial.samples_per_sec()),
        ]);
    }

    let json = Json::obj([
        ("model", Json::str(name)),
        ("samples", to_json(&batch)),
        ("serial", serial.json()),
        ("serial_fast_path", serial_fast.json()),
        (
            "batched",
            Json::Arr(batched.iter().map(Measured::json).collect()),
        ),
        ("bit_identical", Json::Bool(true)),
        ("speedup_batched4_vs_serial", Json::Num(speedup_w4)),
    ]);
    (json, rows)
}

/// Loads the previous committed report (if any) and maps each zoo model
/// name to its serial single-thread per-inference median: the v3
/// baseline the v4 acceptance gate measures against. A v3 report
/// provides `intra_sample.serial_wall_secs` directly; a v4 report
/// carries the same number forward as `single_thread.v3_serial_wall_secs`.
fn load_v3_baselines(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    let mut baselines = Vec::new();
    for entry in doc.get("zoo").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(model) = entry.get("model").and_then(Json::as_str) else {
            continue;
        };
        let secs = entry
            .get("single_thread")
            .and_then(|s| s.get("v3_serial_wall_secs"))
            .and_then(Json::as_num)
            .or_else(|| {
                entry
                    .get("intra_sample")
                    .and_then(|i| i.get("serial_wall_secs"))
                    .and_then(Json::as_num)
            });
        if let Some(secs) = secs {
            baselines.push((model.to_string(), secs));
        }
    }
    baselines
}

/// Measures the arena runtime's steady state on one compiled network: a
/// per-inference wall-time median through a reused `ExecArena` and the
/// heap-allocation count of the warmed loop (gated to zero).
fn measure_single_thread(
    net: &CompiledNetwork,
    x: &Tensor,
    reps: usize,
    baseline_v3: Option<f64>,
) -> (Json, f64, u64) {
    let mut rng = StdRng::seed_from_u64(SEED + 11);
    let mut arena = net.take_arena();
    // Warm-up: grow every slot and scratch buffer to steady footprint.
    for _ in 0..2 {
        let (y, r) = net.infer_in(x, &mut rng, &mut arena);
        std::hint::black_box((y.data()[0], r.latency_ns));
    }
    let per_inference_s = median_secs(reps, || {
        let (y, r) = net.infer_in(x, &mut rng, &mut arena);
        std::hint::black_box((y.data()[0], r.latency_ns));
    });
    // Allocation window: warmed loop, single thread, no pools open.
    let alloc_loops = 5u64;
    let before = allocations();
    for _ in 0..alloc_loops {
        let (y, r) = net.infer_in(x, &mut rng, &mut arena);
        std::hint::black_box((y.data()[0], r.latency_ns));
    }
    let steady_allocs = allocations() - before;
    net.give_arena(arena);
    let mut fields = vec![
        ("per_inference_s", Json::Num(per_inference_s)),
        ("samples_per_sec", Json::Num(1.0 / per_inference_s)),
        (
            "steady_state_allocs",
            Json::Num(steady_allocs as f64 / alloc_loops as f64),
        ),
    ];
    let mut speedup = f64::NAN;
    if let Some(v3) = baseline_v3 {
        speedup = v3 / per_inference_s;
        fields.push(("v3_serial_wall_secs", Json::Num(v3)));
        fields.push(("speedup_vs_v3", Json::Num(speedup)));
    }
    (Json::obj(fields), speedup, steady_allocs)
}

/// Compiles one scaled zoo architecture, runs it end-to-end through the
/// batched engine and the tile-parallel scheduler, and reports
/// throughput, intra-sample scaling, arena planning, the zero-allocation
/// steady state and the live energy breakdown.
fn measure_zoo_network(
    desc: &NetworkDesc,
    seed: u64,
    baseline_v3: Option<f64>,
) -> (Json, Vec<String>) {
    let batch = batch();
    let reps = reps();
    println!("[zoo:{}] compiling onto the macro fabric ...", desc.name);
    let net = CompiledNetwork::compile_random(desc, seed, CompileOptions::paper_default())
        .expect("zoo description must compile");
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (c, h, w) = net.input_shape();
    let x = Tensor::rand_uniform(&[batch, c, h, w], 0.0, 1.0, &mut rng);
    println!("[zoo:{}] executing through infer_batch ...", desc.name);
    let (report, seconds) = WorkerPool::with(4, |pool| {
        let (_, report) = net.infer_batch(&x, seed, pool);
        let seconds = median_secs(reps, || {
            std::hint::black_box(net.infer_batch(&x, seed, pool));
        });
        (report, seconds)
    });

    // Intra-sample scaling: ONE sample through the tile-parallel
    // scheduler at a worker sweep (wall-clock is host-bound; the modeled
    // speedup comes from the deterministic tile-parallel latency model
    // and is what the acceptance gate checks).
    println!("[zoo:{}] single-sample scheduler sweep ...", desc.name);
    let one = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
    let (serial_one, one_report) = net.infer(&one, &mut rng);
    let serial_one_secs = median_secs(reps, || {
        std::hint::black_box(net.infer(&one, &mut rng));
    });
    let tiled: Vec<(usize, f64)> = worker_sweep()
        .into_iter()
        .map(|workers| {
            WorkerPool::with(workers, |pool| {
                let (tiled_logits, _) = net.infer_tiled(&one, seed, pool);
                assert_eq!(
                    serial_one.data(),
                    tiled_logits.data(),
                    "scheduler must be bit-identical to the serial interpreter"
                );
                let secs = median_secs(reps, || {
                    std::hint::black_box(net.infer_tiled(&one, seed, pool));
                });
                (workers, secs)
            })
        })
        .collect();
    let modeled_speedup_4l = one_report
        .intra_sample_speedup(4)
        .expect("4-lane model present");

    // v4: the arena runtime's steady state — per-inference median,
    // zero-allocation gate, and throughput vs the committed v3 baseline.
    println!("[zoo:{}] single-thread arena steady state ...", desc.name);
    let (single_thread, speedup_vs_v3, steady_allocs) =
        measure_single_thread(&net, &one, reps, baseline_v3);

    let params = desc.param_count();
    let macs = desc.macs().expect("analyzable");
    let per_sample = |v: f64| v / batch as f64;
    let energy_per_sample_uj = per_sample(report.energy.total_uj());
    let samples_per_sec = batch as f64 / seconds;
    let intra_sample = Json::obj([
        (
            "lanes",
            Json::Arr(
                yoloc_core::compiler::ExecutionReport::INTRA_SAMPLE_LANES
                    .iter()
                    .map(|&l| Json::Num(l as f64))
                    .collect(),
            ),
        ),
        (
            "modeled_latency_ns",
            Json::Arr(
                one_report
                    .intra_sample_latency_ns
                    .iter()
                    .map(|&v| Json::Num(v))
                    .collect(),
            ),
        ),
        ("speedup_4w", Json::Num(modeled_speedup_4l)),
        ("serial_wall_secs", Json::Num(serial_one_secs)),
        (
            "tiled_wall_secs",
            Json::Arr(
                tiled
                    .iter()
                    .map(|&(workers, secs)| {
                        Json::obj([
                            ("workers", Json::Num(workers as f64)),
                            ("seconds", Json::Num(secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let json = Json::obj([
        ("model", Json::str(desc.name.clone())),
        ("params", to_json(&params)),
        ("macs", to_json(&macs)),
        ("samples", to_json(&batch)),
        ("subarrays_naive", to_json(&net.mapping.subarrays_naive)),
        ("subarrays_packed", to_json(&net.mapping.subarrays_packed)),
        (
            "utilization_packed",
            Json::Num(net.mapping.utilization_packed),
        ),
        (
            "pass_pipeline",
            Json::Arr(
                net.pass_reports
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("pass", Json::str(p.pass)),
                            ("ops_before", to_json(&p.ops_before)),
                            ("ops_after", to_json(&p.ops_after)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("peak_arena_bytes", to_json(&one_report.peak_arena_bytes)),
        ("naive_arena_bytes", to_json(&one_report.naive_arena_bytes)),
        (
            "per_op_latency_ns",
            Json::Arr(
                one_report
                    .per_op_latency_ns
                    .iter()
                    .map(|&v| Json::Num(v))
                    .collect(),
            ),
        ),
        ("intra_sample", intra_sample),
        ("single_thread", single_thread),
        ("samples_per_sec", Json::Num(samples_per_sec)),
        (
            "latency_ms_per_sample",
            Json::Num(per_sample(report.latency_ns) / 1e6),
        ),
        ("energy_uj_per_sample", Json::Num(energy_per_sample_uj)),
        // The live, measured breakdown — serialized straight from the
        // executor's EnergyBreakdown via the serde shim.
        ("energy_breakdown_uj_per_batch", to_json(&report.energy)),
        (
            "dram_traffic_bits_per_batch",
            to_json(&report.dram_traffic_bits),
        ),
        (
            "noc_traffic_bits_per_batch",
            to_json(&report.noc_traffic_bits),
        ),
    ]);
    let row = vec![
        desc.name.clone(),
        format!("{:.2} M", params as f64 / 1e6),
        format!("{:.1} M", macs as f64 / 1e6),
        format!(
            "{} / {}",
            net.mapping.subarrays_packed, net.mapping.subarrays_naive
        ),
        fmt(samples_per_sec, 1),
        if speedup_vs_v3.is_nan() {
            "-".to_string()
        } else {
            fmt_x(speedup_vs_v3)
        },
        format!("{steady_allocs}"),
        fmt_x(modeled_speedup_4l),
        format!(
            "{:.0} / {:.0} KiB",
            one_report.peak_arena_bytes as f64 / 1024.0,
            one_report.naive_arena_bytes as f64 / 1024.0
        ),
        fmt(energy_per_sample_uj, 2),
    ];
    (json, row)
}

/// Validates an existing `BENCH_engine.json` against the v6 schema and
/// the acceptance properties; returns every violation found.
fn schema_violations(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let smoke_doc = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    // A bootstrap run (no previous committed report to read baselines
    // from) legitimately carries no v3 ratios: it *is* the new baseline.
    let bootstrap_doc = doc
        .get("baseline_bootstrap")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errs.push(msg.to_string());
        }
    };
    check(
        doc.get("schema").and_then(Json::as_str) == Some("yoloc-bench-engine/7"),
        "schema must be \"yoloc-bench-engine/7\"",
    );
    for key in ["host_parallelism", "batch", "reps", "workloads"] {
        check(
            doc.get(key).is_some(),
            &format!("missing top-level {key:?}"),
        );
    }
    let zoo = doc.get("zoo").and_then(Json::as_arr).unwrap_or(&[]);
    check(!zoo.is_empty(), "zoo scaling table must be non-empty");
    for entry in zoo {
        let model = entry
            .get("model")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let mut check = |cond: bool, msg: &str| {
            if !cond {
                errs.push(format!("zoo[{model}]: {msg}"));
            }
        };
        for key in [
            "params",
            "macs",
            "subarrays_packed",
            "pass_pipeline",
            "per_op_latency_ns",
            "energy_breakdown_uj_per_batch",
        ] {
            check(entry.get(key).is_some(), &format!("missing {key:?}"));
        }
        check(
            entry
                .get("per_op_latency_ns")
                .and_then(Json::as_arr)
                .is_some_and(|a| !a.is_empty()),
            "per_op_latency_ns must be a non-empty array",
        );
        // Byte counts are read back exactly (`as_u64`), not through a
        // lossy f64 — see the shim's integer-preserving JSON variants.
        let peak = entry.get("peak_arena_bytes").and_then(Json::as_u64);
        let naive = entry.get("naive_arena_bytes").and_then(Json::as_u64);
        check(peak.is_some(), "missing peak_arena_bytes");
        check(naive.is_some(), "missing naive_arena_bytes");
        if let (Some(p), Some(n)) = (peak, naive) {
            check(
                p < n,
                &format!("planned arena ({p} B) must beat per-op allocation ({n} B)"),
            );
        }
        let speedup = entry
            .get("intra_sample")
            .and_then(|i| i.get("speedup_4w"))
            .and_then(Json::as_num);
        check(speedup.is_some(), "missing intra_sample.speedup_4w");
        if let Some(s) = speedup {
            check(
                s > 1.5,
                &format!("intra-sample speedup at 4 workers is {s:.2}, need > 1.5"),
            );
        }
        // v4 gates: the arena steady state must be allocation-free, and
        // committed full runs must beat the v3 baseline by >= 1.5x
        // single-thread (smoke configs have no comparable baseline).
        let st = entry.get("single_thread");
        check(st.is_some(), "missing single_thread block");
        if let Some(st) = st {
            check(
                st.get("per_inference_s")
                    .and_then(Json::as_num)
                    .is_some_and(|v| v > 0.0),
                "single_thread.per_inference_s must be positive",
            );
            let allocs = st.get("steady_state_allocs").and_then(Json::as_num);
            check(
                allocs.is_some(),
                "missing single_thread.steady_state_allocs",
            );
            if let Some(a) = allocs {
                check(
                    a == 0.0,
                    &format!("steady-state inference allocated ({a} allocs/inference), need 0"),
                );
            }
            if !smoke_doc {
                let vs_v3 = st.get("speedup_vs_v3").and_then(Json::as_num);
                check(
                    vs_v3.is_some() || bootstrap_doc,
                    "missing single_thread.speedup_vs_v3 (v3 baseline not carried)",
                );
                if let Some(s) = vs_v3 {
                    check(
                        s >= 1.5,
                        &format!("single-thread speedup over v3 baseline is {s:.2}x, need >= 1.5x"),
                    );
                }
            }
        }
    }
    // v5 gates: the content-addressed plan cache must serve every warm
    // deploy without recompiling (counted, not timed) and the cached
    // plan must execute bit-identically to the cold compile.
    let plan_cache = doc.get("plan_cache").and_then(Json::as_arr);
    if plan_cache.is_none_or(|a| a.is_empty()) {
        errs.push("plan_cache block must be a non-empty array".to_string());
    }
    for entry in plan_cache.unwrap_or(&[]) {
        let model = entry
            .get("model")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let mut check = |cond: bool, msg: &str| {
            if !cond {
                errs.push(format!("plan_cache[{model}]: {msg}"));
            }
        };
        check(
            entry
                .get("cold_compile_s")
                .and_then(Json::as_num)
                .is_some_and(|v| v > 0.0),
            "cold_compile_s must be positive",
        );
        check(
            entry
                .get("warm_lookup_s")
                .and_then(Json::as_num)
                .is_some_and(|v| v > 0.0),
            "warm_lookup_s must be positive",
        );
        // Compile counters are exact integers; `as_u64` reads them back
        // without the 2^53 f64 precision cliff.
        check(
            entry
                .get("compiles_cold")
                .and_then(Json::as_u64)
                .is_some_and(|c| c >= 1),
            "compiles_cold must be >= 1 (a cold deploy compiles)",
        );
        let warm = entry.get("compiles_warm").and_then(Json::as_u64);
        check(warm.is_some(), "missing compiles_warm");
        if let Some(w) = warm {
            check(
                w == 0,
                &format!("warm deploy recompiled ({w} compiles, need 0)"),
            );
        }
        check(
            entry.get("bit_identical").and_then(Json::as_bool) == Some(true),
            "cached plan must execute bit-identically to the cold compile",
        );
    }
    // v6 gates: the dispatched kernel tier must be bit-identical to the
    // scalar reference and at least break even (>= 2x on committed AVX2
    // runs) — shared with the standalone `bench_kernels` patcher.
    errs.extend(yoloc_bench::kernel_tier::kernel_tier_violations(doc));
    errs
}

/// `--check-schema` mode: parse + validate the committed baseline.
fn check_schema(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let errs = schema_violations(&doc);
    if errs.is_empty() {
        println!(
            "{path}: schema yoloc-bench-engine/7 OK ({} bytes)",
            text.len()
        );
        std::process::exit(0);
    }
    eprintln!("{path}: {} schema violation(s):", errs.len());
    for e in &errs {
        eprintln!("  - {e}");
    }
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--check-schema") {
        let path = std::env::args()
            .skip_while(|a| a != "--check-schema")
            .nth(1)
            .unwrap_or_else(|| "BENCH_engine.json".to_string());
        check_schema(&path);
    }
    let host = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut workloads = Vec::new();
    let mut rows = Vec::new();
    for (family, channels, name) in [
        (Family::Vgg, &[8usize, 10][..], "vgg-style-8-10"),
        (Family::ResNet, &[8usize, 10][..], "resnet-style-8-10"),
    ] {
        let (json, model_rows) = measure_model(family, channels, name, SEED);
        workloads.push(json);
        rows.extend(model_rows);
    }
    print_table(
        "Batched CiM inference engine (model-zoo workload)",
        &[
            "Model",
            "Configuration",
            "Batch time (ms)",
            "Samples/sec",
            "vs serial",
        ],
        &rows,
    );

    // Part 2: graph-compiled zoo architectures, smallest to largest — the
    // per-network scaling table. Scaled to an executable footprint (the
    // full-size graphs are identical in topology; see zoo::scaled).
    let zoo_nets = yoloc_bench::plan_cache::zoo_nets();
    // Full runs compare the arena runtime against the previously
    // committed baseline's serial per-inference medians; smoke configs
    // have no comparable baseline entry and skip the ratio.
    let baselines = if smoke() {
        Vec::new()
    } else {
        load_v3_baselines("BENCH_engine.json")
    };
    let mut zoo_json = Vec::new();
    let mut zoo_rows = Vec::new();
    for desc in &zoo_nets {
        let baseline = baselines
            .iter()
            .find(|(m, _)| *m == desc.name)
            .map(|&(_, s)| s);
        let (json, row) = measure_zoo_network(desc, SEED + 7, baseline);
        zoo_json.push(json);
        zoo_rows.push(row);
    }
    print_table(
        "Graph-compiled zoo networks (pass pipeline + tile-parallel scheduler)",
        &[
            "Network",
            "Params",
            "MACs",
            "Subarrays (packed/naive)",
            "Samples/sec",
            "vs v3 (1-thread)",
            "Steady allocs",
            "Intra-sample x4 (modeled)",
            "Arena (planned/naive)",
            "Energy (uJ/sample)",
        ],
        &zoo_rows,
    );

    // v5: cold vs warm deploys through the content-addressed plan cache
    // (recompiles counted, warm gated to zero, bit-identical execution).
    let cache_entries = yoloc_bench::plan_cache::measure_plan_cache(&zoo_nets, SEED + 7);
    print_table(
        "Content-addressed plan cache (cold compile vs warm disk deploy)",
        &[
            "Network",
            "Cold compile (ms)",
            "Warm deploy (ms)",
            "Speedup",
            "Compiles (cold/warm)",
            "Bit-identical",
        ],
        &yoloc_bench::plan_cache::plan_cache_rows(&cache_entries),
    );

    // v6/v7: the kernel-tier block — scalar vs dispatched `mvm_batch`
    // on the zoo's lowered shapes, bit-identity asserted, speedup gated;
    // v7 adds the staging split and per-shape time shares.
    let kernel_tier = yoloc_bench::kernel_tier::measure_kernel_tier(&zoo_nets, SEED + 13);
    print_table(
        "Kernel tiers on the zoo's lowered MVM shapes (scalar vs dispatched)",
        &[
            "Shape (outs x ins)",
            "MVMs/pass",
            "Scalar (ns/mvm)",
            "Dispatched (ns/mvm)",
            "Stage (ns/mvm)",
            "Layout",
            "Time share",
            "Speedup",
            "Bit-identical",
        ],
        &kernel_tier.rows(),
    );
    println!(
        "selected kernel tier: {} (avx2 detected: {}, avx512 detected: {}), MVM-weighted speedup {}",
        kernel_tier.selected.label(),
        kernel_tier.avx2_detected,
        kernel_tier.avx512_detected,
        fmt_x(kernel_tier.speedup_vs_scalar)
    );

    let doc = Json::obj([
        ("schema", Json::str("yoloc-bench-engine/7")),
        ("host_parallelism", to_json(&host)),
        ("smoke", Json::Bool(smoke())),
        (
            "baseline_bootstrap",
            Json::Bool(!smoke() && baselines.is_empty()),
        ),
        ("batch", to_json(&batch())),
        ("reps", to_json(&reps())),
        (
            "worker_sweep",
            Json::Arr(
                worker_sweep()
                    .into_iter()
                    .map(|w| Json::Num(w as f64))
                    .collect(),
            ),
        ),
        ("workloads", Json::Arr(workloads)),
        ("zoo", Json::Arr(zoo_json)),
        (
            "plan_cache",
            yoloc_bench::plan_cache::plan_cache_json(&cache_entries),
        ),
        ("kernel_tier", kernel_tier.json()),
    ]);
    let path = if smoke() {
        "target/BENCH_engine.smoke.json"
    } else {
        "BENCH_engine.json"
    };
    // Write before self-validating so a violation never discards the
    // measurements (the file is what a bootstrap or debugging run needs).
    std::fs::write(path, doc.render()).expect("write engine report");
    let violations = schema_violations(&doc);
    assert!(
        violations.is_empty(),
        "generated report violates its own schema (written to {path} anyway): {violations:?}"
    );
    println!("\nwrote {path} (schema yoloc-bench-engine/7, see README.md)");
    println!(
        "note: 'serial' is the pre-engine baseline (one thread, cell-accurate \
         analog path); the batched rows add the popcount fast path and the \
         worker pool on top — all three emit bit-identical logits. The zoo \
         table runs graph-compiled NetworkDesc architectures end-to-end \
         (epilogue fusion + arena runtime + batched MVM kernel + \
         tile-parallel scheduler) with live memory-hierarchy energy \
         accounting; 'vs v3 (1-thread)' is the measured single-thread \
         speedup of the arena runtime over the committed v3 baseline, \
         'Steady allocs' the heap allocations of a warmed-up inference \
         (gated to zero), and 'Intra-sample x4' the modeled \
         single-inference speedup at 4 macro-cluster lanes."
    );
}
