//! Prints the model zoo's parameter and MAC budgets — the quantitative
//! basis of the paper's motivation ("Tiny-YOLO and YOLO have 11.3 M and
//! 46 M weights") and of every capacity argument downstream.

use yoloc_bench::{fmt, print_table};
use yoloc_models::summary::summary_markdown;
use yoloc_models::zoo;

fn main() {
    let models = [
        zoo::vgg8(100),
        zoo::resnet18(1000),
        zoo::darknet19(1000),
        zoo::tiny_yolo(20, 5),
        zoo::yolo_v2(20, 5),
    ];
    let mut rows = Vec::new();
    for net in &models {
        let macs = net.macs().expect("consistent");
        rows.push(vec![
            net.name.clone(),
            format!("{}x{}x{}", net.input.0, net.input.1, net.input.2),
            fmt(net.param_count() as f64 / 1e6, 2),
            fmt(net.cim_param_count() as f64 / 1e6, 2),
            fmt(macs as f64 / 1e9, 2),
            fmt(
                net.weight_bits(8) as f64 / 8.0 / 1e6 / 1.048_576 / 1.048_576 * 1.048_576,
                1,
            ),
        ]);
    }
    print_table(
        "Model zoo",
        &[
            "Model",
            "Input",
            "Params (M)",
            "CiM params (M)",
            "GMACs/inference",
            "8-bit weight storage (MB)",
        ],
        &rows,
    );
    println!(
        "\nPaper: Tiny-YOLO 11.3 M and YOLO 46 M weights (we build the standard \
         v2 architectures: 15.9 M and 50.6 M; see EXPERIMENTS.md)."
    );
    println!(
        "\n{}",
        summary_markdown(&zoo::yolo_v2(20, 5)).expect("consistent")
    );
}
