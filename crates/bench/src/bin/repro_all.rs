//! Runs reproduction artifacts in one go.
//!
//! Default mode runs every *analytic* artifact (Table I, Fig. 1/4, the
//! Fig. 14 system comparison, ablations, sweeps and the model zoo) and
//! prints the commands for the training-based figures, which take minutes
//! each.
//!
//! `--smoke` runs **every** bench binary — training figures and the
//! engine benchmark included — with `YOLOC_SMOKE=1` exported to each
//! child, which shrinks their workloads to tiny configurations that
//! finish in seconds. `ci.sh` uses this mode so the bins are *run* in CI,
//! not just compiled; a child failure fails the runner.

use std::process::Command;

/// The analytic artifacts (fast at full scale).
const ANALYTIC: &[&str] = &[
    "table1_macro",
    "fig01_scaling",
    "fig04_cells",
    "model_zoo",
    "fig14_system",
    "ablation_mapping",
    "ablation_adc",
    "sweep_sensitivity",
    "sweep_chiplets",
    "onchip_training",
];

/// Training-based artifacts plus the engine benchmark (minutes at full
/// scale; seconds under smoke).
const HEAVY: &[&str] = &[
    "fig06_atl",
    "fig10_generalization",
    "fig11_compression",
    "fig12_detection",
    "accuracy_on_cim",
    "bench_engine",
    "bench_serve",
    "bench_faults",
];

fn run(bin: &str, smoke: bool) -> bool {
    println!("\n==================== {bin} ====================");
    let mut cmd = Command::new(
        std::env::current_exe()
            .expect("self path")
            .with_file_name(bin),
    );
    if smoke {
        cmd.env("YOLOC_SMOKE", "1");
    }
    match cmd.status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("{bin} exited with {s}");
            false
        }
        Err(e) => {
            eprintln!("failed to launch {bin}: {e} (build with --release -p yoloc-bench first)");
            false
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bins: Vec<&str> = if smoke {
        ANALYTIC.iter().chain(HEAVY.iter()).copied().collect()
    } else {
        ANALYTIC.to_vec()
    };
    let mut failed = Vec::new();
    for bin in bins {
        if !run(bin, smoke) {
            failed.push(bin);
        }
    }
    if !failed.is_empty() {
        eprintln!("\nFAILURES: {failed:?}");
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke: every bench binary ran clean on tiny configs.");
        return;
    }
    println!(
        "\nTraining-based artifacts (minutes each):\n  cargo run --release -p \
         yoloc-bench --bin fig06_atl\n  cargo run --release -p yoloc-bench --bin \
         fig10_generalization\n  cargo run --release -p yoloc-bench --bin \
         fig11_compression\n  cargo run --release -p yoloc-bench --bin \
         fig12_detection\n  cargo run --release -p yoloc-bench --bin accuracy_on_cim"
    );
    println!(
        "\nEngine baseline (writes BENCH_engine.json):\n  cargo run --release -p \
         yoloc-bench --bin bench_engine\n\nFast CI pass over every bin: repro_all --smoke"
    );
}
