//! Runs every *analytic* reproduction artifact in one go (Table I,
//! Fig. 1/4, the Fig. 14 system comparison, ablations, sweeps and the
//! model zoo). The training-based figures (6b, 10, 11, 12) and the
//! deployment accuracy check take minutes each and have their own
//! binaries — this runner prints the commands for them at the end.

use std::process::Command;

fn run(bin: &str) {
    println!("\n==================== {bin} ====================");
    let status = Command::new(
        std::env::current_exe()
            .expect("self path")
            .with_file_name(bin),
    )
    .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => {
            eprintln!("failed to launch {bin}: {e} (build with --release -p yoloc-bench first)")
        }
    }
}

fn main() {
    for bin in [
        "table1_macro",
        "fig01_scaling",
        "fig04_cells",
        "model_zoo",
        "fig14_system",
        "ablation_mapping",
        "ablation_adc",
        "sweep_sensitivity",
        "sweep_chiplets",
        "onchip_training",
    ] {
        run(bin);
    }
    println!(
        "\nTraining-based artifacts (minutes each):\n  cargo run --release -p \
         yoloc-bench --bin fig06_atl\n  cargo run --release -p yoloc-bench --bin \
         fig10_generalization\n  cargo run --release -p yoloc-bench --bin \
         fig11_compression\n  cargo run --release -p yoloc-bench --bin \
         fig12_detection\n  cargo run --release -p yoloc-bench --bin accuracy_on_cim"
    );
    println!(
        "\nEngine baseline (writes BENCH_engine.json):\n  cargo run --release -p \
         yoloc-bench --bin bench_engine"
    );
}
