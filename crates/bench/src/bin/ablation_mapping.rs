//! Ablation: the paper's shared-subarray weight-mapping optimization
//! (§4.3.2, "storing the weights of different layers to the same
//! sub-array") versus a naive one-layer-per-subarray mapping.

use yoloc_bench::{fmt, pct, print_table};
use yoloc_cim::MacroParams;
use yoloc_core::mapping::map_network;
use yoloc_models::zoo;

fn main() {
    let params = MacroParams::rom_paper();
    // The paper's models use power-of-two widths that tile the 128x256
    // grid almost perfectly; an odd-width edge model shows where the
    // packing optimization actually pays.
    let mut odd = yoloc_models::NetworkDesc::new("odd-width-edge-net", (3, 32, 32));
    let widths = [20usize, 36, 52, 68, 84, 100];
    let mut prev = 3;
    for (i, &w) in widths.iter().enumerate() {
        odd.layers.push(yoloc_models::LayerSpec::Conv {
            name: format!("c{i}"),
            in_ch: prev,
            out_ch: w,
            kernel: 3,
            stride: 1,
            padding: 1,
            bias: false,
        });
        prev = w;
    }
    let models = [
        zoo::vgg8(100),
        zoo::resnet18(100),
        zoo::darknet19(1000),
        zoo::tiny_yolo(20, 5),
        zoo::yolo_v2(20, 5),
        odd,
    ];
    let mut rows = Vec::new();
    for net in &models {
        let m = map_network(net, &params).expect("consistent model");
        rows.push(vec![
            net.name.clone(),
            m.subarrays_naive.to_string(),
            m.subarrays_packed.to_string(),
            pct(m.utilization_naive),
            pct(m.utilization_packed),
            fmt(
                (m.subarrays_naive - m.subarrays_packed) as f64
                    * params.subarray_bits() as f64
                    * params.cell.area_um2()
                    / 1e6,
                3,
            ),
        ]);
    }
    print_table(
        "Weight-mapping ablation: naive vs shared-subarray packing",
        &[
            "Model",
            "Subarrays (naive)",
            "Subarrays (packed)",
            "Utilization (naive)",
            "Utilization (packed)",
            "Array area saved (mm2)",
        ],
        &rows,
    );
    println!(
        "\nHigher utilization means fewer subarrays per layer set, so more \
         subarrays can be activated in parallel per ADC bank — the paper's \
         'high ADC utilization and thus reduced latency' argument."
    );
}
