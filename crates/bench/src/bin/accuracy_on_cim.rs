//! End-to-end accuracy check of the deployed datapath: train a model in
//! software, compile it onto ROM/SRAM CiM macros, and compare accuracy
//! through the analog simulator — the executable form of the paper's
//! "almost no accuracy loss (-0.5% ~ +0.2%)" claim, with the per-domain
//! energy split on the side.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_bench::{default_workers, fmt, pct, print_table, smoke_or, WorkerPool};
use yoloc_cim::MacroParams;
use yoloc_core::pipeline::{accuracy_software_vs_cim_batch, CimDeployedModel};
use yoloc_core::rebranch::ReBranchRatios;
use yoloc_core::strategies::{
    build_strategy_model, pretrain_base, train_model, Strategy, TrainConfig,
};
use yoloc_core::tiny_models::Family;
use yoloc_data::classification::TransferSuite;

fn main() {
    let seed = 404;
    let suite = TransferSuite::new(seed);
    println!("Training the software model ...");
    let base = pretrain_base(
        Family::Vgg,
        &[12, 16, 20],
        &suite.pretrain,
        smoke_or(TrainConfig::smoke(), TrainConfig::pretrain()),
        seed,
    );
    // Also deploy a ReBranch-transferred model (the real YOLoC scenario).
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let target = &suite.cifar10_like;
    let mut rb_model = build_strategy_model(
        &base,
        Strategy::ReBranch(ReBranchRatios::paper_default()),
        target.classes(),
        &mut rng,
    );
    train_model(
        &mut rb_model,
        target,
        smoke_or(TrainConfig::smoke(), TrainConfig::transfer()),
        &mut rng,
        |_| {},
    );

    let rom = MacroParams::rom_paper();
    let sram = MacroParams::sram_paper();
    // Deploy both models first, then evaluate each through the batched
    // engine on one persistent pool (per-sample RNG streams keep the
    // result independent of the worker count).
    let mut base = base;
    let (cal_base, _) = suite.pretrain.batch(16, &mut rng);
    let deployed_base = CimDeployedModel::deploy(&base, &cal_base, rom, sram);
    let (cal_rb, _) = target.batch(16, &mut rng);
    let deployed_rb = CimDeployedModel::deploy(&rb_model, &cal_rb, rom, sram);

    let workers = default_workers();
    let mut rows = Vec::new();
    WorkerPool::with(workers, |pool| {
        for (label, model, deployed, task) in [
            (
                "pretrained base (plain)",
                &mut base,
                &deployed_base,
                &suite.pretrain,
            ),
            (
                "ReBranch transfer (YOLoC)",
                &mut rb_model,
                &deployed_rb,
                target,
            ),
        ] {
            let (sw, cim, stats) = accuracy_software_vs_cim_batch(
                model,
                deployed,
                task,
                smoke_or(40, 300),
                seed + 2,
                pool,
            );
            rows.push(vec![
                label.to_string(),
                pct(sw as f64),
                pct(cim as f64),
                format!("{:+.1} pp", 100.0 * (cim - sw)),
                fmt(stats.rom.energy_pj / 1e6, 2),
                fmt(stats.sram.energy_pj / 1e6, 2),
            ]);
        }
    });
    print_table(
        "Accuracy through the analog CiM datapath (300 samples, batched engine)",
        &[
            "Model",
            "Software accuracy",
            "CiM accuracy",
            "Delta",
            "ROM energy (uJ/batch)",
            "SRAM energy (uJ/batch)",
        ],
        &rows,
    );
    println!(
        "\nPaper: deploying on the 8b x 8b ROM-CiM datapath costs between -0.5% \
         and +0.2% accuracy; the 5-bit ADC at 10 rows/activation is lossless, so \
         the only deviation is 8-bit quantization."
    );
}
