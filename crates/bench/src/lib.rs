//! # yoloc-bench
//!
//! Reproduction harness for every table and figure in the YOLoC paper's
//! evaluation (DAC 2022). Each binary under `src/bin/` regenerates one
//! artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig01_scaling` | Fig. 1(a) technology-scaling argument |
//! | `fig04_cells` | Fig. 4 CiM cell comparison |
//! | `fig06_atl` | Fig. 6(b) transferability decay |
//! | `fig10_generalization` | Fig. 10 ReBranch generalization |
//! | `fig11_compression` | Fig. 11 D/U compression sweep |
//! | `fig12_detection` | Fig. 12 detection mAP and chip area |
//! | `fig14_system` | Fig. 14 system-level comparison |
//! | `table1_macro` | Table I macro specification |
//!
//! Run e.g. `cargo run --release -p yoloc-bench --bin fig14_system`.
//! Criterion micro-benchmarks of the underlying kernels live under
//! `benches/`. The `bench_engine` binary measures the batched inference
//! engine itself and emits the `BENCH_engine.json` baseline (schema
//! documented in the repository `README.md`).

// `deny` rather than `forbid`: the counting global allocator in
// `alloc_track` is the one place unsafe code is permitted (implementing
// `GlobalAlloc` requires it), explicitly allowed per-module below.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_track;
pub mod kernel_tier;
pub mod plan_cache;
pub mod report;

pub use yoloc_core::engine::WorkerPool;

/// Runs independent jobs on worker threads (one per available core, at
/// most `jobs.len()`), preserving input order in the output.
///
/// Convenience wrapper over the shared [`WorkerPool`]: one pool is opened
/// for the call and torn down after. Binaries that dispatch repeatedly
/// should hold a pool open with [`WorkerPool::with`] instead and call
/// [`WorkerPool::run`] on it directly.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = default_workers().min(jobs.len().max(1));
    WorkerPool::with(workers, |pool| pool.run(jobs))
}

/// Whether the harness runs in smoke mode (`YOLOC_SMOKE=1`, set by
/// `repro_all --smoke` and `ci.sh`): every binary shrinks its workload to
/// a tiny configuration that finishes in seconds while still executing
/// its full code path — the bins are *run* in CI, not just compiled.
pub fn smoke() -> bool {
    std::env::var_os("YOLOC_SMOKE").is_some_and(|v| v != "0")
}

/// Picks the smoke-mode value when [`smoke`] is active, the full-run
/// value otherwise.
pub fn smoke_or<T>(smoke_value: T, full_value: T) -> T {
    if smoke() {
        smoke_value
    } else {
        full_value
    }
}

/// The worker count the bench binaries open their pools with: one lane
/// per available core (falling back to 4 when the count is unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |v| v.get())
}

/// Prints a GitHub-markdown table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a ratio as `N.Nx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_x(14.81), "14.8x");
        assert_eq!(pct(0.125), "12.5%");
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i: usize| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_parallel(jobs).is_empty());
    }
}
