//! Machine-readable benchmark reports on the shim's JSON tree.
//!
//! The value tree and renderer live in the offline `serde` shim
//! ([`serde::json::Value`], re-exported here as [`Json`]); report structs
//! across the workspace derive `serde::Serialize` and convert with
//! [`serde::Serialize::to_json`]. Object fields keep insertion order, so
//! rendered reports (e.g. `BENCH_engine.json`) are stable byte-for-byte
//! for identical measurements and stay diffable across runs and builds.

/// The JSON value tree benchmark reports are assembled from (the shim's
/// `serde::json::Value` under its pre-port name).
pub use serde::json::Value as Json;

/// Converts any `serde::Serialize` value into a [`Json`] tree.
///
/// # Examples
///
/// ```
/// use yoloc_bench::report::{to_json, Json};
///
/// let spec = yoloc_cim::MacroParams::rom_paper().spec();
/// let doc = to_json(&spec);
/// assert!(matches!(doc, Json::Obj(_)));
/// assert!(doc.render().contains("\"weight_bits\": 8"));
/// ```
pub fn to_json(v: &impl serde::Serialize) -> Json {
    v.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("name", Json::str("engine")),
            ("ok", Json::Bool(true)),
            ("samples", Json::Num(16.0)),
            ("rate", Json::Num(2.5)),
            ("runs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"engine\""));
        assert!(text.contains("\"samples\": 16,"));
        assert!(text.contains("\"rate\": 2.5,"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn object_keys_are_escaped() {
        let doc = Json::Obj(vec![("a\"b".to_string(), Json::Null)]);
        assert_eq!(doc.render(), "{\n  \"a\\\"b\": null\n}\n");
    }

    #[test]
    fn non_finite_numbers_render_tagged() {
        // A NaN latency or divide-by-zero speedup must stay visible in a
        // rendered report (and decodable through `as_num`), not silently
        // degrade to `null`.
        assert_eq!(Json::Num(f64::NAN).render(), "{\"$f64\": \"NaN\"}\n");
        let back = Json::parse(&Json::Num(f64::INFINITY).render()).unwrap();
        assert_eq!(back.as_num(), Some(f64::INFINITY));
    }

    #[test]
    fn derived_struct_serializes_in_field_order() {
        // MacroSpec derives Serialize; the shim derive must emit fields in
        // declaration order so rendered baselines stay diffable.
        let spec = yoloc_cim::MacroParams::rom_paper().spec();
        let doc = to_json(&spec);
        let Json::Obj(fields) = &doc else {
            panic!("struct must serialize to an object")
        };
        assert_eq!(fields[0].0, "process");
        assert_eq!(fields[0].1, Json::Str("28nm CMOS".into()));
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn derived_enum_serializes_variants() {
        use yoloc_models::{ActKind, LayerSpec};
        // Unit variant -> string.
        assert_eq!(ActKind::Relu.to_json(), Json::Str("Relu".into()));
        // Tuple variant -> {"Variant": value}.
        let act = LayerSpec::Activation(ActKind::Leaky);
        assert_eq!(
            act.to_json(),
            Json::Obj(vec![("Activation".into(), Json::Str("Leaky".into()))])
        );
        // Struct variant -> {"Variant": {fields}}.
        let mp = LayerSpec::MaxPool {
            kernel: 2,
            stride: 2,
        };
        let Json::Obj(outer) = mp.to_json() else {
            panic!("struct variant must serialize to an object")
        };
        assert_eq!(outer[0].0, "MaxPool");
        assert_eq!(
            outer[0].1,
            Json::Obj(vec![
                ("kernel".into(), Json::Num(2.0)),
                ("stride".into(), Json::Num(2.0)),
            ])
        );
    }
}
