//! Minimal JSON emission for machine-readable benchmark baselines.
//!
//! The offline `serde` shim (see `shims/serde`) provides marker traits
//! only — nothing serializes — so benchmark reports are built explicitly
//! as a [`Json`] tree and rendered with a deterministic field order. That
//! keeps `BENCH_engine.json` diffable across runs and builds.

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order so rendered reports
/// are stable byte-for-byte for identical measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered via `f64`; NaN/inf render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values render without a fraction.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes (used
/// for both string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("name", Json::str("engine")),
            ("ok", Json::Bool(true)),
            ("samples", Json::Num(16.0)),
            ("rate", Json::Num(2.5)),
            ("runs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"engine\""));
        assert!(text.contains("\"samples\": 16,"));
        assert!(text.contains("\"rate\": 2.5,"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn object_keys_are_escaped() {
        let doc = Json::Obj(vec![("a\"b".to_string(), Json::Null)]);
        assert_eq!(doc.render(), "{\n  \"a\\\"b\": null\n}\n");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
