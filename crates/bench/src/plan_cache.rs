//! Cold-vs-warm plan-cache measurement shared by `bench_engine` and
//! `bench_plan_cache`.
//!
//! For every network the harness performs one **cold** deploy through a
//! fresh on-disk [`PlanCache`] (a full compile plus a serialized-plan
//! store) and one **warm** deploy through a *second* cache instance on
//! the same directory — modeling a process restart served purely from
//! disk. Recompilation is counted with the process-wide
//! [`compile_count`] counter, not inferred from wall clock, so the
//! `compiles_warm == 0` acceptance gate is stable on arbitrarily slow or
//! noisy hosts. Each warm deploy is additionally checked to execute
//! **bit-identically** to its cold twin (logits and the full
//! `ExecutionReport`, under identically seeded RNGs).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Json;
use serde::Serialize;
use yoloc_core::compiler::cache::PlanCache;
use yoloc_core::compiler::{compile_count, CompileOptions};
use yoloc_models::NetworkDesc;
use yoloc_tensor::Tensor;

/// The scaled zoo architectures the engine harness measures (smallest to
/// largest; tiny configurations under [`crate::smoke`]). Shared between
/// `bench_engine` and `bench_plan_cache` so the standalone plan-cache
/// patcher measures exactly the networks the committed report covers.
pub fn zoo_nets() -> Vec<NetworkDesc> {
    use yoloc_models::zoo;
    if crate::smoke() {
        vec![
            zoo::scaled(&zoo::vgg8(4), 16, (16, 16)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 32, (32, 32)),
        ]
    } else {
        vec![
            zoo::scaled(&zoo::vgg8(10), 16, (16, 16)),
            zoo::scaled(&zoo::resnet18(10), 16, (32, 32)),
            zoo::scaled(&zoo::tiny_yolo(4, 2), 16, (64, 64)),
            zoo::scaled(&zoo::darknet19(8), 16, (64, 64)),
            zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64)),
        ]
    }
}

/// One network's cold/warm deploy measurement.
pub struct PlanCacheEntry {
    /// Zoo network name.
    pub model: String,
    /// Wall seconds of the cold deploy (compile + serialize + store).
    pub cold_compile_s: f64,
    /// Wall seconds of the warm deploy (disk read + deserialize).
    pub warm_lookup_s: f64,
    /// Compiles performed by the cold deploy (>= 1 by construction).
    pub compiles_cold: u64,
    /// Compiles performed by the warm deploy (the gate: must be 0).
    pub compiles_warm: u64,
    /// Whether the warm deploy executed bit-identically to the cold one.
    pub bit_identical: bool,
}

impl PlanCacheEntry {
    /// Serializes the entry for the report's `plan_cache` block. Compile
    /// counters ride the shim's exact `UInt` variant — the schema gate
    /// reads them back with `as_u64`, not through a lossy f64.
    pub fn json(&self) -> Json {
        Json::obj([
            ("model", Json::str(self.model.clone())),
            ("cold_compile_s", Json::Num(self.cold_compile_s)),
            ("warm_lookup_s", Json::Num(self.warm_lookup_s)),
            (
                "warm_speedup",
                Json::Num(self.cold_compile_s / self.warm_lookup_s),
            ),
            ("compiles_cold", self.compiles_cold.to_json()),
            ("compiles_warm", self.compiles_warm.to_json()),
            ("bit_identical", Json::Bool(self.bit_identical)),
        ])
    }
}

/// Measures every network in `descs` through a scratch on-disk cache
/// (removed afterwards), returning one [`PlanCacheEntry`] per network.
///
/// # Panics
///
/// Panics if a zoo description fails to compile or a cache deploy errors
/// — both mean the harness itself is broken.
pub fn measure_plan_cache(descs: &[NetworkDesc], seed: u64) -> Vec<PlanCacheEntry> {
    let dir = std::env::temp_dir().join(format!("yoloc-bench-plan-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CompileOptions::paper_default;
    let mut entries = Vec::new();
    for desc in descs {
        println!(
            "[plan-cache:{}] cold deploy (compile + store) ...",
            desc.name
        );
        let cold_cache = PlanCache::at(&dir);
        let before = compile_count();
        let t0 = Instant::now();
        let cold = cold_cache
            .compile_random(desc, seed, opts())
            .expect("zoo description must compile");
        let cold_compile_s = t0.elapsed().as_secs_f64();
        let compiles_cold = compile_count() - before;

        // A fresh cache on the same directory models a server restart:
        // nothing in memory, the deploy must come from the disk store.
        println!("[plan-cache:{}] warm deploy (disk lookup) ...", desc.name);
        let warm_cache = PlanCache::at(&dir);
        let before = compile_count();
        let t1 = Instant::now();
        let warm = warm_cache
            .compile_random(desc, seed, opts())
            .expect("warm deploy");
        let warm_lookup_s = t1.elapsed().as_secs_f64();
        let compiles_warm = compile_count() - before;

        let (c, h, w) = cold.input_shape();
        let mut rng = StdRng::seed_from_u64(seed + 3);
        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
        let mut rng_a = StdRng::seed_from_u64(seed + 5);
        let mut rng_b = StdRng::seed_from_u64(seed + 5);
        let (ya, ra) = cold.infer(&x, &mut rng_a);
        let (yb, rb) = warm.infer(&x, &mut rng_b);
        let bit_identical = ya.data() == yb.data() && ra == rb;

        entries.push(PlanCacheEntry {
            model: desc.name.clone(),
            cold_compile_s,
            warm_lookup_s,
            compiles_cold,
            compiles_warm,
            bit_identical,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    entries
}

/// Renders the `plan_cache` report block (a plain array of per-network
/// entries) from measured entries.
pub fn plan_cache_json(entries: &[PlanCacheEntry]) -> Json {
    Json::Arr(entries.iter().map(PlanCacheEntry::json).collect())
}

/// Table rows (`model | cold | warm | speedup | recompiles | identical`)
/// for [`crate::print_table`].
pub fn plan_cache_rows(entries: &[PlanCacheEntry]) -> Vec<Vec<String>> {
    entries
        .iter()
        .map(|e| {
            vec![
                e.model.clone(),
                format!("{:.1}", e.cold_compile_s * 1e3),
                format!("{:.2}", e.warm_lookup_s * 1e3),
                crate::fmt_x(e.cold_compile_s / e.warm_lookup_s),
                format!("{} / {}", e.compiles_cold, e.compiles_warm),
                if e.bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect()
}
