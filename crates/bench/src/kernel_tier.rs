//! Kernel-tier speedup measurement shared by `bench_engine` and
//! `bench_kernels` (schema v7 `kernel_tier` block).
//!
//! The kernel-tier work (runtime-dispatched SIMD, cache-blocked
//! bit-plane MVM, and the tier-3 batch-transposed layouts in
//! `yoloc-cim`) is required to be *speed*, never *arithmetic*: every
//! tier and layout is pinned bit-identical to the scalar reference by
//! the cim parity suites. This module measures what the dispatch
//! actually buys on the workload that matters — the im2col shapes of
//! the zoo networks the engine harness runs — and renders the result as
//! the `kernel_tier` report block the CI schema gate checks.
//!
//! Per unique lowered shape `(outs, ins)` across the zoo (weighted by
//! how many matrix-vector products per inference the zoo performs at
//! that shape), the harness programs one `RomMvm` at the paper design
//! point with seeded random codes and times `mvm_batch` under the forced
//! scalar tier and under the runtime-dispatched tier, asserting the two
//! agree bit-for-bit in values **and** `MvmStats` on the way. Samples
//! of the two tiers are interleaved and each side reports its
//! best-of-reps minimum — the noise-robust estimator
//! for a deterministic fixed-work loop on a shared host. The
//! headline `speedup_vs_scalar` is the MVM-weighted aggregate
//! `sum(w_i * scalar_i) / sum(w_i * dispatched_i)` — the ratio of total
//! kernel time a full zoo pass would spend in each tier. When dispatch
//! selects the scalar tier (no SIMD host), the speedup is 1.0 *by
//! construction*, not by timing a path against itself.
//!
//! Schema v7 adds the where-does-the-time-go fields the gates target:
//! per shape, `time_share` (this shape's fraction of the zoo's total
//! dispatched MVM nanoseconds — so gates can hit the heavy tail instead
//! of the unweighted mean) and `staging_ns_per_mvm` (a layout-matched
//! quantize-and-stage pass over synthetic im2col data, the work
//! `qconv` performs to feed the kernel); at block level, the MVM-
//! weighted `staging_ns` vs `mvm_ns` split.
//!
//! An informational `end_to_end` sub-block records the whole-inference
//! effect on one zoo network (`infer_in` under `YOLOC_KERNEL=scalar` vs
//! the dispatched default, logits checked bit-identical); it is
//! deliberately not gated — the MVM kernel is only part of an inference
//! (im2col, quantize and epilogues bound the end-to-end ratio well below
//! the kernel-level speedup; Amdahl's law, not a regression).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::Json;
use yoloc_cim::backend::MvmScratch;
use yoloc_cim::{
    avx2_available, avx512_available, transposed_pad, KernelDispatch, KernelKind, MacroParams,
    MatmulLayout, MvmBackend, RomMvm,
};
use yoloc_models::NetworkDesc;
use yoloc_quant::QuantParams;

/// One unique lowered matrix shape measured under both kernel tiers.
pub struct ShapeMeasure {
    /// Output neurons of the lowered matrix.
    pub outs: usize,
    /// Dot-product depth of the lowered matrix.
    pub ins: usize,
    /// Matrix-vector products per full zoo pass at this shape (the
    /// weight in the aggregate speedup).
    pub mvms: u64,
    /// Scalar-tier nanoseconds per matrix-vector product.
    pub scalar_ns_per_mvm: f64,
    /// Dispatched-tier nanoseconds per matrix-vector product.
    pub dispatched_ns_per_mvm: f64,
    /// Layout-matched quantize-and-stage nanoseconds per matrix-vector
    /// product (the `qconv` feeding cost, measured on synthetic im2col
    /// data at the same batch size).
    pub staging_ns_per_mvm: f64,
    /// Layout the backend's crossover picked at this shape and batch.
    pub layout: MatmulLayout,
    /// Whether the two tiers agreed bit-for-bit (values and `MvmStats`).
    pub bit_identical: bool,
}

impl ShapeMeasure {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_mvm / self.dispatched_ns_per_mvm
    }
}

/// The measured `kernel_tier` block.
pub struct KernelTier {
    /// Tier the runtime dispatch selected (`Auto` resolution).
    pub selected: KernelKind,
    /// Whether the host reports AVX2.
    pub avx2_detected: bool,
    /// Whether the host reports the AVX-512 subsets the tier needs
    /// (F + BW + VL + VPOPCNTDQ).
    pub avx512_detected: bool,
    /// MVM-weighted aggregate kernel speedup over the forced scalar tier.
    pub speedup_vs_scalar: f64,
    /// Per-shape measurements, heaviest shape first.
    pub shapes: Vec<ShapeMeasure>,
    /// Informational whole-inference comparison (one zoo network).
    pub end_to_end: Option<EndToEnd>,
}

impl KernelTier {
    /// MVM-weighted dispatched kernel nanoseconds of one full zoo pass.
    fn total_mvm_ns(&self) -> f64 {
        self.shapes
            .iter()
            .map(|s| s.mvms as f64 * s.dispatched_ns_per_mvm)
            .sum()
    }

    /// MVM-weighted staging nanoseconds of one full zoo pass.
    fn total_staging_ns(&self) -> f64 {
        self.shapes
            .iter()
            .map(|s| s.mvms as f64 * s.staging_ns_per_mvm)
            .sum()
    }
}

/// Informational whole-inference scalar-vs-dispatched comparison.
pub struct EndToEnd {
    /// Zoo network measured.
    pub model: String,
    /// Per-inference wall seconds, engine compiled under
    /// `YOLOC_KERNEL=scalar`.
    pub scalar_s: f64,
    /// Per-inference wall seconds under the dispatched default.
    pub dispatched_s: f64,
    /// Whether the two compiles produced bit-identical logits.
    pub bit_identical: bool,
}

/// Collects the unique lowered `(outs, ins)` shapes across `descs`,
/// summing per-inference MVM counts as weights; heaviest first.
pub fn zoo_shapes(descs: &[NetworkDesc]) -> Vec<(usize, usize, u64)> {
    let mut shapes: Vec<(usize, usize, u64)> = Vec::new();
    for desc in descs {
        let reports = desc.analyze().expect("zoo description must analyze");
        for lowered in reports.iter().filter_map(|r| r.lowered) {
            match shapes
                .iter_mut()
                .find(|(o, i, _)| *o == lowered.outs && *i == lowered.ins)
            {
                Some((_, _, w)) => *w += lowered.mvms,
                None => shapes.push((lowered.outs, lowered.ins, lowered.mvms)),
            }
        }
    }
    shapes.sort_by_key(|&(outs, ins, mvms)| std::cmp::Reverse(mvms * (outs * ins) as u64));
    shapes
}

/// One timed sample: `calls` consecutive `mvm_batch` invocations,
/// returning seconds per invocation.
fn sample_batch(
    engine: &RomMvm,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    scratch: &mut MvmScratch,
    calls: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(0); // untouched by noiseless paths
    let mut stats = yoloc_cim::MvmStats::default();
    let t0 = Instant::now();
    for _ in 0..calls {
        engine.mvm_batch(acts, n, out, &mut stats, scratch, &mut rng);
        std::hint::black_box(out[0]);
    }
    t0.elapsed().as_secs_f64() / calls as f64
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Best-of-reps estimator for deterministic fixed-work loops: scheduler
/// preemption, interrupts and frequency dips only ever *add* time, so
/// the minimum sample is the closest observation of the true cost — and
/// the one stable under host noise that a median over a handful of reps
/// still inherits (a dip spanning most of a shape's samples shifts the
/// median but rarely every sample).
fn min_time(times: &[f64]) -> f64 {
    times.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One timed staging sample: `calls` layout-matched quantize-and-stage
/// passes over a synthetic patch-major `(patch, positions)` im2col
/// matrix — the exact loops `qconv::run_tile` runs to feed the kernel —
/// returning seconds per pass.
fn sample_staging(
    cols: &[f32],
    patch: usize,
    n: usize,
    q: &QuantParams,
    layout: MatmulLayout,
    codes: &mut Vec<i32>,
    calls: usize,
) -> f64 {
    let positions = n;
    let t0 = Instant::now();
    for _ in 0..calls {
        match layout {
            MatmulLayout::Transposed => {
                let n_pad = transposed_pad(n);
                codes.clear();
                codes.resize(patch * n_pad, 0);
                for r in 0..patch {
                    let src = &cols[r * positions..r * positions + n];
                    let lane = &mut codes[r * n_pad..r * n_pad + n];
                    for (c, &v) in lane.iter_mut().zip(src) {
                        *c = q.quantize_value(v);
                    }
                }
            }
            MatmulLayout::RowMajor => {
                codes.clear();
                for pos in 0..n {
                    for r in 0..patch {
                        codes.push(q.quantize_value(cols[r * positions + pos]));
                    }
                }
            }
        }
        std::hint::black_box(codes[0]);
    }
    t0.elapsed().as_secs_f64() / calls as f64
}

/// Measures one shape under the forced scalar tier and the dispatched
/// tier, checking bit-identity of values and stats between the two.
fn measure_shape(
    outs: usize,
    ins: usize,
    mvms: u64,
    seed: u64,
    selected: KernelKind,
) -> ShapeMeasure {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes: Vec<i32> = (0..outs * ins).map(|_| rng.gen_range(-128..=127)).collect();
    // Batch like the arena runtime: one block per layer window (all
    // output positions of a tile at once), capped so one timed call
    // stays cheap on the largest shapes.
    let n = (mvms as usize).clamp(1, 256);
    let acts: Vec<i32> = (0..n * ins).map(|_| rng.gen_range(0..=255)).collect();
    let mut engine = RomMvm::program(MacroParams::rom_paper(), &codes, outs, ins);
    let mut out = vec![0i64; n * outs];
    let mut scratch = MvmScratch::new();
    let mut dummy = StdRng::seed_from_u64(0);

    // Bit-identity first: golden scalar result vs the dispatched tier.
    engine.set_kernel(KernelKind::Scalar);
    let mut golden = vec![0i64; n * outs];
    let mut golden_stats = yoloc_cim::MvmStats::default();
    engine.mvm_batch(
        &acts,
        n,
        &mut golden,
        &mut golden_stats,
        &mut scratch,
        &mut dummy,
    );
    engine.set_kernel(selected);
    let mut stats = yoloc_cim::MvmStats::default();
    engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
    let bit_identical = out == golden && stats == golden_stats;

    // Calibrate the inner repeat count off one scalar call so every
    // timed sample spans at least ~200us of work.
    engine.set_kernel(KernelKind::Scalar);
    let t0 = Instant::now();
    engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let calls = ((200e-6 / once).ceil() as usize).clamp(1, 20_000);
    let reps = crate::smoke_or(3, 9);

    // Interleave the two tiers' samples: measuring one tier's reps
    // back-to-back before the other's reads host warm-up drift (the
    // first-measured tier is systematically favored), not the tier
    // difference.
    let (scalar_s, dispatched_s) = if selected == KernelKind::Scalar {
        let s = min_time(
            &(0..reps)
                .map(|_| sample_batch(&engine, &acts, n, &mut out, &mut scratch, calls))
                .collect::<Vec<_>>(),
        );
        (s, s) // dispatch picked the reference tier: 1.0 by construction
    } else {
        let mut times_s = Vec::with_capacity(reps);
        let mut times_d = Vec::with_capacity(reps);
        engine.set_kernel(selected); // warm the dispatched tier too
        engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
        for _ in 0..reps {
            engine.set_kernel(KernelKind::Scalar);
            times_s.push(sample_batch(
                &engine,
                &acts,
                n,
                &mut out,
                &mut scratch,
                calls,
            ));
            engine.set_kernel(selected);
            times_d.push(sample_batch(
                &engine,
                &acts,
                n,
                &mut out,
                &mut scratch,
                calls,
            ));
        }
        (min_time(&times_s), min_time(&times_d))
    };

    // Staging split: time the layout-matched quantize-and-stage pass
    // that feeds this shape's batches (synthetic im2col floats, same
    // batch size, same loops as `qconv::run_tile`).
    engine.set_kernel(selected);
    let layout = engine.batch_layout(n);
    let cols: Vec<f32> = (0..ins * n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let q = QuantParams::affine(0.0, 1.0, 8);
    let mut codes = Vec::new();
    let stage_once = sample_staging(&cols, ins, n, &q, layout, &mut codes, 1).max(1e-9);
    let stage_calls = ((200e-6 / stage_once).ceil() as usize).clamp(1, 20_000);
    let staging_s = min_time(
        &(0..reps)
            .map(|_| sample_staging(&cols, ins, n, &q, layout, &mut codes, stage_calls))
            .collect::<Vec<_>>(),
    );

    ShapeMeasure {
        outs,
        ins,
        mvms,
        scalar_ns_per_mvm: scalar_s * 1e9 / n as f64,
        dispatched_ns_per_mvm: dispatched_s * 1e9 / n as f64,
        staging_ns_per_mvm: staging_s * 1e9 / n as f64,
        layout,
        bit_identical,
    }
}

/// Informational end-to-end comparison on one zoo network: two compiles
/// of the same plan, one forced scalar via the `YOLOC_KERNEL` override,
/// one under the dispatched default; logits must match bit-for-bit.
///
/// Touches the process environment, so call it before any worker pool
/// or test harness threads are running (the bench binaries are
/// single-threaded at this point).
pub fn measure_end_to_end(desc: &NetworkDesc, seed: u64) -> EndToEnd {
    use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
    use yoloc_tensor::Tensor;
    let reps = crate::smoke_or(5, 9);
    let saved = std::env::var("YOLOC_KERNEL").ok();
    let compile_tier = |tier: Option<&str>| {
        match tier {
            Some(t) => std::env::set_var("YOLOC_KERNEL", t),
            None => match &saved {
                Some(v) => std::env::set_var("YOLOC_KERNEL", v),
                None => std::env::remove_var("YOLOC_KERNEL"),
            },
        }
        CompiledNetwork::compile_random(desc, seed, CompileOptions::paper_default())
            .expect("zoo description must compile")
    };
    // Compile both tiers up front, warm both, then interleave the timed
    // reps — back-to-back measurement of one tier then the other reads
    // mostly host warm-up drift, not the tier difference.
    let net_s = compile_tier(Some("scalar"));
    let net_d = compile_tier(None);
    let (c, h, w) = net_s.input_shape();
    let mut rng = StdRng::seed_from_u64(seed + 3);
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
    let mut arena_s = net_s.take_arena();
    let mut arena_d = net_d.take_arena();
    let mut exec_rng = StdRng::seed_from_u64(seed + 5);
    let scalar_logits = net_s
        .infer_in(&x, &mut exec_rng, &mut arena_s)
        .0
        .data()
        .to_vec();
    let dispatched_logits = net_d
        .infer_in(&x, &mut exec_rng, &mut arena_d)
        .0
        .data()
        .to_vec();
    let mut times_s = Vec::with_capacity(reps);
    let mut times_d = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let (y, r) = net_s.infer_in(&x, &mut exec_rng, &mut arena_s);
        std::hint::black_box((y.data()[0], r.latency_ns));
        times_s.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let (y, r) = net_d.infer_in(&x, &mut exec_rng, &mut arena_d);
        std::hint::black_box((y.data()[0], r.latency_ns));
        times_d.push(t1.elapsed().as_secs_f64());
    }
    net_s.give_arena(arena_s);
    net_d.give_arena(arena_d);
    EndToEnd {
        model: desc.name.clone(),
        scalar_s: median(&mut times_s),
        dispatched_s: median(&mut times_d),
        bit_identical: scalar_logits == dispatched_logits,
    }
}

/// Measures the full `kernel_tier` block over the zoo networks.
pub fn measure_kernel_tier(descs: &[NetworkDesc], seed: u64) -> KernelTier {
    // Honor a `YOLOC_KERNEL` override so every sub-measurement (shape
    // timings and the end-to-end compile) reports the same dispatch the
    // engines actually ran; unset, this is the `auto` host resolution.
    let selected = KernelDispatch::from_env().resolve();
    let shapes_in = zoo_shapes(descs);
    println!(
        "[kernel-tier] {} unique lowered shapes, dispatch selected {}",
        shapes_in.len(),
        selected.label()
    );
    let mut shapes = Vec::new();
    for (i, &(outs, ins, mvms)) in shapes_in.iter().enumerate() {
        println!("[kernel-tier] shape {outs}x{ins} (weight {mvms} mvms) ...");
        shapes.push(measure_shape(outs, ins, mvms, seed + i as u64, selected));
    }
    let weighted =
        |f: fn(&ShapeMeasure) -> f64| -> f64 { shapes.iter().map(|s| s.mvms as f64 * f(s)).sum() };
    let speedup_vs_scalar = if selected == KernelKind::Scalar {
        1.0
    } else {
        weighted(|s| s.scalar_ns_per_mvm) / weighted(|s| s.dispatched_ns_per_mvm)
    };
    let end_to_end = descs.last().map(|d| {
        println!(
            "[kernel-tier] end-to-end scalar vs {} on {} ...",
            selected.label(),
            d.name
        );
        measure_end_to_end(d, seed + 101)
    });
    KernelTier {
        selected,
        avx2_detected: avx2_available(),
        avx512_detected: avx512_available(),
        speedup_vs_scalar,
        shapes,
        end_to_end,
    }
}

impl KernelTier {
    /// Serializes the block for the v7 report.
    pub fn json(&self) -> Json {
        let total_mvm_ns = self.total_mvm_ns();
        let total_staging_ns = self.total_staging_ns();
        let mut fields = vec![
            ("selected", Json::str(self.selected.label())),
            ("avx2_detected", Json::Bool(self.avx2_detected)),
            ("avx512_detected", Json::Bool(self.avx512_detected)),
            ("speedup_vs_scalar", Json::Num(self.speedup_vs_scalar)),
            (
                "bit_identical",
                Json::Bool(self.shapes.iter().all(|s| s.bit_identical)),
            ),
            (
                // v7: the MVM-weighted staging-vs-kernel time split of
                // one full zoo pass (where an inference's batch time
                // actually goes before and inside the kernel).
                "staging",
                Json::obj([
                    ("staging_ns", Json::Num(total_staging_ns)),
                    ("mvm_ns", Json::Num(total_mvm_ns)),
                    (
                        "staging_share",
                        Json::Num(total_staging_ns / (total_staging_ns + total_mvm_ns).max(1e-12)),
                    ),
                ]),
            ),
            (
                "shapes",
                Json::Arr(
                    self.shapes
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("outs", Json::Num(s.outs as f64)),
                                ("ins", Json::Num(s.ins as f64)),
                                ("mvms", Json::Num(s.mvms as f64)),
                                ("scalar_ns_per_mvm", Json::Num(s.scalar_ns_per_mvm)),
                                ("dispatched_ns_per_mvm", Json::Num(s.dispatched_ns_per_mvm)),
                                ("staging_ns_per_mvm", Json::Num(s.staging_ns_per_mvm)),
                                (
                                    "layout",
                                    Json::str(match s.layout {
                                        MatmulLayout::Transposed => "transposed",
                                        MatmulLayout::RowMajor => "row-major",
                                    }),
                                ),
                                (
                                    // v7: fraction of the zoo's total
                                    // dispatched kernel time spent at
                                    // this shape.
                                    "time_share",
                                    Json::Num(
                                        s.mvms as f64 * s.dispatched_ns_per_mvm
                                            / total_mvm_ns.max(1e-12),
                                    ),
                                ),
                                ("speedup", Json::Num(s.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(e) = &self.end_to_end {
            fields.push((
                "end_to_end",
                Json::obj([
                    ("model", Json::str(e.model.clone())),
                    ("scalar_s", Json::Num(e.scalar_s)),
                    ("dispatched_s", Json::Num(e.dispatched_s)),
                    ("ratio", Json::Num(e.scalar_s / e.dispatched_s)),
                    ("bit_identical", Json::Bool(e.bit_identical)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Table rows (`shape | weight | scalar | dispatched | stage |
    /// layout | share | speedup | identical`) for
    /// [`crate::print_table`].
    pub fn rows(&self) -> Vec<Vec<String>> {
        let total_mvm_ns = self.total_mvm_ns();
        self.shapes
            .iter()
            .map(|s| {
                vec![
                    format!("{}x{}", s.outs, s.ins),
                    format!("{}", s.mvms),
                    format!("{:.0}", s.scalar_ns_per_mvm),
                    format!("{:.0}", s.dispatched_ns_per_mvm),
                    format!("{:.0}", s.staging_ns_per_mvm),
                    match s.layout {
                        MatmulLayout::Transposed => "T",
                        MatmulLayout::RowMajor => "rm",
                    }
                    .to_string(),
                    format!(
                        "{:.1}%",
                        100.0 * s.mvms as f64 * s.dispatched_ns_per_mvm / total_mvm_ns.max(1e-12)
                    ),
                    crate::fmt_x(s.speedup()),
                    if s.bit_identical { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect()
    }
}

/// Validates the `kernel_tier` block of a v7 report; returns every
/// violation found. Gates: block present with a selected tier in
/// {scalar, avx2, avx512}, all tiers bit-identical, aggregate
/// speedup at least 1.0 always, the v7 fields (`avx512_detected`,
/// the `staging` split, per-shape `time_share` +
/// `staging_ns_per_mvm`) present, and — for committed full runs that
/// selected a SIMD tier — the MVM-weighted aggregate at least 3.0
/// plus every small shape (`outs <= 4`, where the transposed layout
/// must engage) at least 2.5 (smoke configs measure tiny shapes and
/// only gate the 1.0 floor).
pub fn kernel_tier_violations(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let smoke_doc = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errs.push(format!("kernel_tier: {msg}"));
        }
    };
    let Some(kt) = doc.get("kernel_tier") else {
        return vec!["missing kernel_tier block".to_string()];
    };
    let selected = kt.get("selected").and_then(Json::as_str);
    let simd = matches!(selected, Some("avx2") | Some("avx512"));
    check(
        matches!(selected, Some("scalar")) || simd,
        "selected must be \"scalar\", \"avx2\" or \"avx512\"",
    );
    check(
        kt.get("avx2_detected").and_then(Json::as_bool).is_some(),
        "missing avx2_detected",
    );
    check(
        kt.get("avx512_detected").and_then(Json::as_bool).is_some(),
        "missing avx512_detected",
    );
    check(
        kt.get("bit_identical").and_then(Json::as_bool) == Some(true),
        "kernel tiers must agree bit-for-bit on every measured shape",
    );
    let staging = kt.get("staging");
    check(staging.is_some(), "missing staging split block");
    if let Some(st) = staging {
        for field in ["staging_ns", "mvm_ns", "staging_share"] {
            check(
                st.get(field).and_then(Json::as_num).is_some(),
                &format!("staging split missing {field}"),
            );
        }
    }
    let shapes = kt.get("shapes").and_then(Json::as_arr);
    check(
        shapes.is_some_and(|a| !a.is_empty()),
        "shapes must be a non-empty array",
    );
    if let Some(arr) = shapes {
        let mut share_sum = 0.0;
        for sh in arr {
            let outs = sh.get("outs").and_then(Json::as_num).unwrap_or(0.0);
            let ins = sh.get("ins").and_then(Json::as_num).unwrap_or(0.0);
            let label = format!("{outs:.0}x{ins:.0}");
            let share = sh.get("time_share").and_then(Json::as_num);
            check(
                share.is_some(),
                &format!("shape {label} missing time_share"),
            );
            share_sum += share.unwrap_or(0.0);
            check(
                sh.get("staging_ns_per_mvm")
                    .and_then(Json::as_num)
                    .is_some(),
                &format!("shape {label} missing staging_ns_per_mvm"),
            );
            if !smoke_doc && simd && outs <= 4.0 {
                let sp = sh.get("speedup").and_then(Json::as_num).unwrap_or(0.0);
                check(
                    sp >= 2.5,
                    &format!(
                        "small shape {label} speedup is {sp:.2}x, need >= 2.5 (transposed layout)"
                    ),
                );
            }
        }
        check(
            (share_sum - 1.0).abs() < 1e-6,
            &format!("time_share must sum to 1.0 (got {share_sum:.6})"),
        );
    }
    let speedup = kt.get("speedup_vs_scalar").and_then(Json::as_num);
    check(speedup.is_some(), "missing speedup_vs_scalar");
    if let Some(s) = speedup {
        check(
            s >= 1.0,
            &format!("dispatched kernel is slower than scalar ({s:.2}x, need >= 1.0)"),
        );
        if !smoke_doc && simd {
            check(
                s >= 3.0,
                &format!("SIMD tier speedup is {s:.2}x on the zoo workload, need >= 3.0"),
            );
        }
    }
    if let Some(e) = kt.get("end_to_end") {
        check(
            e.get("bit_identical").and_then(Json::as_bool) == Some(true),
            "end_to_end logits must be bit-identical across tiers",
        );
    }
    errs
}
