//! Kernel-tier speedup measurement shared by `bench_engine` and
//! `bench_kernels` (schema v6 `kernel_tier` block).
//!
//! The tier-2 kernel work (runtime-dispatched SIMD + cache-blocked
//! bit-plane MVM in `yoloc-cim`) is required to be *speed*, never
//! *arithmetic*: every tier is pinned bit-identical to the scalar
//! reference by the cim parity suites. This module measures what the
//! dispatch actually buys on the workload that matters — the im2col
//! shapes of the zoo networks the engine harness runs — and renders the
//! result as the `kernel_tier` report block the CI schema gate checks.
//!
//! Per unique lowered shape `(outs, ins)` across the zoo (weighted by
//! how many matrix-vector products per inference the zoo performs at
//! that shape), the harness programs one `RomMvm` at the paper design
//! point with seeded random codes and times `mvm_batch` under the forced
//! scalar tier and under the runtime-dispatched tier, asserting the two
//! agree bit-for-bit in values **and** `MvmStats` on the way. The
//! headline `speedup_vs_scalar` is the MVM-weighted aggregate
//! `sum(w_i * scalar_i) / sum(w_i * dispatched_i)` — the ratio of total
//! kernel time a full zoo pass would spend in each tier. When dispatch
//! selects the scalar tier (no AVX2 host), the speedup is 1.0 *by
//! construction*, not by timing a path against itself.
//!
//! An informational `end_to_end` sub-block records the whole-inference
//! effect on one zoo network (`infer_in` under `YOLOC_KERNEL=scalar` vs
//! the dispatched default, logits checked bit-identical); it is
//! deliberately not gated — the MVM kernel is only part of an inference
//! (im2col, quantize and epilogues bound the end-to-end ratio well below
//! the kernel-level speedup; Amdahl's law, not a regression).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::Json;
use yoloc_cim::backend::MvmScratch;
use yoloc_cim::{avx2_available, KernelDispatch, KernelKind, MacroParams, MvmBackend, RomMvm};
use yoloc_models::NetworkDesc;

/// One unique lowered matrix shape measured under both kernel tiers.
pub struct ShapeMeasure {
    /// Output neurons of the lowered matrix.
    pub outs: usize,
    /// Dot-product depth of the lowered matrix.
    pub ins: usize,
    /// Matrix-vector products per full zoo pass at this shape (the
    /// weight in the aggregate speedup).
    pub mvms: u64,
    /// Scalar-tier nanoseconds per matrix-vector product.
    pub scalar_ns_per_mvm: f64,
    /// Dispatched-tier nanoseconds per matrix-vector product.
    pub dispatched_ns_per_mvm: f64,
    /// Whether the two tiers agreed bit-for-bit (values and `MvmStats`).
    pub bit_identical: bool,
}

impl ShapeMeasure {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_mvm / self.dispatched_ns_per_mvm
    }
}

/// The measured `kernel_tier` block.
pub struct KernelTier {
    /// Tier the runtime dispatch selected (`Auto` resolution).
    pub selected: KernelKind,
    /// Whether the host reports AVX2.
    pub avx2_detected: bool,
    /// MVM-weighted aggregate kernel speedup over the forced scalar tier.
    pub speedup_vs_scalar: f64,
    /// Per-shape measurements, heaviest shape first.
    pub shapes: Vec<ShapeMeasure>,
    /// Informational whole-inference comparison (one zoo network).
    pub end_to_end: Option<EndToEnd>,
}

/// Informational whole-inference scalar-vs-dispatched comparison.
pub struct EndToEnd {
    /// Zoo network measured.
    pub model: String,
    /// Per-inference wall seconds, engine compiled under
    /// `YOLOC_KERNEL=scalar`.
    pub scalar_s: f64,
    /// Per-inference wall seconds under the dispatched default.
    pub dispatched_s: f64,
    /// Whether the two compiles produced bit-identical logits.
    pub bit_identical: bool,
}

/// Collects the unique lowered `(outs, ins)` shapes across `descs`,
/// summing per-inference MVM counts as weights; heaviest first.
pub fn zoo_shapes(descs: &[NetworkDesc]) -> Vec<(usize, usize, u64)> {
    let mut shapes: Vec<(usize, usize, u64)> = Vec::new();
    for desc in descs {
        let reports = desc.analyze().expect("zoo description must analyze");
        for lowered in reports.iter().filter_map(|r| r.lowered) {
            match shapes
                .iter_mut()
                .find(|(o, i, _)| *o == lowered.outs && *i == lowered.ins)
            {
                Some((_, _, w)) => *w += lowered.mvms,
                None => shapes.push((lowered.outs, lowered.ins, lowered.mvms)),
            }
        }
    }
    shapes.sort_by_key(|&(outs, ins, mvms)| std::cmp::Reverse(mvms * (outs * ins) as u64));
    shapes
}

/// One timed sample: `calls` consecutive `mvm_batch` invocations,
/// returning seconds per invocation.
fn sample_batch(
    engine: &RomMvm,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    scratch: &mut MvmScratch,
    calls: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(0); // untouched by noiseless paths
    let mut stats = yoloc_cim::MvmStats::default();
    let t0 = Instant::now();
    for _ in 0..calls {
        engine.mvm_batch(acts, n, out, &mut stats, scratch, &mut rng);
        std::hint::black_box(out[0]);
    }
    t0.elapsed().as_secs_f64() / calls as f64
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Measures one shape under the forced scalar tier and the dispatched
/// tier, checking bit-identity of values and stats between the two.
fn measure_shape(
    outs: usize,
    ins: usize,
    mvms: u64,
    seed: u64,
    selected: KernelKind,
) -> ShapeMeasure {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes: Vec<i32> = (0..outs * ins).map(|_| rng.gen_range(-128..=127)).collect();
    // Batch like the arena runtime: one block per layer window (all
    // output positions of a tile at once), capped so one timed call
    // stays cheap on the largest shapes.
    let n = (mvms as usize).clamp(1, 256);
    let acts: Vec<i32> = (0..n * ins).map(|_| rng.gen_range(0..=255)).collect();
    let mut engine = RomMvm::program(MacroParams::rom_paper(), &codes, outs, ins);
    let mut out = vec![0i64; n * outs];
    let mut scratch = MvmScratch::new();
    let mut dummy = StdRng::seed_from_u64(0);

    // Bit-identity first: golden scalar result vs the dispatched tier.
    engine.set_kernel(KernelKind::Scalar);
    let mut golden = vec![0i64; n * outs];
    let mut golden_stats = yoloc_cim::MvmStats::default();
    engine.mvm_batch(
        &acts,
        n,
        &mut golden,
        &mut golden_stats,
        &mut scratch,
        &mut dummy,
    );
    engine.set_kernel(selected);
    let mut stats = yoloc_cim::MvmStats::default();
    engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
    let bit_identical = out == golden && stats == golden_stats;

    // Calibrate the inner repeat count off one scalar call so every
    // timed sample spans at least ~200us of work.
    engine.set_kernel(KernelKind::Scalar);
    let t0 = Instant::now();
    engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let calls = ((200e-6 / once).ceil() as usize).clamp(1, 20_000);
    let reps = crate::smoke_or(3, 7);

    // Interleave the two tiers' samples: measuring one tier's reps
    // back-to-back before the other's reads host warm-up drift (the
    // first-measured tier is systematically favored), not the tier
    // difference.
    let (scalar_s, dispatched_s) = if selected == KernelKind::Scalar {
        let s = median(
            &mut (0..reps)
                .map(|_| sample_batch(&engine, &acts, n, &mut out, &mut scratch, calls))
                .collect::<Vec<_>>(),
        );
        (s, s) // dispatch picked the reference tier: 1.0 by construction
    } else {
        let mut times_s = Vec::with_capacity(reps);
        let mut times_d = Vec::with_capacity(reps);
        engine.set_kernel(selected); // warm the dispatched tier too
        engine.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut dummy);
        for _ in 0..reps {
            engine.set_kernel(KernelKind::Scalar);
            times_s.push(sample_batch(
                &engine,
                &acts,
                n,
                &mut out,
                &mut scratch,
                calls,
            ));
            engine.set_kernel(selected);
            times_d.push(sample_batch(
                &engine,
                &acts,
                n,
                &mut out,
                &mut scratch,
                calls,
            ));
        }
        (median(&mut times_s), median(&mut times_d))
    };
    ShapeMeasure {
        outs,
        ins,
        mvms,
        scalar_ns_per_mvm: scalar_s * 1e9 / n as f64,
        dispatched_ns_per_mvm: dispatched_s * 1e9 / n as f64,
        bit_identical,
    }
}

/// Informational end-to-end comparison on one zoo network: two compiles
/// of the same plan, one forced scalar via the `YOLOC_KERNEL` override,
/// one under the dispatched default; logits must match bit-for-bit.
///
/// Touches the process environment, so call it before any worker pool
/// or test harness threads are running (the bench binaries are
/// single-threaded at this point).
pub fn measure_end_to_end(desc: &NetworkDesc, seed: u64) -> EndToEnd {
    use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
    use yoloc_tensor::Tensor;
    let reps = crate::smoke_or(5, 9);
    let saved = std::env::var("YOLOC_KERNEL").ok();
    let compile_tier = |tier: Option<&str>| {
        match tier {
            Some(t) => std::env::set_var("YOLOC_KERNEL", t),
            None => match &saved {
                Some(v) => std::env::set_var("YOLOC_KERNEL", v),
                None => std::env::remove_var("YOLOC_KERNEL"),
            },
        }
        CompiledNetwork::compile_random(desc, seed, CompileOptions::paper_default())
            .expect("zoo description must compile")
    };
    // Compile both tiers up front, warm both, then interleave the timed
    // reps — back-to-back measurement of one tier then the other reads
    // mostly host warm-up drift, not the tier difference.
    let net_s = compile_tier(Some("scalar"));
    let net_d = compile_tier(None);
    let (c, h, w) = net_s.input_shape();
    let mut rng = StdRng::seed_from_u64(seed + 3);
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
    let mut arena_s = net_s.take_arena();
    let mut arena_d = net_d.take_arena();
    let mut exec_rng = StdRng::seed_from_u64(seed + 5);
    let scalar_logits = net_s
        .infer_in(&x, &mut exec_rng, &mut arena_s)
        .0
        .data()
        .to_vec();
    let dispatched_logits = net_d
        .infer_in(&x, &mut exec_rng, &mut arena_d)
        .0
        .data()
        .to_vec();
    let mut times_s = Vec::with_capacity(reps);
    let mut times_d = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let (y, r) = net_s.infer_in(&x, &mut exec_rng, &mut arena_s);
        std::hint::black_box((y.data()[0], r.latency_ns));
        times_s.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let (y, r) = net_d.infer_in(&x, &mut exec_rng, &mut arena_d);
        std::hint::black_box((y.data()[0], r.latency_ns));
        times_d.push(t1.elapsed().as_secs_f64());
    }
    net_s.give_arena(arena_s);
    net_d.give_arena(arena_d);
    times_s.sort_by(f64::total_cmp);
    times_d.sort_by(f64::total_cmp);
    EndToEnd {
        model: desc.name.clone(),
        scalar_s: times_s[times_s.len() / 2],
        dispatched_s: times_d[times_d.len() / 2],
        bit_identical: scalar_logits == dispatched_logits,
    }
}

/// Measures the full `kernel_tier` block over the zoo networks.
pub fn measure_kernel_tier(descs: &[NetworkDesc], seed: u64) -> KernelTier {
    // Honor a `YOLOC_KERNEL` override so every sub-measurement (shape
    // timings and the end-to-end compile) reports the same dispatch the
    // engines actually ran; unset, this is the `auto` host resolution.
    let selected = KernelDispatch::from_env().resolve();
    let shapes_in = zoo_shapes(descs);
    println!(
        "[kernel-tier] {} unique lowered shapes, dispatch selected {}",
        shapes_in.len(),
        selected.label()
    );
    let mut shapes = Vec::new();
    for (i, &(outs, ins, mvms)) in shapes_in.iter().enumerate() {
        println!("[kernel-tier] shape {outs}x{ins} (weight {mvms} mvms) ...");
        shapes.push(measure_shape(outs, ins, mvms, seed + i as u64, selected));
    }
    let weighted =
        |f: fn(&ShapeMeasure) -> f64| -> f64 { shapes.iter().map(|s| s.mvms as f64 * f(s)).sum() };
    let speedup_vs_scalar = if selected == KernelKind::Scalar {
        1.0
    } else {
        weighted(|s| s.scalar_ns_per_mvm) / weighted(|s| s.dispatched_ns_per_mvm)
    };
    let end_to_end = descs.last().map(|d| {
        println!(
            "[kernel-tier] end-to-end scalar vs {} on {} ...",
            selected.label(),
            d.name
        );
        measure_end_to_end(d, seed + 101)
    });
    KernelTier {
        selected,
        avx2_detected: avx2_available(),
        speedup_vs_scalar,
        shapes,
        end_to_end,
    }
}

impl KernelTier {
    /// Serializes the block for the v6 report.
    pub fn json(&self) -> Json {
        let mut fields = vec![
            ("selected", Json::str(self.selected.label())),
            ("avx2_detected", Json::Bool(self.avx2_detected)),
            ("speedup_vs_scalar", Json::Num(self.speedup_vs_scalar)),
            (
                "bit_identical",
                Json::Bool(self.shapes.iter().all(|s| s.bit_identical)),
            ),
            (
                "shapes",
                Json::Arr(
                    self.shapes
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("outs", Json::Num(s.outs as f64)),
                                ("ins", Json::Num(s.ins as f64)),
                                ("mvms", Json::Num(s.mvms as f64)),
                                ("scalar_ns_per_mvm", Json::Num(s.scalar_ns_per_mvm)),
                                ("dispatched_ns_per_mvm", Json::Num(s.dispatched_ns_per_mvm)),
                                ("speedup", Json::Num(s.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(e) = &self.end_to_end {
            fields.push((
                "end_to_end",
                Json::obj([
                    ("model", Json::str(e.model.clone())),
                    ("scalar_s", Json::Num(e.scalar_s)),
                    ("dispatched_s", Json::Num(e.dispatched_s)),
                    ("ratio", Json::Num(e.scalar_s / e.dispatched_s)),
                    ("bit_identical", Json::Bool(e.bit_identical)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Table rows (`shape | weight | scalar | dispatched | speedup |
    /// identical`) for [`crate::print_table`].
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.shapes
            .iter()
            .map(|s| {
                vec![
                    format!("{}x{}", s.outs, s.ins),
                    format!("{}", s.mvms),
                    format!("{:.0}", s.scalar_ns_per_mvm),
                    format!("{:.0}", s.dispatched_ns_per_mvm),
                    crate::fmt_x(s.speedup()),
                    if s.bit_identical { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect()
    }
}

/// Validates the `kernel_tier` block of a v6 report; returns every
/// violation found. Gates: block present with a selected tier in
/// {scalar, avx2}, all tiers bit-identical, aggregate speedup >= 1.0
/// always, and >= 2.0 for committed full runs that selected AVX2 (smoke
/// configs measure tiny shapes and only gate the >= 1.0 floor).
pub fn kernel_tier_violations(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let smoke_doc = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errs.push(format!("kernel_tier: {msg}"));
        }
    };
    let Some(kt) = doc.get("kernel_tier") else {
        return vec!["missing kernel_tier block".to_string()];
    };
    let selected = kt.get("selected").and_then(Json::as_str);
    check(
        matches!(selected, Some("scalar") | Some("avx2")),
        "selected must be \"scalar\" or \"avx2\"",
    );
    check(
        kt.get("avx2_detected").and_then(Json::as_bool).is_some(),
        "missing avx2_detected",
    );
    check(
        kt.get("bit_identical").and_then(Json::as_bool) == Some(true),
        "kernel tiers must agree bit-for-bit on every measured shape",
    );
    check(
        kt.get("shapes")
            .and_then(Json::as_arr)
            .is_some_and(|a| !a.is_empty()),
        "shapes must be a non-empty array",
    );
    let speedup = kt.get("speedup_vs_scalar").and_then(Json::as_num);
    check(speedup.is_some(), "missing speedup_vs_scalar");
    if let Some(s) = speedup {
        check(
            s >= 1.0,
            &format!("dispatched kernel is slower than scalar ({s:.2}x, need >= 1.0)"),
        );
        if !smoke_doc && selected == Some("avx2") {
            check(
                s >= 2.0,
                &format!("AVX2 tier speedup is {s:.2}x on the zoo workload, need >= 2.0"),
            );
        }
    }
    if let Some(e) = kt.get("end_to_end") {
        check(
            e.get("bit_identical").and_then(Json::as_bool) == Some(true),
            "end_to_end logits must be bit-identical across tiers",
        );
    }
    errs
}
