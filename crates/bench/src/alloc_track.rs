//! A counting global allocator: the measurement behind the engine's
//! **zero steady-state allocation** guarantee.
//!
//! Every binary and test that links `yoloc-bench` allocates through
//! [`CountingAllocator`], which forwards to the system allocator and
//! bumps a relaxed atomic counter on every `alloc`/`alloc_zeroed`/
//! `realloc`. [`allocations`] reads the running total; diffing it around
//! a warmed-up inference loop measures exactly how many times the loop
//! touched the heap — the `bench_engine` v4 schema records that number
//! per zoo network and the CI gate pins it to zero, and the
//! `alloc_steady_state` integration test asserts the same invariant
//! directly against `CompiledNetwork::infer_in`.
//!
//! Overhead is one relaxed atomic increment per allocation — far below
//! measurement noise for every workload in this harness.

#[allow(unsafe_code)] // GlobalAlloc cannot be implemented without it
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System-allocator wrapper that counts every allocation event
    /// (fresh allocations, zeroed allocations and reallocations;
    /// deallocations are free and not counted).
    pub struct CountingAllocator;

    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Total allocation events since process start (all threads).
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

pub use imp::{allocations, CountingAllocator};

#[cfg(test)]
mod tests {
    use super::allocations;

    #[test]
    fn counter_advances_on_allocation() {
        let before = allocations();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        assert!(allocations() > before, "allocation was not counted");
    }
}
