//! Criterion micro-benchmarks of the kernels every experiment is built
//! on: the analog macro MVM, convolution lowering, quantization
//! bit-plane decomposition, weight mapping, and a detector training step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_cim::macro_model::{MacroParams, RomMvm};
use yoloc_core::mapping::map_network;
use yoloc_models::zoo;
use yoloc_quant::bitplane::{signed_bitplanes, unsigned_chunks};
use yoloc_tensor::ops::{im2col, Conv2dGeometry};
use yoloc_tensor::Tensor;

fn bench_macro_mvm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (outs, ins) = (32, 128);
    let codes: Vec<i32> = (0..outs * ins)
        .map(|i| ((i * 37) % 255) as i32 - 127)
        .collect();
    let acts: Vec<i32> = (0..ins).map(|i| ((i * 13) % 256) as i32).collect();
    // The popcount fast path (default) vs the cell-accurate analog
    // reference path — the single-macro view of the engine speedup.
    let mut engine = RomMvm::program(MacroParams::rom_paper(), &codes, outs, ins);
    c.bench_function("rom_mvm_128x32_8b_fast", |b| {
        b.iter(|| engine.mvm(std::hint::black_box(&acts), &mut rng))
    });
    engine.set_fast_path(false);
    c.bench_function("rom_mvm_128x32_8b_analog", |b| {
        b.iter(|| engine.mvm(std::hint::black_box(&acts), &mut rng))
    });
}

fn bench_worker_pool(c: &mut Criterion) {
    use yoloc_bench::WorkerPool;
    // Dispatch overhead of the persistent pool on trivially small jobs.
    c.bench_function("worker_pool_64_jobs_4_workers", |b| {
        WorkerPool::with(4, |pool| {
            b.iter(|| {
                pool.run(
                    (0..64u64)
                        .map(|i| move || std::hint::black_box(i * i))
                        .collect::<Vec<_>>(),
                )
            })
        })
    });
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn(&[4, 32, 32, 32], 0.0, 1.0, &mut rng);
    let geom = Conv2dGeometry {
        in_channels: 32,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    c.bench_function("im2col_4x32x32x32_k3", |b| {
        b.iter(|| im2col(std::hint::black_box(&x), &geom))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = Tensor::randn(&[128, 288], 0.0, 1.0, &mut rng);
    let bm = Tensor::randn(&[288, 256], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_128x288x256", |b| {
        b.iter(|| std::hint::black_box(&a).matmul(&bm))
    });
}

fn bench_bitplanes(c: &mut Criterion) {
    let weights: Vec<i32> = (0..4096).map(|i| ((i * 37) % 255) - 127).collect();
    let acts: Vec<i32> = (0..4096).map(|i| (i * 13) % 256).collect();
    c.bench_function("signed_bitplanes_4096x8b", |b| {
        b.iter(|| signed_bitplanes(std::hint::black_box(&weights), 8))
    });
    c.bench_function("unsigned_chunks_4096x8b", |b| {
        b.iter(|| unsigned_chunks(std::hint::black_box(&acts), 8, 2))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let yolo = zoo::yolo_v2(20, 5);
    let params = MacroParams::rom_paper();
    c.bench_function("map_network_yolo_v2", |b| {
        b.iter(|| map_network(std::hint::black_box(&yolo), &params))
    });
}

fn bench_system_eval(c: &mut Criterion) {
    use yoloc_core::system::{evaluate, SystemKind, SystemParams};
    let p = SystemParams::paper_default();
    let yolo = zoo::yolo_v2(20, 5);
    c.bench_function("system_evaluate_yoloc_yolo", |b| {
        b.iter(|| evaluate(std::hint::black_box(&yolo), SystemKind::Yoloc, &p))
    });
}

fn bench_detector_step(c: &mut Criterion) {
    use yoloc_core::detector::TinyYoloDetector;
    use yoloc_data::detection::DetectionTask;
    let mut rng = StdRng::seed_from_u64(4);
    let task = DetectionTask::generate("bench", 3, 0.0, 1, 2);
    let data = task.dataset(8, &mut rng);
    let imgs: Vec<Tensor> = data.iter().map(|(i, _)| i.clone()).collect();
    let gts: Vec<_> = data.iter().map(|(_, g)| g.clone()).collect();
    let x = Tensor::stack(&imgs).unwrap();
    c.bench_function("detector_train_step_b8", |b| {
        b.iter_batched(
            || TinyYoloDetector::new(&[8, 12, 16], 3, &mut StdRng::seed_from_u64(5)),
            |mut det| det.train_step(std::hint::black_box(&x), &gts, 0.05),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_macro_mvm, bench_worker_pool, bench_im2col, bench_matmul,
              bench_bitplanes, bench_mapping, bench_system_eval,
              bench_detector_step
}
criterion_main!(kernels);
