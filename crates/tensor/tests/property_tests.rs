//! Property-based tests of the tensor substrate's core invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc_tensor::layers::{Conv2d, Linear};
use yoloc_tensor::ops::{col2im, conv2d_reference, im2col, Conv2dGeometry};
use yoloc_tensor::{Layer, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..500,
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let c = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_reverses_matmul(
        seed in 0u64..500,
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
    ) {
        // (A B)^T == B^T A^T
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn convolution_is_linear(
        seed in 0u64..500,
        c in 1usize..4,
        oc in 1usize..4,
        hw in 4usize..8,
        alpha in -2.0f32..2.0,
    ) {
        // conv(a*x + y) == a*conv(x) + conv(y)
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Tensor::randn(&[oc, c, 3, 3], 0.0, 0.5, &mut rng);
        let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, &mut rng);
        let y = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, &mut rng);
        let mixed = x.scale(alpha).add(&y);
        let lhs = conv2d_reference(&mixed, &w, None, 1, 1);
        let rhs = conv2d_reference(&x, &w, None, 1, 1)
            .scale(alpha)
            .add(&conv2d_reference(&y, &w, None, 1, 1));
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..500,
        c in 1usize..4,
        hw in 4usize..8,
        stride in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Conv2dGeometry { in_channels: c, kernel: 3, stride, padding: 1 };
        let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &g);
        let y = Tensor::randn(cols.shape(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols.mul(&y).sum();
        let back = col2im(&y, x.shape(), &g);
        let rhs: f32 = x.mul(&back).sum();
        prop_assert!((lhs - rhs).abs() < 2e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn linear_backward_is_transpose_map(
        seed in 0u64..500,
        ins in 1usize..8,
        outs in 1usize..8,
    ) {
        // <W x, g> == <x, backward(g)> when no bias gradient interferes.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new("l", ins, outs, false, &mut rng);
        let x = Tensor::randn(&[1, ins], 0.0, 1.0, &mut rng);
        let g = Tensor::randn(&[1, outs], 0.0, 1.0, &mut rng);
        let y = lin.forward(&x, true);
        let dx = lin.backward(&g);
        let lhs: f32 = y.mul(&g).sum();
        let rhs: f32 = x.mul(&dx).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conv_backward_is_adjoint(
        seed in 0u64..300,
        c in 1usize..3,
        oc in 1usize..3,
        hw in 4usize..7,
    ) {
        // <conv(x), g> == <x, conv_backward(g)> for bias-free convs.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new("c", c, oc, 3, 1, 1, false, &mut rng);
        let x = Tensor::randn(&[1, c, hw, hw], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let g = Tensor::randn(y.shape(), 0.0, 1.0, &mut rng);
        let dx = conv.backward(&g);
        let lhs: f32 = y.mul(&g).sum();
        let rhs: f32 = x.mul(&dx).sum();
        prop_assert!((lhs - rhs).abs() < 2e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }
}
