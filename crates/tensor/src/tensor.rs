//! Dense row-major `f32` tensor.
//!
//! This is the numerical substrate the whole reproduction is built on: it
//! replaces the role PyTorch plays in the paper's custom workflow simulator.
//! Only the operations the YOLoC stack needs are provided, but each is
//! implemented carefully and tested, including the backward passes built on
//! top of them.

use std::fmt;

use rand::Rng;

/// Error raised by fallible tensor constructors and reshapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major (C-order), heap-allocated `f32` tensor.
///
/// # Examples
///
/// ```
/// use yoloc_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elements])", self.data.len())
        }
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor with zero elements.
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements overflows `usize`.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = numel(shape);
        Tensor {
            data: vec![0.0; n],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = numel(shape);
        Tensor {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor from a flat `Vec` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the product of
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        if data.len() != numel(shape) {
            return Err(ShapeError::new(format!(
                "data length {} does not match shape {:?} ({} elements)",
                data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Samples every element i.i.d. from a normal distribution
    /// `N(mean, std^2)` using the Box-Muller transform over `rng`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Samples every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape (dimension sizes).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, ShapeError> {
        if numel(shape) != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) to {:?} ({} elements)",
                self.shape,
                self.data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Consumes the tensor and reinterprets it under a new shape without
    /// touching the element buffer — the move-based counterpart of
    /// [`Tensor::reshape`] for owned tensors (row-major order means a
    /// reshape never has to copy when the source is owned).
    ///
    /// # Examples
    ///
    /// ```
    /// use yoloc_tensor::Tensor;
    ///
    /// let t = Tensor::zeros(&[2, 3, 4]);
    /// let flat = t.into_reshaped(&[2, 12]).unwrap();
    /// assert_eq!(flat.shape(), &[2, 12]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Tensor, ShapeError> {
        if numel(shape) != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) to {:?} ({} elements)",
                self.shape,
                self.data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            data: self.data,
            shape: shape.to_vec(),
        })
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` rank or bounds are invalid.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` rank or bounds are invalid.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} != tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} (size {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other * alpha` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element, or `f32::NEG_INFINITY` if empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element, or `f32::INFINITY` if empty.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence), or 0 if empty.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut bv = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > bv {
                bv = v;
                best = i;
            }
        }
        best
    }

    /// Maximum absolute element value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Matrix multiply of two rank-2 tensors: `(m,k) x (k,n) -> (m,n)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2 requires rank-2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Returns the `i`-th slice along the first axis (e.g. one sample of a
    /// batch), as an owned tensor of rank `ndim - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "cannot index a rank-0 tensor");
        assert!(i < self.shape[0], "axis-0 index out of range");
        let inner: usize = self.shape[1..].iter().product();
        Tensor {
            data: self.data[i * inner..(i + 1) * inner].to_vec(),
            shape: self.shape[1..].to_vec(),
        }
    }

    /// Stacks same-shape tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input is empty or shapes differ.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor, ShapeError> {
        let first = parts
            .first()
            .ok_or_else(|| ShapeError::new("stack of zero tensors"))?;
        let mut data = Vec::with_capacity(first.len() * parts.len());
        for p in parts {
            if p.shape != first.shape {
                return Err(ShapeError::new(format!(
                    "stack shape mismatch: {:?} vs {:?}",
                    p.shape, first.shape
                )));
            }
            data.extend_from_slice(&p.data);
        }
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(&first.shape);
        Ok(Tensor { data, shape })
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>() as f32
    }
}

/// Product of a shape's dimensions (number of elements).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.at(&[1]), 2.0);
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[4, 4], 0.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let b = a.transpose2().transpose2();
        assert_eq!(a, b);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -4.0, 3.0], &[3]).unwrap();
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.abs_max(), 4.0);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn stack_and_index_axis0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.index_axis0(0), a);
        assert_eq!(s.index_axis0(1), b);
    }

    #[test]
    fn reshape_checks() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.reshape(&[6]).is_ok());
        assert!(t.reshape(&[4]).is_err());
    }
}
