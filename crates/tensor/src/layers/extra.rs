//! Additional layers: dropout, sigmoid/tanh activations, windowed
//! average pooling — used by extensions of the base experiments
//! (regularized transfer training, alternative detector heads).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Inverted dropout. Active only in training mode; at evaluation it is
/// the identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_vec(
            (0..x.len())
                .map(|_| {
                    if self.rng.gen_range(0.0f32..1.0) < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
            x.shape(),
        )
        .expect("mask matches input");
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(m) => grad_out.mul(m),
            None => grad_out.clone(),
        }
    }

    fn name(&self) -> String {
        format!("Dropout({})", self.p)
    }
}

/// Elementwise logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_out = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_out.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, s| g * s * (1.0 - s))
    }

    fn name(&self) -> String {
        "Sigmoid".into()
    }
}

/// Elementwise hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_out: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.map(|v| v.tanh());
        self.cached_out = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_out.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, t| g * (1.0 - t * t))
    }

    fn name(&self) -> String {
        "Tanh".into()
    }
}

/// Windowed average pooling over `(N, C, H, W)`.
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            kernel,
            stride,
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "AvgPool2d expects (N, C, H, W)");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert!(h >= self.kernel && w >= self.kernel, "window too large");
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let norm = (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc +=
                                    x.at(&[ni, ci, oy * self.stride + ky, ox * self.stride + kx]);
                            }
                        }
                        *out.at_mut(&[ni, ci, oy, ox]) = acc / norm;
                    }
                }
            }
        }
        self.cached_shape = Some(x.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("backward before forward");
        let (n, c) = (shape[0], shape[1]);
        let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
        let norm = (self.kernel * self.kernel) as f32;
        let mut dx = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at(&[ni, ci, oy, ox]) / norm;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                *dx.at_mut(&[
                                    ni,
                                    ci,
                                    oy * self.stride + ky,
                                    ox * self.stride + kx,
                                ]) += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        format!("AvgPool2d(k={}, s={})", self.kernel, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[100]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Dropped positions are exactly zero; kept are scaled by 1/keep.
        for &v in y.data() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[64]));
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(a, b, "gradient must flow exactly where kept");
        }
    }

    #[test]
    fn sigmoid_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.0, 2.0, -2.0], &[3]).unwrap();
        let y = s.forward(&x, true);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let g = s.backward(&Tensor::ones(&[3]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
        // Saturated region has small gradient.
        assert!(g.data()[1] < 0.15);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -1.2], &[2]).unwrap();
        let _ = t.forward(&x, true);
        let g = t.backward(&Tensor::ones(&[2]));
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (xp.data()[i].tanh() - xm.data()[i].tanh()) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn avgpool_forward_backward() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut p = AvgPool2d::new(2, 2);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }
}
