//! Activation layers: ReLU and the leaky ReLU used by the DarkNet family.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        grad_out.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 })
    }

    fn name(&self) -> String {
        "ReLU".into()
    }
}

/// Leaky rectified linear unit, `y = x` for `x > 0`, `y = slope * x`
/// otherwise. DarkNet-19 (the YOLO backbone) uses `slope = 0.1`.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    pub fn new(slope: f32) -> Self {
        LeakyRelu {
            slope,
            cached_input: None,
        }
    }

    /// The DarkNet convention, `slope = 0.1`.
    pub fn darknet() -> Self {
        Self::new(0.1)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(x.clone());
        let s = self.slope;
        x.map(|v| if v > 0.0 { v } else { s * v })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let s = self.slope;
        grad_out.zip_map(x, |g, v| if v > 0.0 { g } else { s * g })
    }

    fn name(&self) -> String {
        format!("LeakyReLU({})", self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_forward_backward() {
        let mut r = LeakyRelu::darknet();
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap();
        let y = r.forward(&x, true);
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = r.backward(&Tensor::ones(&[2]));
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }
}
