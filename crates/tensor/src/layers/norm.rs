//! Batch normalization over channel maps.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

/// Batch normalization over `(N, C, H, W)` inputs, normalizing each channel
/// across the batch and spatial dimensions.
///
/// Tracks running statistics for inference. In the hardware mapping,
/// batch-norm folds into the preceding convolution's weights before
/// quantization, so it contributes no CiM parameters.
pub struct BatchNorm2d {
    /// Per-channel scale.
    pub gamma: Param,
    /// Per-channel shift.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Running (inference-time) statistics as `(mean, var)` slices.
    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects (N, C, H, W)");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channels(), "channel mismatch");
        let m = (n * h * w) as f32;
        let mut out = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        for (ci, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut s = 0.0f64;
                let mut s2 = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &x.data()[base..base + h * w] {
                        s += v as f64;
                        s2 += (v as f64) * (v as f64);
                    }
                }
                let mean = (s / m as f64) as f32;
                let var = ((s2 / m as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let xh = (x.data()[i] - mean) * inv_std;
                    xhat.data_mut()[i] = xh;
                    out.data_mut()[i] = g * xh + b;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                xhat,
                inv_std: inv_stds,
                input_shape: x.shape().to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward(train)");
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let m = (n * h * w) as f32;
        let mut dx = Tensor::zeros(shape);
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            // Accumulate the two per-channel reductions.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let dy = grad_out.data()[i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.xhat.data()[i] as f64;
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy as f32;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat as f32;
            let sum_dy = sum_dy as f32;
            let sum_dy_xhat = sum_dy_xhat as f32;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let dy = grad_out.data()[i];
                    let xh = cache.xhat.data()[i];
                    dx.data_mut()[i] = g * inv_std / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.channels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new("bn", 3);
        let x = Tensor::randn(&[4, 3, 5, 5], 2.0, 3.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1 (gamma=1, beta=0 initially).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hi in 0..5 {
                    for wi in 0..5 {
                        vals.push(y.at(&[ni, ci, hi, wi]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new("bn", 2);
        // Train on many batches so running stats converge.
        for _ in 0..200 {
            let x = Tensor::randn(&[8, 2, 3, 3], 1.0, 2.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        let (rm, rv) = bn.running_stats();
        assert!((rm[0] - 1.0).abs() < 0.2, "running mean {}", rm[0]);
        assert!((rv[0] - 4.0).abs() < 1.0, "running var {}", rv[0]);
        // Eval mode normalizes with running stats: a batch at the running
        // mean maps near zero.
        let x = Tensor::full(&[1, 2, 3, 3], rm[0]);
        let y = bn.forward(&x, false);
        assert!(y.abs_max() < 0.2);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = Tensor::randn(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        // Use a non-uniform upstream gradient; with dL/dy = const the
        // batch-norm input gradient is identically zero by design.
        let gout = Tensor::randn(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let _ = bn.forward(&x, true);
        let dx = bn.backward(&gout);
        let loss =
            |bn: &mut BatchNorm2d, x: &Tensor| -> f32 { bn.forward(x, true).mul(&gout).sum() };
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "grad {i}: numeric {num} vs analytic {ana}"
            );
        }
    }
}
