//! 2-D convolution layers (including the point-wise convs ReBranch uses).

use rand::Rng;

use crate::init::kaiming_normal;
use crate::layer::{Layer, Param};
use crate::ops::{col2im, im2col, Conv2dGeometry};
use crate::tensor::Tensor;

/// Rearranges a `(N, OC, OH, OW)` tensor into the `(OC, N*OH*OW)` matrix
/// layout used by the lowered convolution.
fn nchw_to_mat(y: &Tensor) -> Tensor {
    let (n, oc, oh, ow) = (y.shape()[0], y.shape()[1], y.shape()[2], y.shape()[3]);
    let mut out = vec![0.0f32; oc * n * oh * ow];
    let hw = oh * ow;
    let cols = n * hw;
    let yd = y.data();
    for ni in 0..n {
        for oci in 0..oc {
            let src = (ni * oc + oci) * hw;
            let dst = oci * cols + ni * hw;
            out[dst..dst + hw].copy_from_slice(&yd[src..src + hw]);
        }
    }
    Tensor::from_vec(out, &[oc, cols]).expect("consistent")
}

/// Inverse of [`nchw_to_mat`].
fn mat_to_nchw(m: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
    let oc = m.shape()[0];
    let hw = oh * ow;
    let cols = n * hw;
    assert_eq!(m.shape()[1], cols, "matrix width mismatch");
    let mut out = vec![0.0f32; n * oc * hw];
    let md = m.data();
    for ni in 0..n {
        for oci in 0..oc {
            let dst = (ni * oc + oci) * hw;
            let src = oci * cols + ni * hw;
            out[dst..dst + hw].copy_from_slice(&md[src..src + hw]);
        }
    }
    Tensor::from_vec(out, &[n, oc, oh, ow]).expect("consistent")
}

struct ConvCache {
    input_shape: Vec<usize>,
    cols: Tensor,
    out_hw: (usize, usize),
}

/// A standard 2-D convolution layer over `(N, C, H, W)` inputs, lowered to a
/// matrix product via `im2col` — the same lowering the CiM mapper applies
/// when placing the weight matrix into ROM subarrays.
pub struct Conv2d {
    /// Kernel weights, shape `(OC, C, k, k)`.
    pub weight: Param,
    /// Optional bias, shape `(OC,)`.
    pub bias: Option<Param>,
    geom: Conv2dGeometry,
    out_channels: usize,
    cache: Option<ConvCache>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    #[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter list
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            kaiming_normal(&[out_channels, in_channels, kernel, kernel], rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[out_channels])));
        Conv2d {
            weight,
            bias,
            geom: Conv2dGeometry {
                in_channels,
                kernel,
                stride,
                padding,
            },
            out_channels,
            cache: None,
        }
    }

    /// A 1x1 ("point-wise") convolution, the building block of the
    /// ReBranch channel (de)compression layers.
    pub fn pointwise<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        rng: &mut R,
    ) -> Self {
        Self::new(name, in_channels, out_channels, 1, 1, 0, false, rng)
    }

    /// The layer's convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let cols = im2col(x, &self.geom);
        let wm = self
            .weight
            .value
            .reshape(&[self.out_channels, self.geom.patch_len()])
            .expect("weight shape is consistent");
        let mut om = wm.matmul(&cols);
        if let Some(b) = &self.bias {
            let width = om.shape()[1];
            let od = om.data_mut();
            for (oc, &bv) in b.value.data().iter().enumerate() {
                for v in &mut od[oc * width..(oc + 1) * width] {
                    *v += bv;
                }
            }
        }
        let (oh, ow) = self.geom.output_hw(h, w);
        self.cache = Some(ConvCache {
            input_shape: x.shape().to_vec(),
            cols,
            out_hw: (oh, ow),
        });
        mat_to_nchw(&om, n, oh, ow)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let dy = nchw_to_mat(grad_out);
        // dW = dY * cols^T
        let dw = dy.matmul(&cache.cols.transpose2());
        self.weight.grad.add_scaled_inplace(
            &dw.reshape(self.weight.value.shape()).expect("consistent"),
            1.0,
        );
        if let Some(b) = &mut self.bias {
            let width = dy.shape()[1];
            for oc in 0..self.out_channels {
                let s: f32 = dy.data()[oc * width..(oc + 1) * width].iter().sum();
                b.grad.data_mut()[oc] += s;
            }
        }
        // dX = col2im(W^T * dY)
        let wm = self
            .weight
            .value
            .reshape(&[self.out_channels, self.geom.patch_len()])
            .expect("consistent");
        let dcols = wm.transpose2().matmul(&dy);
        let dx = col2im(&dcols, &cache.input_shape, &self.geom);
        let _ = cache.out_hw;
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn name(&self) -> String {
        format!(
            "Conv2d({}->{}, k={}, s={}, p={})",
            self.geom.in_channels,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerExt;
    use crate::ops::conv2d_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new("c", 3, 5, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let yr = conv2d_reference(
            &x,
            &conv.weight.value,
            conv.bias.as_ref().map(|b| &b.value),
            1,
            1,
        );
        assert_eq!(y.shape(), yr.shape());
        for (a, b) in y.data().iter().zip(yr.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradient_check_weight() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new("c", 2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        // Loss = sum(conv(x)); dL/dy = ones.
        let y = conv.forward(&x, true);
        conv.zero_grad();
        let dx = conv.backward(&Tensor::ones(y.shape()));

        // Finite-difference check on a few weight entries.
        let eps = 1e-3f32;
        for &i in &[0usize, 7, 23] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let yp = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let ym = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            let ana = conv.weight.grad.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "weight grad {i}: numeric {num} vs analytic {ana}"
            );
        }
        // Finite-difference check on an input entry.
        let mut x2 = x.clone();
        let i = 9;
        let orig = x2.data()[i];
        x2.data_mut()[i] = orig + eps;
        let yp = conv.forward(&x2, true).sum();
        x2.data_mut()[i] = orig - eps;
        let ym = conv.forward(&x2, true).sum();
        let num = (yp - ym) / (2.0 * eps);
        let ana = dx.data()[i];
        assert!(
            (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
            "input grad: numeric {num} vs analytic {ana}"
        );
    }

    #[test]
    fn pointwise_is_1x1() {
        let mut rng = StdRng::seed_from_u64(3);
        let pw = Conv2d::pointwise("p", 8, 2, &mut rng);
        assert_eq!(pw.geometry().kernel, 1);
        assert_eq!(pw.weight.value.shape(), &[2, 8, 1, 1]);
        assert!(pw.bias.is_none());
    }

    #[test]
    fn param_accounting() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new("c", 4, 8, 3, 1, 1, true, &mut rng);
        assert_eq!(conv.param_count(), 8 * 4 * 9 + 8);
        conv.freeze_all();
        assert_eq!(conv.trainable_param_count(), 0);
    }
}
