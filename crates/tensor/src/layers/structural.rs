//! Structural layers: flatten, sequential container, and residual blocks.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Flattens `(N, ...)` into `(N, features)`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten expects a batch dimension");
        let n = x.shape()[0];
        let features: usize = x.shape()[1..].iter().product();
        self.cached_shape = Some(x.shape().to_vec());
        x.reshape(&[n, features]).expect("same element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("backward before forward");
        grad_out.reshape(shape).expect("same element count")
    }

    fn name(&self) -> String {
        "Flatten".into()
    }
}

/// A chain of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer, returning `self` for chaining.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Access to a layer by position.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn Layer {
        self.layers[i].as_mut()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn name(&self) -> String {
        format!("Sequential[{}]", self.layers.len())
    }
}

/// A residual block `y = body(x) + proj(x)` (projection defaults to
/// identity), the structure of Fig. 3(a) that motivates ReBranch.
pub struct Residual {
    body: Sequential,
    projection: Option<Box<dyn Layer>>,
}

impl Residual {
    /// Creates a residual block with an identity skip connection.
    pub fn new(body: Sequential) -> Self {
        Residual {
            body,
            projection: None,
        }
    }

    /// Creates a residual block whose skip path applies `projection`
    /// (e.g. a strided 1x1 conv when shapes change).
    pub fn with_projection(body: Sequential, projection: impl Layer + 'static) -> Self {
        Residual {
            body,
            projection: Some(Box::new(projection)),
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main = self.body.forward(x, train);
        let skip = match &mut self.projection {
            Some(p) => p.forward(x, train),
            None => x.clone(),
        };
        main.add(&skip)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let d_main = self.body.backward(grad_out);
        let d_skip = match &mut self.projection {
            Some(p) => p.backward(grad_out),
            None => grad_out.clone(),
        };
        d_main.add(&d_skip)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.body.params_mut();
        if let Some(p) = &mut self.projection {
            v.extend(p.params_mut());
        }
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.body.params();
        if let Some(p) = &self.projection {
            v.extend(p.params());
        }
        v
    }

    fn name(&self) -> String {
        "Residual".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::activation::Relu;
    use crate::layers::conv::Conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let mut f = Flatten::new();
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(&Tensor::ones(&[2, 48]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn sequential_composes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = Sequential::new()
            .push(Conv2d::new("c1", 1, 2, 3, 1, 1, true, &mut rng))
            .push(Relu::new())
            .push(Conv2d::new("c2", 2, 1, 3, 1, 1, true, &mut rng));
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut rng);
        let y = seq.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 5, 5]);
        let dx = seq.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(seq.params().len(), 4);
    }

    #[test]
    fn residual_identity_backward_adds_one() {
        // With an empty body producing f(x) = x (single identity conv is
        // hard to make exact), use body = 0-weight conv so y = 0 + x = x
        // and dy/dx = 1 from the skip path.
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, false, &mut rng);
        conv.weight.value = Tensor::zeros(&[1, 1, 3, 3]);
        let mut res = Residual::new(Sequential::new().push(conv));
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let y = res.forward(&x, true);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        let dx = res.backward(&Tensor::ones(y.shape()));
        // Zero body weights: gradient w.r.t. input flows only via skip.
        assert!(dx.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}
