//! Fully-connected layer.

use rand::Rng;

use crate::init::kaiming_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A fully-connected layer mapping `(N, IN)` to `(N, OUT)`.
pub struct Linear {
    /// Weight matrix `(OUT, IN)`.
    pub weight: Param,
    /// Optional bias `(OUT,)`.
    pub bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized fully-connected layer.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                kaiming_normal(&[out_features, in_features], rng),
            ),
            bias: bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features]))),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects (N, IN)");
        let mut y = x.matmul(&self.weight.value.transpose2());
        if let Some(b) = &self.bias {
            let out = self.weight.value.shape()[0];
            let yd = y.data_mut();
            for row in yd.chunks_mut(out) {
                for (v, &bv) in row.iter_mut().zip(b.value.data()) {
                    *v += bv;
                }
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW = dY^T * X ; dX = dY * W ; db = column sums of dY.
        let dw = grad_out.transpose2().matmul(x);
        self.weight.grad.add_scaled_inplace(&dw, 1.0);
        if let Some(b) = &mut self.bias {
            let out = b.value.len();
            for row in grad_out.data().chunks(out) {
                for (g, &v) in b.grad.data_mut().iter_mut().zip(row) {
                    *g += v;
                }
            }
        }
        grad_out.matmul(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn name(&self) -> String {
        format!("Linear({}->{})", self.in_features(), self.out_features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new("fc", 4, 3, true, &mut rng);
        let x = Tensor::ones(&[2, 4]);
        let y = lin.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3]);
        // Both rows identical for identical inputs.
        for j in 0..3 {
            assert!((y.at(&[0, j]) - y.at(&[1, j])).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new("fc", 5, 4, true, &mut rng);
        let x = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let y = lin.forward(&x, true);
        let dx = lin.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3f32;
        for &i in &[0usize, 6, 19] {
            let orig = lin.weight.value.data()[i];
            lin.weight.value.data_mut()[i] = orig + eps;
            let yp = lin.forward(&x, true).sum();
            lin.weight.value.data_mut()[i] = orig - eps;
            let ym = lin.forward(&x, true).sum();
            lin.weight.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            let ana = lin.weight.grad.data()[i];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()));
        }
        // Input gradient for loss=sum(y) is column sums of W.
        for j in 0..5 {
            let expect: f32 = (0..4).map(|o| lin.weight.value.at(&[o, j])).sum();
            assert!((dx.at(&[0, j]) - expect).abs() < 1e-4);
        }
        // Bias gradient is the batch size for loss=sum(y).
        assert!(lin
            .bias
            .as_ref()
            .unwrap()
            .grad
            .data()
            .iter()
            .all(|&g| (g - 3.0).abs() < 1e-5));
    }
}
