//! Pooling layers: max pooling and global average pooling.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2-D max pooling over `(N, C, H, W)` inputs with a square window.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    /// Cached per-output-element argmax offsets into the input buffer.
    argmax: Option<(Vec<usize>, Vec<usize>, Vec<usize>)>, // (input_shape, out_shape, flat argmax)
}

impl MaxPool2d {
    /// Creates a max-pooling layer (`stride == kernel` gives the standard
    /// non-overlapping pool used by VGG/DarkNet).
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            argmax: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "MaxPool2d expects (N, C, H, W)");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert!(h >= self.kernel && w >= self.kernel, "window too large");
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut arg = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        let mut oi = 0;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut besti = 0;
                        for kh in 0..self.kernel {
                            for kw in 0..self.kernel {
                                let idx =
                                    base + (ohi * self.stride + kh) * w + owi * self.stride + kw;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    besti = idx;
                                }
                            }
                        }
                        od[oi] = best;
                        arg[oi] = besti;
                        oi += 1;
                    }
                }
            }
        }
        self.argmax = Some((x.shape().to_vec(), vec![n, c, oh, ow], arg));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (in_shape, out_shape, arg) = self.argmax.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), &out_shape[..], "grad shape mismatch");
        let mut dx = Tensor::zeros(in_shape);
        let dd = dx.data_mut();
        for (g, &i) in grad_out.data().iter().zip(arg) {
            dd[i] += g;
        }
        dx
    }

    fn name(&self) -> String {
        format!("MaxPool2d(k={}, s={})", self.kernel, self.stride)
    }
}

/// Global average pooling: `(N, C, H, W) -> (N, C)`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "GlobalAvgPool expects (N, C, H, W)");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let s: f32 = x.data()[base..base + h * w].iter().sum();
                *out.at_mut(&[ni, ci]) = s / hw;
            }
        }
        self.cached_shape = Some(x.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let hw = (h * w) as f32;
        let mut dx = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.at(&[ni, ci]) / hw;
                let base = (ni * c + ci) * h * w;
                for v in &mut dx.data_mut()[base..base + h * w] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        "GlobalAvgPool".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let mut p = MaxPool2d::new(2, 2);
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut p = MaxPool2d::new(2, 2);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn gap_forward_backward() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1]);
        assert_eq!(y.data(), &[4.0]);
        let dx = p.backward(&Tensor::ones(&[1, 1]));
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }
}
