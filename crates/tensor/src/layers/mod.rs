//! Neural-network layers with explicit forward/backward passes.

mod activation;
mod conv;
mod extra;
mod linear;
mod norm;
mod pool;
mod structural;

pub use activation::{LeakyRelu, Relu};
pub use conv::Conv2d;
pub use extra::{AvgPool2d, Dropout, Sigmoid, Tanh};
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use structural::{Flatten, Residual, Sequential};
