//! Convolution lowering primitives: `im2col` / `col2im`, pooling kernels.
//!
//! Convolutions in the CiM datapath are executed as matrix-vector products
//! over unrolled patches (the same lowering the paper's mapping scheme uses
//! to place weights in 128x256 subarrays), so `im2col` is the shared
//! geometry for both the training substrate and the hardware mapper.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution / pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Kernel side length (square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero-padding in both dimensions.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output spatial size for an input of `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let eff_h = h + 2 * self.padding;
        let eff_w = w + 2 * self.padding;
        assert!(
            eff_h >= self.kernel && eff_w >= self.kernel,
            "kernel {} does not fit padded input {}x{}",
            self.kernel,
            eff_h,
            eff_w
        );
        (
            (eff_h - self.kernel) / self.stride + 1,
            (eff_w - self.kernel) / self.stride + 1,
        )
    }

    /// Rows of the im2col matrix: `C * k * k`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unrolls an `(N, C, H, W)` input into a `(C*k*k, N*OH*OW)` patch matrix.
///
/// Column `n*OH*OW + oh*OW + ow` holds the receptive field of output pixel
/// `(oh, ow)` of sample `n`; out-of-bounds taps read as zero.
///
/// # Panics
///
/// Panics if `x` is not rank-4 or its channel count mismatches `geom`.
pub fn im2col(x: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(x.ndim(), 4, "im2col expects (N, C, H, W)");
    let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
    assert_eq!(x.shape()[1], geom.in_channels, "channel mismatch");
    let mut out = Vec::new();
    let (rows, cols) = im2col_into(x.data(), n, h, w, geom, &mut out);
    Tensor::from_vec(out, &[rows, cols]).expect("im2col shape is consistent")
}

/// Allocation-reusing form of [`im2col`]: lowers a raw row-major
/// `(N, C, H, W)` buffer into `out` (resized and zeroed in place, so a
/// warmed buffer is never reallocated) and returns the `(rows, cols)`
/// dimensions of the patch matrix. [`im2col`] is the allocating wrapper.
///
/// # Panics
///
/// Panics if `x.len() != n * in_channels * h * w`.
pub fn im2col_into(
    x: &[f32],
    n: usize,
    h: usize,
    w: usize,
    geom: &Conv2dGeometry,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let c = geom.in_channels;
    assert_eq!(x.len(), n * c * h * w, "input buffer length mismatch");
    let (oh, ow) = geom.output_hw(h, w);
    let k = geom.kernel;
    let cols = n * oh * ow;
    let rows = geom.patch_len();
    // Padded positions rely on a fully zeroed buffer; clear-then-resize
    // zeroes every element while keeping the allocation.
    out.clear();
    out.resize(rows * cols, 0.0);
    let xd = x;
    for ni in 0..n {
        for ci in 0..c {
            let x_base = (ni * c + ci) * h * w;
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ci * k + kh) * k + kw;
                    let out_base = row * cols + ni * oh * ow;
                    for ohi in 0..oh {
                        let ih = (ohi * geom.stride + kh) as isize - geom.padding as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let x_row = x_base + ih as usize * w;
                        let out_row = out_base + ohi * ow;
                        for owi in 0..ow {
                            let iw = (owi * geom.stride + kw) as isize - geom.padding as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            out[out_row + owi] = xd[x_row + iw as usize];
                        }
                    }
                }
            }
        }
    }
    (rows, cols)
}

/// Adjoint of [`im2col`]: scatters a `(C*k*k, N*OH*OW)` patch-gradient matrix
/// back onto an `(N, C, H, W)` input gradient (overlaps accumulate).
///
/// # Panics
///
/// Panics if `cols` does not have the shape `im2col` would have produced for
/// an input of `input_shape` under `geom`.
pub fn col2im(cols: &Tensor, input_shape: &[usize], geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(input_shape.len(), 4, "col2im expects (N, C, H, W)");
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (oh, ow) = geom.output_hw(h, w);
    let k = geom.kernel;
    assert_eq!(
        cols.shape(),
        &[geom.patch_len(), n * oh * ow],
        "col2im input shape mismatch"
    );
    let mut out = vec![0.0f32; n * c * h * w];
    let cd = cols.data();
    let ncols = n * oh * ow;
    for ni in 0..n {
        for ci in 0..c {
            let x_base = (ni * c + ci) * h * w;
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ci * k + kh) * k + kw;
                    let col_base = row * ncols + ni * oh * ow;
                    for ohi in 0..oh {
                        let ih = (ohi * geom.stride + kh) as isize - geom.padding as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let x_row = x_base + ih as usize * w;
                        let col_row = col_base + ohi * ow;
                        for owi in 0..ow {
                            let iw = (owi * geom.stride + kw) as isize - geom.padding as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            out[x_row + iw as usize] += cd[col_row + owi];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_shape).expect("col2im shape is consistent")
}

/// Direct (non-lowered) reference convolution, used to cross-check the
/// im2col path in tests. `weight` is `(OC, C, k, k)`, `x` is `(N, C, H, W)`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_reference(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
) -> Tensor {
    assert_eq!(x.ndim(), 4);
    assert_eq!(weight.ndim(), 4);
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oc, wc, k, k2) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "channel mismatch");
    assert_eq!(k, k2, "non-square kernel");
    let geom = Conv2dGeometry {
        in_channels: c,
        kernel: k,
        stride,
        padding,
    };
    let (oh, ow) = geom.output_hw(h, w);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    for ni in 0..n {
        for oci in 0..oc {
            let b = bias.map_or(0.0, |bb| bb.data()[oci]);
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = b;
                    for ci in 0..c {
                        for kh in 0..k {
                            for kw in 0..k {
                                let ih = (ohi * stride + kh) as isize - padding as isize;
                                let iw = (owi * stride + kw) as isize - padding as isize;
                                if ih < 0 || iw < 0 || ih >= h as isize || iw >= w as isize {
                                    continue;
                                }
                                acc += x.at(&[ni, ci, ih as usize, iw as usize])
                                    * weight.at(&[oci, ci, kh, kw]);
                            }
                        }
                    }
                    *out.at_mut(&[ni, oci, ohi, owi]) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_hw_formula() {
        let g = Conv2dGeometry {
            in_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(g.output_hw(8, 8), (8, 8));
        let g2 = Conv2dGeometry {
            in_channels: 3,
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        assert_eq!(g2.output_hw(8, 8), (4, 4));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is a pure reshape/permute.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let g = Conv2dGeometry {
            in_channels: 2,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn im2col_matches_reference_conv() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&[2, 3, 7, 7], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 1.0, &mut rng);
        let g = Conv2dGeometry {
            in_channels: 3,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let (oh, ow) = g.output_hw(7, 7);
        let cols = im2col(&x, &g);
        let wm = w.reshape(&[4, g.patch_len()]).unwrap();
        let om = wm.matmul(&cols);
        // Rearrange (OC, N*OH*OW) into (N, OC, OH, OW).
        let mut lowered = Tensor::zeros(&[2, 4, oh, ow]);
        for n in 0..2 {
            for oc in 0..4 {
                for p in 0..oh * ow {
                    *lowered.at_mut(&[n, oc, p / ow, p % ow]) = om.at(&[oc, n * oh * ow + p]);
                }
            }
        }
        let reference = conv2d_reference(&x, &w, None, 2, 1);
        for (a, b) in lowered.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of the adjoint, which is what backprop relies on.
        let mut rng = StdRng::seed_from_u64(5);
        let g = Conv2dGeometry {
            in_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &g);
        let y = Tensor::randn(cols.shape(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols.mul(&y).sum();
        let back = col2im(&y, &[1, 2, 5, 5], &g);
        let rhs: f32 = x.mul(&back).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Lowers a convolution through `im2col` + matmul and compares against
    /// `conv2d_reference` elementwise.
    fn assert_lowering_matches_direct(n: usize, c: usize, oc: usize, hw: usize, g: Conv2dGeometry) {
        let mut rng = StdRng::seed_from_u64((g.kernel * 100 + g.stride * 10 + g.padding) as u64);
        let x = Tensor::randn(&[n, c, hw, hw], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[oc, c, g.kernel, g.kernel], 0.0, 1.0, &mut rng);
        let (oh, ow) = g.output_hw(hw, hw);
        let om = w
            .reshape(&[oc, g.patch_len()])
            .unwrap()
            .matmul(&im2col(&x, &g));
        let reference = conv2d_reference(&x, &w, None, g.stride, g.padding);
        for ni in 0..n {
            for oci in 0..oc {
                for p in 0..oh * ow {
                    let lowered = om.at(&[oci, ni * oh * ow + p]);
                    let direct = reference.at(&[ni, oci, p / ow, p % ow]);
                    assert!(
                        (lowered - direct).abs() < 1e-4,
                        "k={} s={} p={}: {lowered} vs {direct}",
                        g.kernel,
                        g.stride,
                        g.padding
                    );
                }
            }
        }
    }

    #[test]
    fn im2col_matches_reference_conv_shape_grid() {
        // The hardware mapper reuses the im2col matrix verbatim, so the
        // lowering must agree with direct convolution for every window
        // geometry the model zoo uses — not just the 3x3/s1/p1 hot case.
        let hw = 8;
        for kernel in [1, 2, 3, 5] {
            for stride in [1, 2, 3] {
                for padding in [0, 1, 2] {
                    if hw + 2 * padding < kernel {
                        continue;
                    }
                    let g = Conv2dGeometry {
                        in_channels: 2,
                        kernel,
                        stride,
                        padding,
                    };
                    assert_lowering_matches_direct(2, 2, 3, hw, g);
                }
            }
        }
    }

    #[test]
    fn im2col_matches_reference_conv_batched_channels() {
        // Larger channel counts and batch to exercise the row indexing of
        // the patch matrix (C*k*k rows) across channel boundaries.
        let g = Conv2dGeometry {
            in_channels: 5,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_lowering_matches_direct(3, 5, 4, 9, g);
    }
}
