//! Loss functions with analytic gradients.

use crate::tensor::Tensor;

/// Numerically-stable log-softmax over the last axis of a `(N, K)` tensor.
fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "expected (N, K) logits");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row
            .iter()
            .map(|&v| ((v - m) as f64).exp())
            .sum::<f64>()
            .ln() as f32;
        for (slot, &v) in out.data_mut()[i * k..(i + 1) * k].iter_mut().zip(row) {
            *slot = v - lse;
        }
    }
    out
}

/// Softmax cross-entropy loss for integer class targets.
///
/// Returns `(mean_loss, grad)` where `grad` has the shape of `logits` and is
/// already divided by the batch size.
///
/// # Panics
///
/// Panics if `logits` is not rank-2, `targets.len() != N`, or any target is
/// out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "expected (N, K) logits");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), n, "target count mismatch");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(&[n, k]);
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < k, "target {t} out of range for {k} classes");
        loss -= logp.at(&[i, t]) as f64;
        for j in 0..k {
            let p = logp.at(&[i, j]).exp();
            *grad.at_mut(&[i, j]) = (p - if j == t { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Mean-squared-error loss. Returns `(mean_loss, grad)` with the gradient
/// already divided by the element count.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Top-1 accuracy of `(N, K)` logits against integer targets.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `targets.len() != N`.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.ndim(), 2);
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), n);
    let mut correct = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0;
        for j in 1..k {
            if row[j] > row[best] {
                best = j;
            }
        }
        if best == t {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform() {
        // Uniform logits: loss = ln(K), gradient pushes towards the target.
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, grad) = cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        assert!(grad.at(&[0, 2]) < 0.0);
        assert!(grad.at(&[0, 0]) > 0.0);
        // Gradient rows sum to zero.
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_confident_correct() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]).unwrap();
        let (_, grad) = cross_entropy(&logits, &[1]);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = cross_entropy(&lp, &[1]);
            let (fm, _) = cross_entropy(&lm, &[1]);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_basics() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mse(&a, &b);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.2, 0.9], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 0]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
