//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Kaiming (He) normal initialization for a conv weight `(OC, C, k, k)` or
/// linear weight `(OUT, IN)`: `std = sqrt(2 / fan_in)`.
///
/// # Panics
///
/// Panics if `shape` has fewer than 2 dimensions.
pub fn kaiming_normal<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
    assert!(shape.len() >= 2, "kaiming init needs rank >= 2");
    let fan_in: usize = shape[1..].iter().product();
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `shape` has fewer than 2 dimensions.
pub fn xavier_uniform<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
    assert!(shape.len() >= 2, "xavier init needs rank >= 2");
    let fan_in: usize = shape[1..].iter().product();
    let fan_out = shape[0] * shape[2..].iter().product::<usize>();
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_normal(&[64, 128, 3, 3], &mut rng);
        let fan_in = 128 * 9;
        let expected_std = (2.0 / fan_in as f32).sqrt();
        let mean = t.mean();
        let std = t.map(|v| (v - mean) * (v - mean)).mean().sqrt();
        assert!((std - expected_std).abs() / expected_std < 0.1);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[32, 64], &mut rng);
        let a = (6.0f32 / (64.0 + 32.0)).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }
}
