//! Optimizers. Frozen (ROM-resident) parameters are skipped by every
//! optimizer, which is how the transfer-learning strategies implement the
//! "fixed trunk, trainable branch" split.

use crate::layer::Param;

/// Stochastic gradient descent with momentum and decoupled weight decay.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient applied to non-frozen parameters.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the weight-decay coefficient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update step to every non-frozen parameter and clears all
    /// gradients (including those of frozen parameters).
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            if !p.frozen {
                let wd = self.weight_decay;
                if wd != 0.0 {
                    let value = p.value.clone();
                    p.grad.add_scaled_inplace(&value, wd);
                }
                if self.momentum != 0.0 {
                    // v = mu * v + g ; w -= lr * v
                    let mu = self.momentum;
                    for (v, &g) in p.velocity.data_mut().iter_mut().zip(p.grad.data()) {
                        *v = mu * *v + g;
                    }
                    let velocity = p.velocity.clone();
                    p.value.add_scaled_inplace(&velocity, -self.lr);
                } else {
                    let grad = p.grad.clone();
                    p.value.add_scaled_inplace(&grad, -self.lr);
                }
            }
            p.zero_grad();
        }
    }
}

/// Clips gradient L2 norm across all parameters to `max_norm`. Returns the
/// pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad.sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.map_inplace(|g| g * scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn sgd_descends_quadratic() {
        // Minimize f(w) = 0.5 * w^2; grad = w.
        let mut p = Param::new("w", Tensor::full(&[1], 10.0));
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            p.grad = p.value.clone();
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-3);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut p = Param::new("w", Tensor::full(&[1], 5.0));
        p.freeze();
        p.grad = Tensor::full(&[1], 100.0);
        Sgd::new(0.1).step(&mut [&mut p]);
        assert_eq!(p.value.data()[0], 5.0);
        // Gradient is still cleared.
        assert_eq!(p.grad.data()[0], 0.0);
    }

    #[test]
    fn momentum_accelerates() {
        // On a constant gradient, momentum accumulates displacement.
        let mut plain = Param::new("a", Tensor::full(&[1], 0.0));
        let mut with_mom = Param::new("b", Tensor::full(&[1], 0.0));
        let sgd = Sgd::new(0.1);
        let sgdm = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..10 {
            plain.grad = Tensor::full(&[1], 1.0);
            with_mom.grad = Tensor::full(&[1], 1.0);
            sgd.step(&mut [&mut plain]);
            sgdm.step(&mut [&mut with_mom]);
        }
        assert!(with_mom.value.data()[0] < plain.value.data()[0]);
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut p = Param::new("w", Tensor::full(&[1], 1.0));
        let opt = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        p.grad = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let post = p.grad.sq_norm().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }
}
