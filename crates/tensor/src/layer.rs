//! The [`Layer`] trait and trainable [`Param`] storage.
//!
//! Parameter freezing (`Param::frozen`) is the central mechanism of this
//! reproduction: weights destined for ROM-CiM are frozen after pretraining,
//! while SRAM-CiM weights stay trainable — exactly the split the paper's
//! transfer-learning options manipulate.

use crate::tensor::Tensor;

/// A named, trainable tensor with its gradient and optimizer state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Momentum buffer used by SGD (same shape as `value`).
    pub velocity: Tensor,
    /// Frozen parameters receive gradients but are never updated; in the
    /// hardware mapping they live in ROM-CiM.
    pub frozen: bool,
    /// Human-readable identifier, e.g. `"conv1.weight"`.
    pub name: String,
}

impl Param {
    /// Wraps `value` as a trainable parameter named `name`.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let velocity = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            velocity,
            frozen: false,
            name: name.into(),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }

    /// Marks the parameter as frozen (ROM-resident).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Marks the parameter as trainable (SRAM-resident).
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network building block with explicit backward pass.
///
/// `forward` caches whatever the subsequent `backward` needs; calling
/// `backward` without a preceding `forward` on the same input is a logic
/// error and panics.
pub trait Layer {
    /// Computes the layer output. `train` selects training-time behaviour
    /// (e.g. batch statistics in batch-norm).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the layer output) backwards,
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to all parameters of this layer (possibly nested).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Immutable access to all parameters of this layer (possibly nested).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// A short human-readable layer description.
    fn name(&self) -> String;
}

/// Extension helpers available on every [`Layer`].
pub trait LayerExt: Layer {
    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Number of scalar parameters that are trainable (not frozen).
    fn trainable_param_count(&self) -> usize {
        self.params()
            .iter()
            .filter(|p| !p.frozen)
            .map(|p| p.len())
            .sum()
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Freezes every parameter of the layer.
    fn freeze_all(&mut self) {
        for p in self.params_mut() {
            p.freeze();
        }
    }

    /// Unfreezes every parameter of the layer.
    fn unfreeze_all(&mut self) {
        for p in self.params_mut() {
            p.unfreeze();
        }
    }
}

impl<L: Layer + ?Sized> LayerExt for L {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;
    impl Layer for Identity {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            g.clone()
        }
        fn name(&self) -> String {
            "identity".into()
        }
    }

    #[test]
    fn param_freeze_cycle() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        assert!(!p.frozen);
        p.freeze();
        assert!(p.frozen);
        p.unfreeze();
        assert!(!p.frozen);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new("w", Tensor::ones(&[3]));
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn layer_ext_counts() {
        let mut id = Identity;
        assert_eq!(id.param_count(), 0);
        assert_eq!(id.trainable_param_count(), 0);
        let x = Tensor::ones(&[2]);
        assert_eq!(id.forward(&x, false), x);
    }
}
