//! # yoloc-tensor
//!
//! The numerical substrate of the YOLoC (DAC 2022) reproduction: a dense
//! `f32` tensor library with 2-D convolution lowering (`im2col`), a small
//! set of neural-network layers with hand-written backward passes, SGD, and
//! loss functions. It plays the role PyTorch plays in the paper's custom
//! workflow simulator.
//!
//! Design points that matter for the reproduction:
//!
//! * **Parameter freezing** ([`Param::frozen`]) models the ROM/SRAM split —
//!   ROM-resident weights receive gradients (so statistics can be computed)
//!   but are never updated.
//! * **im2col lowering** ([`ops::im2col`]) is shared with the hardware
//!   mapper: the matrix that a convolution becomes is exactly the matrix
//!   whose columns are placed on CiM bitlines.
//! * Everything is deterministic given a caller-provided RNG.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc_tensor::{layers::{Conv2d, Relu, Flatten, Linear, Sequential}, Layer, Tensor};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .push(Conv2d::new("c1", 1, 4, 3, 1, 1, true, &mut rng))
//!     .push(Relu::new())
//!     .push(Flatten::new())
//!     .push(Linear::new("fc", 4 * 8 * 8, 10, true, &mut rng));
//! let x = Tensor::zeros(&[2, 1, 8, 8]);
//! let logits = net.forward(&x, false);
//! assert_eq!(logits.shape(), &[2, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod ops;
pub mod optim;
mod tensor;

pub use layer::{Layer, LayerExt, Param};
pub use tensor::{numel, ShapeError, Tensor};
