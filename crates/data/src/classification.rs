//! Synthetic image-classification tasks with controllable transferability.
//!
//! Stand-in for the paper's CIFAR-100 -> {CIFAR-10, MNIST, Fashion-MNIST,
//! Caltech101} transfer pairs. Images are rendered from a *shared feature
//! dictionary* of convolutional atoms: every task composes its classes out
//! of dictionary atoms placed on a grid, so low-level structure transfers
//! between tasks exactly the way early conv features transfer between
//! natural-image datasets. A `novelty` knob mixes in task-private atoms:
//! low novelty plays the role of CIFAR-10 (near domain), high novelty plays
//! Caltech101 (far domain, where the paper's All-ROM option collapses).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use yoloc_tensor::Tensor;

/// Shape of task images `(C, H, W)`.
pub const IMG_C: usize = 3;
/// Image height.
pub const IMG_H: usize = 16;
/// Image width.
pub const IMG_W: usize = 16;
const ATOM: usize = 5;
const GRID: usize = 3;
const ATOMS_PER_CLASS: usize = 4;

/// A dictionary of convolutional feature atoms shared between tasks.
#[derive(Debug, Clone)]
pub struct FeatureDictionary {
    atoms: Vec<Tensor>, // each (IMG_C, ATOM, ATOM)
}

impl FeatureDictionary {
    /// Generates `size` random atoms from `seed`.
    pub fn generate(size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = (0..size)
            .map(|_| Tensor::randn(&[IMG_C, ATOM, ATOM], 0.0, 1.0, &mut rng))
            .collect();
        FeatureDictionary { atoms }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// One class's recipe: which atoms appear at which grid cells.
#[derive(Debug, Clone)]
struct ClassRecipe {
    /// (atom index, grid cell, amplitude)
    placements: Vec<(usize, usize, f32)>,
}

/// A generated classification task.
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// Task name (for reports).
    pub name: String,
    shared: FeatureDictionary,
    private: FeatureDictionary,
    recipes: Vec<ClassRecipe>,
    noise: f32,
    /// Optional 3x3 channel-mixing matrix applied after rendering: a
    /// colour-statistics shift that degrades frozen channel-specific
    /// features (far-domain targets such as the Caltech101 stand-in).
    channel_mix: Option<[f32; 9]>,
}

impl SyntheticTask {
    /// Builds a `classes`-way task over `shared`, drawing a fraction
    /// `novelty` of each class's atoms from a task-private dictionary
    /// seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, the dictionary is empty, or `novelty` is
    /// outside `[0, 1]`.
    pub fn generate(
        name: impl Into<String>,
        shared: &FeatureDictionary,
        classes: usize,
        novelty: f32,
        seed: u64,
    ) -> Self {
        assert!(classes > 0, "need at least one class");
        assert!(!shared.is_empty(), "dictionary must not be empty");
        assert!((0.0..=1.0).contains(&novelty), "novelty in [0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let private = FeatureDictionary::generate(shared.len(), seed ^ 0x9e37_79b9);
        let recipes = (0..classes)
            .map(|_| {
                let placements = (0..ATOMS_PER_CLASS)
                    .map(|slot| {
                        let atom = rng.gen_range(0..shared.len());
                        // Distinct grid cell per slot for visual structure.
                        let cell = (slot * GRID * GRID / ATOMS_PER_CLASS + rng.gen_range(0..2))
                            % (GRID * GRID);
                        let amp = rng.gen_range(0.8..1.4);
                        // Encode "private atom" by offsetting the index.
                        let use_private = rng.gen_range(0.0..1.0) < novelty;
                        let idx = if use_private {
                            atom + shared.len()
                        } else {
                            atom
                        };
                        (idx, cell, amp)
                    })
                    .collect();
                ClassRecipe { placements }
            })
            .collect();
        SyntheticTask {
            name: name.into(),
            shared: shared.clone(),
            private,
            recipes,
            noise: 0.35,
            channel_mix: None,
        }
    }

    /// Sets the additive pixel-noise sigma.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Adds a random orthogonal-ish channel-mixing domain shift.
    pub fn with_channel_mix(mut self, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = [0.0f32; 9];
        // A rotation-like mix: identity plus strong off-diagonal leakage.
        for (i, v) in m.iter_mut().enumerate() {
            let (r, c) = (i / 3, i % 3);
            *v = if r == c { 0.3 } else { 0.0 } + rng.gen_range(-0.8..0.8);
        }
        self.channel_mix = Some(m);
        self
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.recipes.len()
    }

    /// Renders one sample of class `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn render<R: Rng + ?Sized>(&self, label: usize, rng: &mut R) -> Tensor {
        let recipe = &self.recipes[label];
        let mut img = Tensor::zeros(&[IMG_C, IMG_H, IMG_W]);
        let cell_h = IMG_H / GRID;
        let cell_w = IMG_W / GRID;
        for &(idx, cell, amp) in &recipe.placements {
            let atom = if idx < self.shared.len() {
                &self.shared.atoms[idx]
            } else {
                &self.private.atoms[idx - self.shared.len()]
            };
            // Jitter the placement by +-1 pixel.
            let base_y = (cell / GRID) * cell_h + rng.gen_range(0..2);
            let base_x = (cell % GRID) * cell_w + rng.gen_range(0..2);
            let a = amp * rng.gen_range(0.85..1.15);
            for c in 0..IMG_C {
                for dy in 0..ATOM {
                    for dx in 0..ATOM {
                        let y = base_y + dy;
                        let x = base_x + dx;
                        if y < IMG_H && x < IMG_W {
                            *img.at_mut(&[c, y, x]) += a * atom.at(&[c, dy, dx]);
                        }
                    }
                }
            }
        }
        // Channel-mixing domain shift, if any.
        if let Some(m) = &self.channel_mix {
            let mut mixed = Tensor::zeros(&[IMG_C, IMG_H, IMG_W]);
            for y in 0..IMG_H {
                for x in 0..IMG_W {
                    for r in 0..IMG_C {
                        let mut acc = 0.0;
                        for c in 0..IMG_C {
                            acc += m[r * 3 + c] * img.at(&[c, y, x]);
                        }
                        *mixed.at_mut(&[r, y, x]) = acc;
                    }
                }
            }
            img = mixed;
        }
        // Additive pixel noise.
        let noise = Tensor::randn(&[IMG_C, IMG_H, IMG_W], 0.0, self.noise, rng);
        let img = img.add(&noise);
        // Per-sample standardization (datasets are normalized before
        // training); keeps optimization stable across domain shifts.
        let mean = img.mean();
        let var = img.map(|v| (v - mean) * (v - mean)).mean();
        let inv_std = 1.0 / var.sqrt().max(1e-3);
        img.map(|v| (v - mean) * inv_std)
    }

    /// Samples a batch of `n` images with uniform random labels, returning
    /// `((n, C, H, W), labels)`.
    pub fn batch<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> (Tensor, Vec<usize>) {
        let mut imgs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_range(0..self.classes());
            imgs.push(self.render(label, rng));
            labels.push(label);
        }
        (Tensor::stack(&imgs).expect("same shape"), labels)
    }
}

/// The standard transfer-learning suite used by the Fig. 10 reproduction:
/// a broad pretraining task (CIFAR-100 stand-in) and four target tasks of
/// increasing domain novelty.
#[derive(Debug, Clone)]
pub struct TransferSuite {
    /// The broad pretraining task (20-way).
    pub pretrain: SyntheticTask,
    /// Near-domain target (CIFAR-10 stand-in, 10-way).
    pub cifar10_like: SyntheticTask,
    /// Simple far-format target (MNIST stand-in, 10-way, low noise).
    pub mnist_like: SyntheticTask,
    /// Medium target (Fashion-MNIST stand-in, 10-way).
    pub fashion_like: SyntheticTask,
    /// Far-domain target (Caltech101 stand-in, 10-way, mostly novel atoms).
    pub caltech_like: SyntheticTask,
}

impl TransferSuite {
    /// Builds the suite deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let dict = FeatureDictionary::generate(24, seed);
        TransferSuite {
            pretrain: SyntheticTask::generate("pretrain-c100", &dict, 20, 0.0, seed + 1),
            cifar10_like: SyntheticTask::generate("cifar10-like", &dict, 10, 0.15, seed + 11)
                .with_noise(0.5),
            mnist_like: SyntheticTask::generate("mnist-like", &dict, 10, 0.1, seed + 2)
                .with_noise(0.2),
            fashion_like: SyntheticTask::generate("fashion-like", &dict, 10, 0.3, seed + 3)
                .with_noise(0.55),
            caltech_like: SyntheticTask::generate("caltech-like", &dict, 16, 0.95, seed + 4)
                .with_noise(0.6)
                .with_channel_mix(seed + 5),
        }
    }

    /// The four transfer targets in Fig. 10 order, with names.
    pub fn targets(&self) -> Vec<&SyntheticTask> {
        vec![
            &self.cifar10_like,
            &self.mnist_like,
            &self.fashion_like,
            &self.caltech_like,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes_and_labels() {
        let dict = FeatureDictionary::generate(16, 1);
        let task = SyntheticTask::generate("t", &dict, 4, 0.2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = task.batch(8, &mut rng);
        assert_eq!(x.shape(), &[8, IMG_C, IMG_H, IMG_W]);
        assert_eq!(y.len(), 8);
        assert!(y.iter().all(|&l| l < 4));
    }

    #[test]
    fn classes_are_distinguishable() {
        // A nearest-mean classifier over raw pixels should beat chance by
        // a wide margin: class structure must be learnable.
        let dict = FeatureDictionary::generate(16, 7);
        let task = SyntheticTask::generate("t", &dict, 4, 0.0, 8);
        let mut rng = StdRng::seed_from_u64(9);
        // Class means from 20 samples each.
        let mut means = Vec::new();
        for c in 0..4 {
            let mut acc = Tensor::zeros(&[IMG_C, IMG_H, IMG_W]);
            for _ in 0..20 {
                acc = acc.add(&task.render(c, &mut rng));
            }
            means.push(acc.scale(1.0 / 20.0));
        }
        let mut correct = 0;
        let trials = 80;
        for _ in 0..trials {
            let label = rng.gen_range(0..4);
            let img = task.render(label, &mut rng);
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da = img.sub(&means[a]).sq_norm();
                    let db = img.sub(&means[b]).sq_norm();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / trials as f32;
        assert!(acc > 0.6, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn determinism_given_seeds() {
        let dict = FeatureDictionary::generate(16, 1);
        let t1 = SyntheticTask::generate("a", &dict, 3, 0.5, 42);
        let t2 = SyntheticTask::generate("a", &dict, 3, 0.5, 42);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(t1.render(1, &mut r1), t2.render(1, &mut r2));
    }

    #[test]
    fn suite_has_expected_sizes() {
        let suite = TransferSuite::new(0);
        assert_eq!(suite.pretrain.classes(), 20);
        assert_eq!(suite.targets().len(), 4);
        for t in suite.targets() {
            assert!(t.classes() >= 10);
        }
    }

    #[test]
    #[should_panic(expected = "novelty in [0,1]")]
    fn rejects_bad_novelty() {
        let dict = FeatureDictionary::generate(4, 1);
        let _ = SyntheticTask::generate("bad", &dict, 2, 1.5, 0);
    }
}
