//! # yoloc-data
//!
//! Synthetic datasets and evaluators for the YOLoC (DAC 2022)
//! reproduction. Real CIFAR/MNIST/Caltech101/VOC/COCO data cannot ship with
//! this repository, so classification and detection tasks are *generated*
//! from shared feature dictionaries with a controllable domain-novelty
//! knob: transfer pairs (pretrain -> target) exercise exactly the
//! trunk-frozen / branch-trainable code paths the paper's Fig. 10-12
//! experiments measure, and a VOC-protocol mAP evaluator scores detectors.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc_data::classification::TransferSuite;
//!
//! let suite = TransferSuite::new(42);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (images, labels) = suite.pretrain.batch(4, &mut rng);
//! assert_eq!(images.shape()[0], 4);
//! assert_eq!(labels.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod classification;
pub mod detection;

pub use classification::{FeatureDictionary, SyntheticTask, TransferSuite};
pub use detection::{
    average_precision, mean_average_precision, BBox, Detection, DetectionTask, GtObject,
};
