//! Synthetic object-detection tasks (PASCAL-VOC / COCO stand-ins).
//!
//! Images contain 1-3 class-specific blob objects at random positions and
//! scales with ground-truth boxes, which is enough to exercise a YOLO-style
//! single-scale detector end to end and to evaluate mAP with the VOC
//! protocol. A `novelty` knob, as in classification, controls how far a
//! target task (pedestrian / traffic / VOC stand-ins) sits from the COCO
//! stand-in the trunk was pretrained on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use yoloc_tensor::Tensor;

/// Detection image channels.
pub const DET_C: usize = 3;
/// Detection image height.
pub const DET_H: usize = 32;
/// Detection image width.
pub const DET_W: usize = 32;

/// An axis-aligned box in normalized `[0, 1]` image coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Center x.
    pub cx: f32,
    /// Center y.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BBox {
    /// Corner coordinates `(x0, y0, x1, y1)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }

    /// Area (clamped at zero).
    pub fn area(&self) -> f32 {
        (self.w.max(0.0)) * (self.h.max(0.0))
    }

    /// Intersection-over-union with `other`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let (ax0, ay0, ax1, ay1) = self.corners();
        let (bx0, by0, bx1, by1) = other.corners();
        let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// A ground-truth object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtObject {
    /// Object class.
    pub class: usize,
    /// Bounding box.
    pub bbox: BBox,
}

/// A synthetic detection task.
#[derive(Debug, Clone)]
pub struct DetectionTask {
    /// Task name.
    pub name: String,
    /// Number of object classes.
    pub classes: usize,
    /// Per-class blob signature `(C, 3, 3)` patterns.
    signatures: Vec<Tensor>,
    noise: f32,
}

impl DetectionTask {
    /// Generates a detection task. `novelty` blends each class signature
    /// between a shared pool (seeded by `shared_seed`) and a task-private
    /// pool, mirroring the classification transfer knob.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `novelty` is outside `[0, 1]`.
    pub fn generate(
        name: impl Into<String>,
        classes: usize,
        novelty: f32,
        shared_seed: u64,
        task_seed: u64,
    ) -> Self {
        assert!(classes > 0, "need at least one class");
        assert!((0.0..=1.0).contains(&novelty), "novelty in [0,1]");
        let mut shared = StdRng::seed_from_u64(shared_seed);
        let mut private = StdRng::seed_from_u64(task_seed);
        let signatures = (0..classes)
            .map(|_| {
                let s = Tensor::randn(&[DET_C, 3, 3], 0.0, 1.0, &mut shared);
                let p = Tensor::randn(&[DET_C, 3, 3], 0.0, 1.0, &mut private);
                s.scale(1.0 - novelty).add(&p.scale(novelty))
            })
            .collect();
        DetectionTask {
            name: name.into(),
            classes,
            signatures,
            noise: 0.25,
        }
    }

    /// Renders one image with 1..=3 objects; returns the image and its
    /// ground truth.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Tensor, Vec<GtObject>) {
        let n_obj = rng.gen_range(1..=3);
        let mut img = Tensor::randn(&[DET_C, DET_H, DET_W], 0.0, self.noise, rng);
        let mut gts = Vec::with_capacity(n_obj);
        for _ in 0..n_obj {
            let class = rng.gen_range(0..self.classes);
            let w = rng.gen_range(0.2..0.45);
            let h = rng.gen_range(0.2..0.45);
            let cx = rng.gen_range(w / 2.0..1.0 - w / 2.0);
            let cy = rng.gen_range(h / 2.0..1.0 - h / 2.0);
            let bbox = BBox { cx, cy, w, h };
            self.paint(&mut img, class, &bbox, rng);
            gts.push(GtObject { class, bbox });
        }
        (img, gts)
    }

    /// Paints the class signature, bilinearly stretched over the box.
    fn paint<R: Rng + ?Sized>(&self, img: &mut Tensor, class: usize, bbox: &BBox, rng: &mut R) {
        let (x0, y0, x1, y1) = bbox.corners();
        let px0 = (x0 * DET_W as f32).max(0.0) as usize;
        let py0 = (y0 * DET_H as f32).max(0.0) as usize;
        let px1 = ((x1 * DET_W as f32) as usize).min(DET_W - 1);
        let py1 = ((y1 * DET_H as f32) as usize).min(DET_H - 1);
        let sig = &self.signatures[class];
        let amp = rng.gen_range(1.6..2.2);
        for y in py0..=py1 {
            for x in px0..=px1 {
                // Nearest signature texel.
                let sy = ((y - py0) * 3 / (py1 - py0 + 1)).min(2);
                let sx = ((x - px0) * 3 / (px1 - px0 + 1)).min(2);
                for c in 0..DET_C {
                    *img.at_mut(&[c, y, x]) += amp * sig.at(&[c, sy, sx]);
                }
            }
        }
    }

    /// Samples a dataset of `n` images.
    pub fn dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<(Tensor, Vec<GtObject>)> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A detector output for evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the image the detection belongs to.
    pub image_id: usize,
    /// Predicted class.
    pub class: usize,
    /// Confidence score.
    pub score: f32,
    /// Predicted box.
    pub bbox: BBox,
}

/// Computes VOC-style average precision for one class.
///
/// Detections are greedily matched to unmatched ground truths of the same
/// image at IoU >= `iou_thresh` in descending score order; AP is the area
/// under the precision-recall curve (all-points interpolation).
pub fn average_precision(
    detections: &[Detection],
    ground_truth: &[(usize, GtObject)], // (image_id, gt)
    class: usize,
    iou_thresh: f32,
) -> f32 {
    let mut dets: Vec<&Detection> = detections.iter().filter(|d| d.class == class).collect();
    dets.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let gts: Vec<&(usize, GtObject)> = ground_truth
        .iter()
        .filter(|(_, g)| g.class == class)
        .collect();
    let npos = gts.len();
    if npos == 0 {
        return if dets.is_empty() { 1.0 } else { 0.0 };
    }
    let mut matched = vec![false; gts.len()];
    let mut tp = Vec::with_capacity(dets.len());
    for d in &dets {
        let mut best = None;
        let mut best_iou = iou_thresh;
        for (gi, (img, g)) in gts.iter().enumerate() {
            if *img != d.image_id || matched[gi] {
                continue;
            }
            let iou = d.bbox.iou(&g.bbox);
            if iou >= best_iou {
                best_iou = iou;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                matched[gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }
    // Precision-recall sweep.
    let mut cum_tp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(tp.len()); // (recall, precision)
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        let recall = cum_tp as f32 / npos as f32;
        let precision = cum_tp as f32 / (i + 1) as f32;
        curve.push((recall, precision));
    }
    // All-points interpolated AP.
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    for i in 0..curve.len() {
        let max_prec = curve[i..].iter().map(|&(_, p)| p).fold(0.0f32, f32::max);
        let (r, _) = curve[i];
        if r > prev_recall {
            ap += (r - prev_recall) * max_prec;
            prev_recall = r;
        }
    }
    ap
}

/// Mean average precision over all classes at the given IoU threshold
/// (VOC uses 0.5).
pub fn mean_average_precision(
    detections: &[Detection],
    ground_truth: &[(usize, GtObject)],
    classes: usize,
    iou_thresh: f32,
) -> f32 {
    if classes == 0 {
        return 0.0;
    }
    (0..classes)
        .map(|c| average_precision(detections, ground_truth, c, iou_thresh))
        .sum::<f32>()
        / classes as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bb(cx: f32, cy: f32, w: f32, h: f32) -> BBox {
        BBox { cx, cy, w, h }
    }

    #[test]
    fn iou_identical_is_one() {
        let b = bb(0.5, 0.5, 0.4, 0.4);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = bb(0.2, 0.2, 0.2, 0.2);
        let b = bb(0.8, 0.8, 0.2, 0.2);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Two unit-width boxes offset by half a width: inter = 0.5,
        // union = 1.5 -> IoU = 1/3.
        let a = bb(0.5, 0.5, 0.4, 0.4);
        let b = bb(0.7, 0.5, 0.4, 0.4);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn perfect_detections_give_map_one() {
        let gt = vec![
            (
                0,
                GtObject {
                    class: 0,
                    bbox: bb(0.3, 0.3, 0.2, 0.2),
                },
            ),
            (
                0,
                GtObject {
                    class: 1,
                    bbox: bb(0.7, 0.7, 0.2, 0.2),
                },
            ),
            (
                1,
                GtObject {
                    class: 0,
                    bbox: bb(0.5, 0.5, 0.3, 0.3),
                },
            ),
        ];
        let dets: Vec<Detection> = gt
            .iter()
            .map(|(img, g)| Detection {
                image_id: *img,
                class: g.class,
                score: 0.9,
                bbox: g.bbox,
            })
            .collect();
        let map = mean_average_precision(&dets, &gt, 2, 0.5);
        assert!((map - 1.0).abs() < 1e-6, "map {map}");
    }

    #[test]
    fn missed_objects_reduce_ap() {
        let gt = vec![
            (
                0,
                GtObject {
                    class: 0,
                    bbox: bb(0.3, 0.3, 0.2, 0.2),
                },
            ),
            (
                1,
                GtObject {
                    class: 0,
                    bbox: bb(0.5, 0.5, 0.3, 0.3),
                },
            ),
        ];
        // Only one of two objects detected: AP = 0.5.
        let dets = vec![Detection {
            image_id: 0,
            class: 0,
            score: 0.9,
            bbox: bb(0.3, 0.3, 0.2, 0.2),
        }];
        let ap = average_precision(&dets, &gt, 0, 0.5);
        assert!((ap - 0.5).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn false_positives_reduce_ap() {
        let gt = vec![(
            0,
            GtObject {
                class: 0,
                bbox: bb(0.3, 0.3, 0.2, 0.2),
            },
        )];
        let dets = vec![
            Detection {
                image_id: 0,
                class: 0,
                score: 0.95,
                bbox: bb(0.8, 0.8, 0.1, 0.1),
            },
            Detection {
                image_id: 0,
                class: 0,
                score: 0.90,
                bbox: bb(0.3, 0.3, 0.2, 0.2),
            },
        ];
        // The higher-scored detection is a false positive: precision at the
        // match is 1/2, so AP = 0.5.
        let ap = average_precision(&dets, &gt, 0, 0.5);
        assert!((ap - 0.5).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gt = vec![(
            0,
            GtObject {
                class: 0,
                bbox: bb(0.3, 0.3, 0.2, 0.2),
            },
        )];
        let dets = vec![
            Detection {
                image_id: 0,
                class: 0,
                score: 0.95,
                bbox: bb(0.3, 0.3, 0.2, 0.2),
            },
            Detection {
                image_id: 0,
                class: 0,
                score: 0.90,
                bbox: bb(0.3, 0.3, 0.2, 0.2),
            },
        ];
        // Second match on the same GT is a false positive; AP stays 1.0
        // because the TP comes first.
        let ap = average_precision(&dets, &gt, 0, 0.5);
        assert!((ap - 1.0).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn sample_produces_valid_gt() {
        let task = DetectionTask::generate("t", 3, 0.0, 1, 2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let (img, gts) = task.sample(&mut rng);
            assert_eq!(img.shape(), &[DET_C, DET_H, DET_W]);
            assert!(!gts.is_empty() && gts.len() <= 3);
            for g in &gts {
                assert!(g.class < 3);
                let (x0, y0, x1, y1) = g.bbox.corners();
                assert!(x0 >= -1e-6 && y0 >= -1e-6 && x1 <= 1.0 + 1e-6 && y1 <= 1.0 + 1e-6);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_iou_symmetric_and_bounded(
            ax in 0.1f32..0.9, ay in 0.1f32..0.9, aw in 0.05f32..0.5, ah in 0.05f32..0.5,
            bx in 0.1f32..0.9, by in 0.1f32..0.9, bw in 0.05f32..0.5, bh in 0.05f32..0.5,
        ) {
            let a = bb(ax, ay, aw, ah);
            let b = bb(bx, by, bw, bh);
            let i1 = a.iou(&b);
            let i2 = b.iou(&a);
            prop_assert!((i1 - i2).abs() < 1e-5);
            prop_assert!((0.0..=1.0 + 1e-5).contains(&i1));
        }

        #[test]
        fn prop_map_bounded(seed in 0u64..1000) {
            let task = DetectionTask::generate("t", 2, 0.0, 1, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let data = task.dataset(3, &mut rng);
            let mut gt = Vec::new();
            let mut dets = Vec::new();
            for (i, (_, gts)) in data.iter().enumerate() {
                for g in gts {
                    gt.push((i, *g));
                    // Perturbed detections.
                    dets.push(Detection {
                        image_id: i,
                        class: g.class,
                        score: rng.gen_range(0.1..1.0),
                        bbox: BBox { cx: g.bbox.cx + 0.02, ..g.bbox },
                    });
                }
            }
            let map = mean_average_precision(&dets, &gt, 2, 0.5);
            prop_assert!((0.0..=1.0 + 1e-5).contains(&map));
        }
    }
}
