//! Training-time image augmentations (flip, shift, brightness) for the
//! synthetic tasks — standard regularizers for the transfer experiments.

use rand::Rng;

use yoloc_tensor::Tensor;

/// Horizontal flip of a `(C, H, W)` image.
///
/// # Panics
///
/// Panics if the tensor is not rank-3.
pub fn hflip(img: &Tensor) -> Tensor {
    assert_eq!(img.ndim(), 3, "expected (C, H, W)");
    let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
    let mut out = Tensor::zeros(img.shape());
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(&[ci, y, x]) = img.at(&[ci, y, w - 1 - x]);
            }
        }
    }
    out
}

/// Integer translation with zero padding.
///
/// # Panics
///
/// Panics if the tensor is not rank-3.
pub fn shift(img: &Tensor, dy: isize, dx: isize) -> Tensor {
    assert_eq!(img.ndim(), 3, "expected (C, H, W)");
    let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
    let mut out = Tensor::zeros(img.shape());
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = y as isize - dy;
                let sx = x as isize - dx;
                if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
                    *out.at_mut(&[ci, y, x]) = img.at(&[ci, sy as usize, sx as usize]);
                }
            }
        }
    }
    out
}

/// Multiplicative brightness jitter.
pub fn brightness(img: &Tensor, gain: f32) -> Tensor {
    img.scale(gain)
}

/// Applies a random combination of flip / ±1-pixel shift / ±10 %
/// brightness, preserving the label.
pub fn random_augment<R: Rng + ?Sized>(img: &Tensor, rng: &mut R) -> Tensor {
    let mut out = if rng.gen_bool(0.5) {
        hflip(img)
    } else {
        img.clone()
    };
    let dy = rng.gen_range(-1isize..=1);
    let dx = rng.gen_range(-1isize..=1);
    if dy != 0 || dx != 0 {
        out = shift(&out, dy, dx);
    }
    brightness(&out, rng.gen_range(0.9..1.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn double_flip_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = Tensor::randn(&[3, 8, 8], 0.0, 1.0, &mut rng);
        assert_eq!(hflip(&hflip(&img)), img);
    }

    #[test]
    fn shift_moves_content() {
        let mut img = Tensor::zeros(&[1, 4, 4]);
        *img.at_mut(&[0, 1, 1]) = 5.0;
        let s = shift(&img, 1, 2);
        assert_eq!(s.at(&[0, 2, 3]), 5.0);
        assert_eq!(s.at(&[0, 1, 1]), 0.0);
    }

    #[test]
    fn shift_zero_pads_edges() {
        let img = Tensor::ones(&[1, 3, 3]);
        let s = shift(&img, 1, 0);
        // Top row comes from outside the image: zero.
        for x in 0..3 {
            assert_eq!(s.at(&[0, 0, x]), 0.0);
        }
    }

    #[test]
    fn augment_preserves_shape_and_energy_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let img = Tensor::randn(&[3, 16, 16], 0.0, 1.0, &mut rng);
        for _ in 0..10 {
            let a = random_augment(&img, &mut rng);
            assert_eq!(a.shape(), img.shape());
            // Brightness stays within ±10 % and shifts drop at most one
            // border row/col of energy.
            assert!(a.sq_norm() < img.sq_norm() * 1.25);
        }
    }
}
