//! # yoloc-quant
//!
//! Quantization support for the YOLoC (DAC 2022) reproduction: uniform
//! integer quantization (per-tensor affine/symmetric and per-channel
//! symmetric), calibration, the bit-serial decompositions that the ROM-CiM
//! macro datapath executes (weight bit-planes, 2-bit activation chunks with
//! unary pulse counts), and integer reference kernels used as golden models
//! for the analog macro simulation.
//!
//! # Examples
//!
//! ```
//! use yoloc_quant::{QuantParams, QuantTensor};
//! use yoloc_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![0.5, -0.25, 1.0], &[3])?;
//! let q = QuantTensor::quantize(&w, QuantParams::symmetric(1.0, 8));
//! let back = q.dequantize();
//! assert!((back.data()[2] - 1.0).abs() < 1.0 / 127.0);
//! # Ok::<(), yoloc_tensor::ShapeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitplane;
pub mod params;
pub mod qat;
pub mod qlinear;

pub use params::{calibrate_affine, PerChannelQuant, QuantParams, QuantTensor};
