//! Quantization parameters and quantized tensors.

use yoloc_tensor::Tensor;

/// Scale/zero-point parameters for uniform integer quantization.
///
/// # Examples
///
/// ```
/// use yoloc_quant::QuantParams;
///
/// let p = QuantParams::symmetric(1.0, 8);
/// assert_eq!(p.quantize_value(1.0), 127);
/// assert_eq!(p.quantize_value(-1.0), -127);
/// ```
///
/// YOLoC stores 8-bit weights in ROM and drives 8-bit activations
/// (Table I: "Input x weight: 8-bit x 8-bit"); the SPWD baseline (option
/// III) uses 2-bit SRAM decoration, so the bit width is a parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Integer that represents real zero.
    pub zero_point: i32,
    /// Bit width (2..=16).
    pub bits: u8,
    /// Symmetric quantization (signed range, zero_point = 0).
    pub symmetric: bool,
}

impl QuantParams {
    /// Symmetric (signed) quantization covering `[-abs_max, abs_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or `abs_max` is not positive.
    pub fn symmetric(abs_max: f32, bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(abs_max > 0.0, "abs_max must be positive");
        let qmax = (1i32 << (bits - 1)) - 1;
        QuantParams {
            scale: abs_max / qmax as f32,
            zero_point: 0,
            bits,
            symmetric: true,
        }
    }

    /// Affine (unsigned) quantization covering `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or `min >= max`.
    pub fn affine(min: f32, max: f32, bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(min < max, "min must be < max");
        let qmax = (1i32 << bits) - 1;
        let scale = (max - min) / qmax as f32;
        let zero_point = (-min / scale).round() as i32;
        QuantParams {
            scale,
            zero_point: zero_point.clamp(0, qmax),
            bits,
            symmetric: false,
        }
    }

    /// Smallest representable integer code.
    pub fn qmin(&self) -> i32 {
        if self.symmetric {
            -(1i32 << (self.bits - 1)) + 1
        } else {
            0
        }
    }

    /// Largest representable integer code.
    pub fn qmax(&self) -> i32 {
        if self.symmetric {
            (1i32 << (self.bits - 1)) - 1
        } else {
            (1i32 << self.bits) - 1
        }
    }

    /// Quantizes a real value to its integer code (round-to-nearest,
    /// saturating).
    pub fn quantize_value(&self, v: f32) -> i32 {
        let q = (v / self.scale).round() as i32 + self.zero_point;
        q.clamp(self.qmin(), self.qmax())
    }

    /// Reconstructs the real value of an integer code.
    pub fn dequantize_value(&self, q: i32) -> f32 {
        (q - self.zero_point) as f32 * self.scale
    }

    /// Quantizes a slice of real values to integer codes (the shape the
    /// CiM datapath drives: one activation vector per matrix-vector
    /// product).
    pub fn quantize_all(&self, values: &[f32]) -> Vec<i32> {
        values.iter().map(|&v| self.quantize_value(v)).collect()
    }
}

/// An integer tensor together with its quantization parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Integer codes, row-major, same layout as the source tensor.
    pub values: Vec<i32>,
    /// Shape of the source tensor.
    pub shape: Vec<usize>,
    /// Parameters used to produce the codes.
    pub params: QuantParams,
}

impl QuantTensor {
    /// Quantizes `t` under `params`.
    pub fn quantize(t: &Tensor, params: QuantParams) -> Self {
        QuantTensor {
            values: t.data().iter().map(|&v| params.quantize_value(v)).collect(),
            shape: t.shape().to_vec(),
            params,
        }
    }

    /// Reconstructs the (lossy) real-valued tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.values
                .iter()
                .map(|&q| self.params.dequantize_value(q))
                .collect(),
            &self.shape,
        )
        .expect("shape preserved by quantization")
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total storage footprint in bits at the quantized precision.
    pub fn storage_bits(&self) -> u64 {
        self.values.len() as u64 * self.params.bits as u64
    }
}

/// Per-output-channel symmetric quantization of a conv weight `(OC, ...)`,
/// the scheme used when lowering trunk weights into ROM images.
#[derive(Debug, Clone, PartialEq)]
pub struct PerChannelQuant {
    /// Integer codes, same layout as the weight tensor.
    pub values: Vec<i32>,
    /// Weight tensor shape; axis 0 is the channel axis.
    pub shape: Vec<usize>,
    /// One parameter set per output channel.
    pub channel_params: Vec<QuantParams>,
}

impl PerChannelQuant {
    /// Quantizes `w` (axis 0 = output channel) symmetrically per channel.
    ///
    /// # Panics
    ///
    /// Panics if `w` is rank-0.
    pub fn quantize(w: &Tensor, bits: u8) -> Self {
        assert!(w.ndim() >= 1, "weight must have a channel axis");
        let oc = w.shape()[0];
        let inner: usize = w.shape()[1..].iter().product();
        let mut values = Vec::with_capacity(w.len());
        let mut channel_params = Vec::with_capacity(oc);
        for c in 0..oc {
            let chunk = &w.data()[c * inner..(c + 1) * inner];
            let abs_max = chunk
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(f32::EPSILON);
            let p = QuantParams::symmetric(abs_max, bits);
            values.extend(chunk.iter().map(|&v| p.quantize_value(v)));
            channel_params.push(p);
        }
        PerChannelQuant {
            values,
            shape: w.shape().to_vec(),
            channel_params,
        }
    }

    /// Reconstructs the real-valued weight.
    pub fn dequantize(&self) -> Tensor {
        let inner: usize = self.shape[1..].iter().product();
        let mut out = Vec::with_capacity(self.values.len());
        for (c, p) in self.channel_params.iter().enumerate() {
            out.extend(
                self.values[c * inner..(c + 1) * inner]
                    .iter()
                    .map(|&q| p.dequantize_value(q)),
            );
        }
        Tensor::from_vec(out, &self.shape).expect("shape preserved")
    }
}

/// Min/max calibration over a set of tensors, returning affine parameters.
///
/// # Panics
///
/// Panics if `samples` is empty or all-constant.
pub fn calibrate_affine(samples: &[&Tensor], bits: u8) -> QuantParams {
    assert!(!samples.is_empty(), "calibration needs samples");
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for t in samples {
        lo = lo.min(t.min());
        hi = hi.max(t.max());
    }
    // Always include zero so ReLU outputs quantize exactly.
    lo = lo.min(0.0);
    hi = hi.max(0.0);
    if (hi - lo).abs() < f32::EPSILON {
        hi = lo + 1.0;
    }
    QuantParams::affine(lo, hi, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_error_bounded() {
        let p = QuantParams::symmetric(1.0, 8);
        for &v in &[0.0f32, 0.5, -0.99, 1.0, -1.0, 0.123] {
            let q = p.quantize_value(v);
            let r = p.dequantize_value(q);
            assert!((v - r).abs() <= p.scale / 2.0 + 1e-6, "{v} -> {q} -> {r}");
        }
    }

    #[test]
    fn symmetric_saturates() {
        let p = QuantParams::symmetric(1.0, 8);
        assert_eq!(p.quantize_value(100.0), 127);
        assert_eq!(p.quantize_value(-100.0), -127);
    }

    #[test]
    fn affine_represents_zero_exactly() {
        let p = QuantParams::affine(-0.37, 2.11, 8);
        let q0 = p.quantize_value(0.0);
        assert!((p.dequantize_value(q0)).abs() <= p.scale / 2.0);
    }

    #[test]
    fn quant_tensor_roundtrip() {
        let t = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5]).unwrap();
        let q = QuantTensor::quantize(&t, QuantParams::symmetric(1.0, 8));
        let r = q.dequantize();
        for (a, b) in t.data().iter().zip(r.data()) {
            assert!((a - b).abs() <= q.params.scale / 2.0 + 1e-6);
        }
        assert_eq!(q.storage_bits(), 40);
    }

    #[test]
    fn per_channel_tracks_each_range() {
        // Channel 0 tiny values, channel 1 large: per-channel keeps both
        // accurate, per-tensor would crush channel 0.
        let w = Tensor::from_vec(vec![0.01, -0.02, 10.0, -20.0], &[2, 2]).unwrap();
        let pc = PerChannelQuant::quantize(&w, 8);
        let r = pc.dequantize();
        for (a, b) in w.data().iter().zip(r.data()) {
            let rel = (a - b).abs() / a.abs().max(1e-6);
            assert!(rel < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn calibrate_includes_zero() {
        let t = Tensor::from_vec(vec![2.0, 3.0, 4.0], &[3]).unwrap();
        let p = calibrate_affine(&[&t], 8);
        assert!(p.dequantize_value(p.quantize_value(0.0)).abs() <= p.scale / 2.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn rejects_1_bit() {
        let _ = QuantParams::symmetric(1.0, 1);
    }
}
