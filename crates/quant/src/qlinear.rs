//! Integer reference kernels for quantized matrix-vector products.
//!
//! These are the "golden" results the CiM functional simulation is checked
//! against: a CiM macro with an ideal ADC must reproduce them bit-exactly.

use crate::params::{QuantParams, QuantTensor};
use yoloc_tensor::Tensor;

/// Integer matrix-vector product `y = W x` with `W` of shape `(rows, cols)`
/// given as flat quantized codes and `x` a quantized vector of length
/// `cols`. Accumulates in `i64`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn int_mvm(weights: &[i32], rows: usize, cols: usize, x: &[i32]) -> Vec<i64> {
    assert_eq!(weights.len(), rows * cols, "weight size mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    let mut y = vec![0i64; rows];
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &weights[r * cols..(r + 1) * cols];
        *yr = row.iter().zip(x).map(|(&w, &a)| w as i64 * a as i64).sum();
    }
    y
}

/// Fully-quantized linear evaluation: dequantizes an integer accumulator
/// back to real values using the product of input and weight scales.
///
/// For symmetric weights (zero-point 0) and affine activations
/// `a = s_a (q_a - z_a)`, the real dot product is
/// `s_w * s_a * (acc - z_a * sum_w)` where `sum_w` is the weight row sum.
pub fn dequantize_accumulator(
    acc: i64,
    weight_row_sum: i64,
    act_params: QuantParams,
    weight_scale: f32,
) -> f32 {
    weight_scale * act_params.scale * (acc - act_params.zero_point as i64 * weight_row_sum) as f32
}

/// Quantized matrix product for a `(rows, cols)` weight against a batch of
/// quantized columns `(cols, n)`, returning real-valued `(rows, n)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn qmatmul_dequant(
    weight: &QuantTensor,
    weight_scale: f32,
    x: &QuantTensor,
    n: usize,
) -> Tensor {
    assert_eq!(weight.shape.len(), 2, "weight must be (rows, cols)");
    let (rows, cols) = (weight.shape[0], weight.shape[1]);
    assert_eq!(x.values.len(), cols * n, "input size mismatch");
    let mut out = Tensor::zeros(&[rows, n]);
    for r in 0..rows {
        let wrow = &weight.values[r * cols..(r + 1) * cols];
        let row_sum: i64 = wrow.iter().map(|&w| w as i64).sum();
        for c in 0..n {
            let mut acc = 0i64;
            for (k, &w) in wrow.iter().enumerate() {
                acc += w as i64 * x.values[k * n + c] as i64;
            }
            *out.at_mut(&[r, c]) = dequantize_accumulator(acc, row_sum, x.params, weight_scale);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{calibrate_affine, QuantParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn int_mvm_small() {
        let w = vec![1, 2, 3, 4];
        let x = vec![10, 20];
        assert_eq!(int_mvm(&w, 2, 2, &x), vec![50, 110]);
    }

    #[test]
    fn quantized_matmul_approximates_real() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[8, 16], 0.0, 0.5, &mut rng);
        let x = Tensor::rand_uniform(&[16, 4], 0.0, 1.0, &mut rng);
        let wp = QuantParams::symmetric(w.abs_max().max(1e-6), 8);
        let qw = QuantTensor::quantize(&w, wp);
        let xp = calibrate_affine(&[&x], 8);
        let qx = QuantTensor::quantize(&x, xp);
        let approx = qmatmul_dequant(&qw, wp.scale, &qx, 4);
        let exact = w.matmul(&x);
        let mut max_err = 0.0f32;
        for (a, b) in approx.data().iter().zip(exact.data()) {
            max_err = max_err.max((a - b).abs());
        }
        // 8-bit quantization of a 16-deep dot product: error well below 5%
        // of the typical output magnitude.
        let mag = exact.abs_max().max(1e-6);
        assert!(max_err / mag < 0.05, "relative error {}", max_err / mag);
    }

    #[test]
    fn zero_point_correction_is_exact() {
        // The zero-point corrected dequantization must be algebraically
        // exact for the quantized values themselves.
        let wp = QuantParams::symmetric(1.0, 8);
        let xp = QuantParams::affine(0.0, 2.0, 8);
        let w_codes = [5i32, -7, 100];
        let x_codes = vec![3i32, 200, 45];
        let acc: i64 = w_codes
            .iter()
            .zip(&x_codes)
            .map(|(&w, &x)| w as i64 * x as i64)
            .sum();
        let row_sum: i64 = w_codes.iter().map(|&w| w as i64).sum();
        let got = dequantize_accumulator(acc, row_sum, xp, wp.scale);
        let expect: f32 = w_codes
            .iter()
            .zip(&x_codes)
            .map(|(&w, &x)| wp.dequantize_value(w) * xp.dequantize_value(x))
            .sum();
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}
