//! Quantization-aware training (QAT) support.
//!
//! The paper trains at full precision and deploys at 8 bits; for tighter
//! budgets (the SPWD option's 2-bit decoration, or aggressive branch
//! quantization) fake quantization with a straight-through estimator
//! recovers most of the loss. This module provides the fake-quant
//! forward transform, the STE gradient rule, and a drop-in helper for
//! projecting parameters onto a quantization grid during training.

use crate::params::QuantParams;
use yoloc_tensor::Tensor;

/// Applies fake quantization: quantize-then-dequantize, so the forward
/// value lies exactly on the deployment grid while staying `f32`.
pub fn fake_quantize(t: &Tensor, params: QuantParams) -> Tensor {
    t.map(|v| params.dequantize_value(params.quantize_value(v)))
}

/// Straight-through-estimator gradient mask: 1 inside the representable
/// range, 0 where the value saturated (gradients through clipped values
/// are dropped, the standard STE rule).
pub fn ste_mask(t: &Tensor, params: QuantParams) -> Tensor {
    let lo = params.dequantize_value(params.qmin());
    let hi = params.dequantize_value(params.qmax());
    t.map(|v| if v >= lo && v <= hi { 1.0 } else { 0.0 })
}

/// Per-step weight projection for QAT ("weight fake-quant"): snaps a
/// parameter tensor to its symmetric grid in place and returns the mean
/// absolute projection error (useful to monitor grid fit).
pub fn project_to_grid(t: &mut Tensor, bits: u8) -> f32 {
    let abs_max = t.abs_max().max(f32::EPSILON);
    let p = QuantParams::symmetric(abs_max, bits);
    let n = t.len().max(1);
    let mut err = 0.0f64;
    for v in t.data_mut() {
        let q = p.dequantize_value(p.quantize_value(*v));
        err += (q - *v).abs() as f64;
        *v = q;
    }
    (err / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fake_quant_is_idempotent() {
        let p = QuantParams::symmetric(1.0, 8);
        let t = Tensor::from_vec(vec![0.123, -0.77, 0.5, 2.0], &[4]).unwrap();
        let q1 = fake_quantize(&t, p);
        let q2 = fake_quantize(&q1, p);
        assert_eq!(q1, q2);
    }

    #[test]
    fn ste_mask_zeroes_saturated() {
        let p = QuantParams::symmetric(1.0, 8);
        let t = Tensor::from_vec(vec![0.5, 1.5, -2.0], &[3]).unwrap();
        let m = ste_mask(&t, p);
        assert_eq!(m.data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn projection_error_shrinks_with_bits() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let t = Tensor::randn(&[256], 0.0, 1.0, &mut rng);
        let mut t2 = t.clone();
        let mut t8 = t.clone();
        let e2 = project_to_grid(&mut t2, 2);
        let e8 = project_to_grid(&mut t8, 8);
        assert!(e8 < e2 / 10.0, "e2 {e2} e8 {e8}");
    }

    proptest! {
        #[test]
        fn prop_fake_quant_error_bounded(
            vals in prop::collection::vec(-2.0f32..2.0, 1..64),
            bits in 2u8..=8,
        ) {
            let t = Tensor::from_vec(vals.clone(), &[vals.len()]).unwrap();
            let p = QuantParams::symmetric(2.0, bits);
            let q = fake_quantize(&t, p);
            for (a, b) in q.data().iter().zip(t.data()) {
                prop_assert!((a - b).abs() <= p.scale / 2.0 + 1e-6);
            }
        }
    }
}
