//! Bit-serial decompositions used by the CiM datapath.
//!
//! The ROM-CiM macro of Fig. 5 computes one activation *chunk* against one
//! weight *bit-plane* per analog evaluation:
//!
//! * weights are stored as bit-planes across physical columns — plane `j`
//!   carries bit `j` of the two's-complement code, and the MSB plane has
//!   negative significance `-2^(b-1)`;
//! * activations are applied serially as base-4 digits ("0, 1, 2, or 3
//!   pulses applied to each WL for a 2-bit activation input").
//!
//! The shift-&-add block recombines partial sums; these functions are the
//! exact arithmetic it implements, and the property tests assert perfect
//! reconstruction, which is why the CiM functional simulation can match the
//! integer reference exactly when the ADC is ideal.

/// Splits signed two's-complement codes into `bits` bit-planes.
///
/// `planes[j][i]` is bit `j` of code `i`. For `j < bits-1` the plane has
/// significance `2^j`; plane `bits-1` has significance `-2^(bits-1)`.
///
/// # Examples
///
/// ```
/// use yoloc_quant::bitplane::{reconstruct_signed, signed_bitplanes};
///
/// let codes = [-128, -1, 0, 77, 127];
/// let planes = signed_bitplanes(&codes, 8);
/// assert_eq!(planes.len(), 8);
/// // Plane 7 is the sign plane: set exactly for the negative codes.
/// assert_eq!(planes[7], vec![1, 1, 0, 0, 0]);
/// // The decomposition is lossless.
/// assert_eq!(reconstruct_signed(&planes, 8), codes);
/// ```
///
/// # Panics
///
/// Panics if any value is outside the signed `bits`-bit range.
pub fn signed_bitplanes(values: &[i32], bits: u8) -> Vec<Vec<u8>> {
    let lo = -(1i32 << (bits - 1));
    let hi = (1i32 << (bits - 1)) - 1;
    let mut planes = vec![vec![0u8; values.len()]; bits as usize];
    for (i, &v) in values.iter().enumerate() {
        assert!(
            (lo..=hi).contains(&v),
            "value {v} outside signed {bits}-bit range"
        );
        let u = (v as u32) & ((1u32 << bits) - 1); // two's complement bits
        for (j, plane) in planes.iter_mut().enumerate() {
            plane[i] = ((u >> j) & 1) as u8;
        }
    }
    planes
}

/// Significance (weight) of bit-plane `j` in a signed `bits`-bit code.
pub fn signed_plane_weight(j: usize, bits: u8) -> i64 {
    if j == (bits - 1) as usize {
        -(1i64 << j)
    } else {
        1i64 << j
    }
}

/// Inverse of [`signed_bitplanes`].
///
/// # Examples
///
/// ```
/// use yoloc_quant::bitplane::reconstruct_signed;
///
/// // 3-bit planes (LSB first): 3 = 0b011, -3 = 0b101 in two's
/// // complement; the MSB plane carries significance -4.
/// let planes = vec![vec![1, 1], vec![1, 0], vec![0, 1]];
/// assert_eq!(reconstruct_signed(&planes, 3), vec![3, -3]);
/// ```
///
/// # Panics
///
/// Panics if `planes.len() != bits` or plane lengths differ.
pub fn reconstruct_signed(planes: &[Vec<u8>], bits: u8) -> Vec<i32> {
    assert_eq!(planes.len(), bits as usize, "plane count mismatch");
    let n = planes[0].len();
    let mut out = vec![0i64; n];
    for (j, plane) in planes.iter().enumerate() {
        assert_eq!(plane.len(), n, "ragged planes");
        let w = signed_plane_weight(j, bits);
        for (o, &b) in out.iter_mut().zip(plane) {
            *o += w * b as i64;
        }
    }
    out.into_iter().map(|v| v as i32).collect()
}

/// Splits unsigned codes into base-`2^chunk_bits` digits, least-significant
/// first. With `chunk_bits = 2` each digit is 0..=3, matching the paper's
/// unary-pulse activation drive.
///
/// # Panics
///
/// Panics if any value is outside the unsigned `bits`-bit range, or if
/// `chunk_bits` is zero.
pub fn unsigned_chunks(values: &[i32], bits: u8, chunk_bits: u8) -> Vec<Vec<u8>> {
    assert!(chunk_bits > 0, "chunk_bits must be positive");
    let hi = (1i64 << bits) - 1;
    let n_chunks = bits.div_ceil(chunk_bits) as usize;
    let mask = (1u32 << chunk_bits) - 1;
    let mut chunks = vec![vec![0u8; values.len()]; n_chunks];
    for (i, &v) in values.iter().enumerate() {
        assert!(
            (0..=hi).contains(&(v as i64)),
            "value {v} outside unsigned {bits}-bit range"
        );
        let mut u = v as u32;
        for chunk in chunks.iter_mut() {
            chunk[i] = (u & mask) as u8;
            u >>= chunk_bits;
        }
    }
    chunks
}

/// Inverse of [`unsigned_chunks`].
pub fn reconstruct_unsigned(chunks: &[Vec<u8>], chunk_bits: u8) -> Vec<i32> {
    let n = chunks.first().map_or(0, |c| c.len());
    let mut out = vec![0i64; n];
    for (j, chunk) in chunks.iter().enumerate() {
        let w = 1i64 << (j as u8 * chunk_bits);
        for (o, &d) in out.iter_mut().zip(chunk) {
            *o += w * d as i64;
        }
    }
    out.into_iter().map(|v| v as i32).collect()
}

/// Shift-and-add recombination of per-(chunk, plane) partial MAC sums.
///
/// `partials[c][j]` is the integer dot product of activation chunk `c`
/// against weight plane `j`. The result is the full integer MAC value, the
/// operation of the macro's "Shift & Add" block in Fig. 5.
pub fn shift_add(partials: &[Vec<i64>], weight_bits: u8, chunk_bits: u8) -> i64 {
    let mut acc = 0i64;
    for (c, row) in partials.iter().enumerate() {
        let act_w = 1i64 << (c as u8 * chunk_bits);
        for (j, &p) in row.iter().enumerate() {
            acc += act_w * signed_plane_weight(j, weight_bits) * p;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn signed_roundtrip_8bit() {
        let vals: Vec<i32> = (-128..=127).collect();
        let planes = signed_bitplanes(&vals, 8);
        assert_eq!(planes.len(), 8);
        assert_eq!(reconstruct_signed(&planes, 8), vals);
    }

    #[test]
    fn unsigned_chunk_roundtrip_8bit() {
        let vals: Vec<i32> = (0..=255).collect();
        let chunks = unsigned_chunks(&vals, 8, 2);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.iter().all(|&d| d <= 3)));
        assert_eq!(reconstruct_unsigned(&chunks, 2), vals);
    }

    #[test]
    fn msb_plane_is_negative() {
        assert_eq!(signed_plane_weight(7, 8), -128);
        assert_eq!(signed_plane_weight(6, 8), 64);
        assert_eq!(signed_plane_weight(0, 8), 1);
    }

    #[test]
    fn shift_add_single_element_equals_product() {
        // One activation a, one weight w: partials[c][j] = digit_c(a) * bit_j(w);
        // shift_add must equal a * w.
        for &a in &[0i32, 1, 37, 255] {
            for &w in &[-128i32, -1, 0, 1, 77, 127] {
                let chunks = unsigned_chunks(&[a], 8, 2);
                let planes = signed_bitplanes(&[w], 8);
                let partials: Vec<Vec<i64>> = chunks
                    .iter()
                    .map(|c| {
                        planes
                            .iter()
                            .map(|p| (c[0] as i64) * (p[0] as i64))
                            .collect()
                    })
                    .collect();
                assert_eq!(shift_add(&partials, 8, 2), (a as i64) * (w as i64));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_signed_roundtrip(vals in prop::collection::vec(-128i32..=127, 1..64)) {
            let planes = signed_bitplanes(&vals, 8);
            prop_assert_eq!(reconstruct_signed(&planes, 8), vals);
        }

        #[test]
        fn prop_unsigned_roundtrip(
            vals in prop::collection::vec(0i32..=255, 1..64),
            chunk_bits in 1u8..=4,
        ) {
            let chunks = unsigned_chunks(&vals, 8, chunk_bits);
            prop_assert_eq!(reconstruct_unsigned(&chunks, chunk_bits), vals);
        }

        #[test]
        fn prop_bit_serial_dot_product_exact(
            pairs in prop::collection::vec((0i32..=255, -128i32..=127), 1..32)
        ) {
            // Full bit-serial MVM on a vector: sum over elements of a[i]*w[i]
            // computed chunk-by-chunk and plane-by-plane, recombined by
            // shift_add, must equal the direct integer dot product.
            let (acts, weights): (Vec<i32>, Vec<i32>) = pairs.into_iter().unzip();
            let chunks = unsigned_chunks(&acts, 8, 2);
            let planes = signed_bitplanes(&weights, 8);
            let partials: Vec<Vec<i64>> = chunks.iter().map(|c| {
                planes.iter().map(|p| {
                    c.iter().zip(p).map(|(&d, &b)| d as i64 * b as i64).sum()
                }).collect()
            }).collect();
            let direct: i64 = acts.iter().zip(&weights)
                .map(|(&a, &w)| a as i64 * w as i64).sum();
            prop_assert_eq!(shift_add(&partials, 8, 2), direct);
        }
    }
}
