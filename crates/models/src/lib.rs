//! # yoloc-models
//!
//! The network-description IR and model zoo of the YOLoC (DAC 2022)
//! reproduction: VGG-8, ResNet-18, DarkNet-19 and the YOLO / Tiny-YOLO
//! detectors, with shape propagation, parameter/MAC counting and the
//! im2col-lowered matrix geometry every CiM mapping decision is based on.
//!
//! # Examples
//!
//! ```
//! let yolo = yoloc_models::zoo::yolo_v2(20, 5);
//! // Tens of millions of weights — too large for on-chip SRAM, the
//! // motivating problem of the paper.
//! assert!(yolo.param_count() > 40_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod summary;
pub mod zoo;

pub use ir::{
    ActKind, LayerReport, LayerSpec, LoweredMatrix, NetworkDesc, NetworkError, ProjectionSpec,
    Shape,
};
