//! The paper's model zoo: VGG-8, ResNet-18, DarkNet-19 (YOLO backbone),
//! YOLO (v2 head) and Tiny-YOLO, described in the [`crate::ir`] IR.
//!
//! These definitions drive the area/energy/latency evaluation of
//! Fig. 12/14 and Table I; the reduced-width trainable variants used for
//! the accuracy experiments live in `yoloc-core`.

use crate::ir::{ActKind, LayerSpec, NetworkDesc, ProjectionSpec};

fn conv(name: &str, i: usize, o: usize, k: usize, s: usize, p: usize) -> LayerSpec {
    LayerSpec::Conv {
        name: name.into(),
        in_ch: i,
        out_ch: o,
        kernel: k,
        stride: s,
        padding: p,
        bias: false,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter list
fn conv_bn_act(
    net: &mut NetworkDesc,
    name: &str,
    i: usize,
    o: usize,
    k: usize,
    s: usize,
    p: usize,
    act: ActKind,
) {
    net.layers.push(conv(name, i, o, k, s, p));
    net.layers.push(LayerSpec::BatchNorm { channels: o });
    net.layers.push(LayerSpec::Activation(act));
}

fn maxpool2(net: &mut NetworkDesc) {
    net.layers.push(LayerSpec::MaxPool {
        kernel: 2,
        stride: 2,
    });
}

/// VGG-8 for 32x32 inputs (CIFAR-class): six 3x3 convs in three stages
/// with a global-average-pool classifier (~4.7 M parameters), the compact
/// VGG variant used throughout the CiM literature. The paper's Fig. 10(a)
/// memory-area ratio (ResNet-18 ~2.6x VGG-8) pins this form rather than
/// the FC-heavy original.
pub fn vgg8(classes: usize) -> NetworkDesc {
    let mut net = NetworkDesc::new("vgg8", (3, 32, 32));
    conv_bn_act(&mut net, "conv1", 3, 128, 3, 1, 1, ActKind::Relu);
    conv_bn_act(&mut net, "conv2", 128, 128, 3, 1, 1, ActKind::Relu);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv3", 128, 256, 3, 1, 1, ActKind::Relu);
    conv_bn_act(&mut net, "conv4", 256, 256, 3, 1, 1, ActKind::Relu);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv5", 256, 512, 3, 1, 1, ActKind::Relu);
    conv_bn_act(&mut net, "conv6", 512, 512, 3, 1, 1, ActKind::Relu);
    maxpool2(&mut net);
    net.layers.push(LayerSpec::GlobalAvgPool);
    net.layers.push(LayerSpec::Linear {
        name: "fc".into(),
        in_features: 512,
        out_features: classes,
        bias: true,
    });
    net
}

fn basic_block(net: &mut NetworkDesc, name: &str, i: usize, o: usize, stride: usize) {
    let downsample = stride != 1 || i != o;
    conv_bn_act(
        net,
        &format!("{name}.conv1"),
        i,
        o,
        3,
        stride,
        1,
        ActKind::Relu,
    );
    net.layers
        .push(conv(&format!("{name}.conv2"), o, o, 3, 1, 1));
    net.layers.push(LayerSpec::BatchNorm { channels: o });
    // The skip source is the layer just before this block (5 layers back
    // from the add: conv1, bn, act, conv2, bn).
    net.layers.push(LayerSpec::ResidualAdd {
        blocks_back: 6,
        projection: downsample.then(|| ProjectionSpec {
            name: format!("{name}.down"),
            in_ch: i,
            out_ch: o,
            stride,
        }),
    });
    net.layers.push(LayerSpec::Activation(ActKind::Relu));
}

/// ResNet-18 for 224x224 inputs (~11.7 M parameters with 1000 classes).
pub fn resnet18(classes: usize) -> NetworkDesc {
    let mut net = NetworkDesc::new("resnet18", (3, 224, 224));
    conv_bn_act(&mut net, "conv1", 3, 64, 7, 2, 3, ActKind::Relu);
    net.layers.push(LayerSpec::MaxPool {
        kernel: 2,
        stride: 2,
    });
    basic_block(&mut net, "layer1.0", 64, 64, 1);
    basic_block(&mut net, "layer1.1", 64, 64, 1);
    basic_block(&mut net, "layer2.0", 64, 128, 2);
    basic_block(&mut net, "layer2.1", 128, 128, 1);
    basic_block(&mut net, "layer3.0", 128, 256, 2);
    basic_block(&mut net, "layer3.1", 256, 256, 1);
    basic_block(&mut net, "layer4.0", 256, 512, 2);
    basic_block(&mut net, "layer4.1", 512, 512, 1);
    net.layers.push(LayerSpec::GlobalAvgPool);
    net.layers.push(LayerSpec::Linear {
        name: "fc".into(),
        in_features: 512,
        out_features: classes,
        bias: true,
    });
    net
}

fn darknet_backbone(net: &mut NetworkDesc) {
    let l = ActKind::Leaky;
    conv_bn_act(net, "conv1", 3, 32, 3, 1, 1, l);
    maxpool2(net);
    conv_bn_act(net, "conv2", 32, 64, 3, 1, 1, l);
    maxpool2(net);
    conv_bn_act(net, "conv3", 64, 128, 3, 1, 1, l);
    conv_bn_act(net, "conv4", 128, 64, 1, 1, 0, l);
    conv_bn_act(net, "conv5", 64, 128, 3, 1, 1, l);
    maxpool2(net);
    conv_bn_act(net, "conv6", 128, 256, 3, 1, 1, l);
    conv_bn_act(net, "conv7", 256, 128, 1, 1, 0, l);
    conv_bn_act(net, "conv8", 128, 256, 3, 1, 1, l);
    maxpool2(net);
    conv_bn_act(net, "conv9", 256, 512, 3, 1, 1, l);
    conv_bn_act(net, "conv10", 512, 256, 1, 1, 0, l);
    conv_bn_act(net, "conv11", 256, 512, 3, 1, 1, l);
    conv_bn_act(net, "conv12", 512, 256, 1, 1, 0, l);
    conv_bn_act(net, "conv13", 256, 512, 3, 1, 1, l);
    maxpool2(net);
    conv_bn_act(net, "conv14", 512, 1024, 3, 1, 1, l);
    conv_bn_act(net, "conv15", 1024, 512, 1, 1, 0, l);
    conv_bn_act(net, "conv16", 512, 1024, 3, 1, 1, l);
    conv_bn_act(net, "conv17", 1024, 512, 1, 1, 0, l);
    conv_bn_act(net, "conv18", 512, 1024, 3, 1, 1, l);
}

/// DarkNet-19 classifier for 224x224 inputs (~20.8 M parameters at 1000
/// classes): the YOLO backbone.
pub fn darknet19(classes: usize) -> NetworkDesc {
    let mut net = NetworkDesc::new("darknet19", (3, 224, 224));
    darknet_backbone(&mut net);
    net.layers.push(conv("conv19", 1024, classes, 1, 1, 0));
    net.layers.push(LayerSpec::GlobalAvgPool);
    net
}

/// YOLO (v2) detector with the DarkNet-19 backbone at 416x416
/// (~46-51 M parameters for 20 VOC classes, 5 anchors).
///
/// The passthrough/reorg concatenation of the reference implementation is
/// modelled by widening the fusion conv's input to 1024 + 256 channels
/// (the reorg of the 26x26x512 map contributes 2048, compressed by the
/// standard 512->64 squeeze to 256).
pub fn yolo_v2(classes: usize, anchors: usize) -> NetworkDesc {
    let mut net = NetworkDesc::new("yolo-v2", (3, 416, 416));
    darknet_backbone(&mut net);
    let l = ActKind::Leaky;
    conv_bn_act(&mut net, "head1", 1024, 1024, 3, 1, 1, l);
    conv_bn_act(&mut net, "head2", 1024, 1024, 3, 1, 1, l);
    // Passthrough: reorg of the 26x26x512 map (squeezed to 64 channels,
    // space-to-depth x4) concatenates 256 channels at 13x13.
    net.layers.push(LayerSpec::Passthrough { extra_ch: 256 });
    conv_bn_act(&mut net, "head3", 1024 + 256, 1024, 3, 1, 1, l);
    let out = anchors * (5 + classes);
    net.layers.push(conv("detect", 1024, out, 1, 1, 0));
    net
}

/// Tiny-YOLO (v2) detector at 416x416 (~15.8 M parameters for 20 VOC
/// classes; the paper quotes 11.3 M for its Tiny-YOLO variant).
pub fn tiny_yolo(classes: usize, anchors: usize) -> NetworkDesc {
    let mut net = NetworkDesc::new("tiny-yolo", (3, 416, 416));
    let l = ActKind::Leaky;
    conv_bn_act(&mut net, "conv1", 3, 16, 3, 1, 1, l);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv2", 16, 32, 3, 1, 1, l);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv3", 32, 64, 3, 1, 1, l);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv4", 64, 128, 3, 1, 1, l);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv5", 128, 256, 3, 1, 1, l);
    maxpool2(&mut net);
    conv_bn_act(&mut net, "conv6", 256, 512, 3, 1, 1, l);
    net.layers.push(LayerSpec::MaxPool {
        kernel: 1,
        stride: 1,
    });
    conv_bn_act(&mut net, "conv7", 512, 1024, 3, 1, 1, l);
    conv_bn_act(&mut net, "conv8", 1024, 1024, 3, 1, 1, l);
    let out = anchors * (5 + classes);
    net.layers.push(conv("detect", 1024, out, 1, 1, 0));
    net
}

/// Scales a zoo description to an executable footprint: divides every
/// channel count by `div` (minimum 1, including the input channels) and
/// re-resolutions the input to `(h, w)`.
///
/// Fully-convolutional detection networks re-resolve exactly; classifier
/// networks keep their `Linear` head valid because it follows global
/// average pooling (`in_features` equals the last channel count, which
/// scales by the same rule). The scaled description keeps the zoo
/// architecture's depth, stage structure and residual/passthrough
/// topology — it is the same graph at a width the functional CiM
/// simulator executes end to end in milliseconds instead of hours.
///
/// Use divisors that divide the network's channel widths (8/16/32 for the
/// zoo) so concatenation arithmetic (`Passthrough`) stays consistent; the
/// result should always be validated with [`NetworkDesc::analyze`].
pub fn scaled(net: &NetworkDesc, div: usize, hw: (usize, usize)) -> NetworkDesc {
    let s = |c: usize| (c / div).max(1);
    let mut out = NetworkDesc::new(
        format!("{}/w{}@{}x{}", net.name, div, hw.0, hw.1),
        (s(net.input.0), hw.0, hw.1),
    );
    for layer in &net.layers {
        out.layers.push(match layer {
            LayerSpec::Conv {
                name,
                in_ch,
                out_ch,
                kernel,
                stride,
                padding,
                bias,
            } => LayerSpec::Conv {
                name: name.clone(),
                in_ch: s(*in_ch),
                out_ch: s(*out_ch),
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
                bias: *bias,
            },
            LayerSpec::Linear {
                name,
                in_features,
                out_features,
                bias,
            } => LayerSpec::Linear {
                name: name.clone(),
                in_features: s(*in_features),
                out_features: *out_features,
                bias: *bias,
            },
            LayerSpec::BatchNorm { channels } => LayerSpec::BatchNorm {
                channels: s(*channels),
            },
            LayerSpec::Passthrough { extra_ch } => LayerSpec::Passthrough {
                extra_ch: s(*extra_ch),
            },
            LayerSpec::ResidualAdd {
                blocks_back,
                projection,
            } => LayerSpec::ResidualAdd {
                blocks_back: *blocks_back,
                projection: projection.as_ref().map(|p| ProjectionSpec {
                    name: p.name.clone(),
                    in_ch: s(p.in_ch),
                    out_ch: s(p.out_ch),
                    stride: p.stride,
                }),
            },
            other => other.clone(),
        });
    }
    out
}

/// A deterministic random zoo architecture: a shape-consistent stack of
/// conv / activation / pooling blocks with occasional residual skips
/// (projected when channel counts change) and an optional GAP + linear
/// head. The generator is seeded and dependency-free (SplitMix64 inline),
/// so property tests across crates can sweep "any zoo-shaped graph"
/// reproducibly — the fusion/scheduler parity suite compiles these and
/// pins tiled execution against the legacy serial walk.
///
/// Every returned network passes [`NetworkDesc::analyze`] (asserted by a
/// unit test over many seeds) and stays small enough to execute on the
/// functional simulator in milliseconds.
pub fn random_zoo(seed: u64) -> NetworkDesc {
    // SplitMix64: small, stable, and avoids a rand dependency here.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        let mut z = state;
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut pick = |n: u64| (next() % n) as usize;
    let in_ch = 1 + pick(4);
    let mut hw = 8 + 4 * pick(3); // 8, 12 or 16
    let mut net = NetworkDesc::new(format!("rand-zoo-{seed}"), (in_ch, hw, hw));
    let mut ch = in_ch;
    let blocks = 1 + pick(4);
    for b in 0..blocks {
        let out_ch = 2 + 2 * pick(8); // even, 2..=16
                                      // Odd kernels only: `same` padding k/2 then preserves the spatial
                                      // dims exactly, which the skip connections rely on.
        let mut kernel = [1usize, 3, 3, 5][pick(4)].min(hw);
        if kernel % 2 == 0 {
            kernel -= 1;
        }
        net.layers.push(LayerSpec::Conv {
            name: format!("c{b}"),
            in_ch: ch,
            out_ch,
            kernel,
            stride: 1,
            padding: kernel / 2,
            bias: false,
        });
        net.layers.push(LayerSpec::Activation(if pick(2) == 0 {
            ActKind::Relu
        } else {
            ActKind::Leaky
        }));
        // Occasional residual skip back over this block (projected when
        // the channel count changed across it). `blocks_back` reaches the
        // layer *before* this block's conv — or the network input when
        // the conv opened the stack.
        if pick(3) == 0 {
            let projection = if out_ch == ch {
                None
            } else {
                Some(ProjectionSpec {
                    name: format!("proj{b}"),
                    in_ch: ch,
                    out_ch,
                    stride: 1,
                })
            };
            net.layers.push(LayerSpec::ResidualAdd {
                // Each block is exactly conv + activation, so the block
                // input is always 3 layers back from the residual.
                blocks_back: 3,
                projection,
            });
        }
        ch = out_ch;
        if hw >= 8 && pick(3) == 0 {
            net.layers.push(LayerSpec::MaxPool {
                kernel: 2,
                stride: 2,
            });
            hw /= 2;
        }
    }
    if pick(2) == 0 {
        net.layers.push(LayerSpec::GlobalAvgPool);
        net.layers.push(LayerSpec::Linear {
            name: "fc".into(),
            in_features: ch,
            out_features: 2 + pick(8),
            bias: pick(2) == 0,
        });
    }
    net
}

/// The ReBranch generalization experiments also use a "wide" channel
/// profile table (Fig. 6b): per-conv transferability decays with depth.
/// This helper exposes the conv layer names of a network in depth order.
pub fn conv_names(net: &NetworkDesc) -> Vec<String> {
    net.layers
        .iter()
        .filter_map(|l| match l {
            LayerSpec::Conv { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg8_params_about_5m() {
        let net = vgg8(100);
        let p = net.param_count();
        assert!((4_200_000..5_500_000).contains(&p), "params {p}");
        assert!(net.analyze().is_ok());
    }

    #[test]
    fn resnet_to_vgg8_area_ratio_matches_fig10() {
        // Fig. 10(a): all-SRAM memory area of ResNet-18 is ~2.58x VGG-8.
        let r = resnet18(100).cim_param_count() as f64;
        let v = vgg8(100).cim_param_count() as f64;
        let ratio = r / v;
        assert!((2.2..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn resnet18_params_match_torchvision() {
        // torchvision resnet18 (1000 classes): 11.69 M parameters.
        let net = resnet18(1000);
        let p = net.param_count();
        assert!(
            (11_000_000..12_300_000).contains(&p),
            "params {p} (expect ~11.69M)"
        );
        assert!(net.analyze().is_ok());
    }

    #[test]
    fn darknet19_params_about_21m() {
        let net = darknet19(1000);
        let p = net.param_count();
        assert!((19_000_000..22_500_000).contains(&p), "params {p}");
        // ~2.8 GMACs (5.6 GFLOPs) at 224x224 for the reference model.
        let macs = net.macs().unwrap();
        assert!(
            (2_400_000_000..3_400_000_000).contains(&macs),
            "macs {macs}"
        );
    }

    #[test]
    fn yolo_params_tens_of_millions() {
        // Paper: "Tiny-YOLO and YOLO have 11.3 M and 46 M weights".
        let yolo = yolo_v2(20, 5);
        let p = yolo.param_count();
        assert!((44_000_000..53_000_000).contains(&p), "params {p}");
        let tiny = tiny_yolo(20, 5);
        let tp = tiny.param_count();
        assert!((10_000_000..17_000_000).contains(&tp), "params {tp}");
        assert!(p > 3 * tp, "YOLO must be several times Tiny-YOLO");
        assert!(yolo.analyze().is_ok());
        assert!(tiny.analyze().is_ok());
    }

    #[test]
    fn yolo_downsamples_to_13x13() {
        let yolo = yolo_v2(20, 5);
        let reports = yolo.analyze().unwrap();
        let last = reports.last().unwrap();
        assert_eq!(last.out_shape.1, 13);
        assert_eq!(last.out_shape.2, 13);
        assert_eq!(last.out_shape.0, 125);
    }

    #[test]
    fn backbone_dominates_yolo_params() {
        // Paper: "over 90% of parameters are stored in the high-density
        // ROM-CiM" — the backbone + fixed head convs dominate.
        let yolo = yolo_v2(20, 5);
        let detect_params: u64 = yolo
            .layers
            .iter()
            .filter_map(|l| match l {
                LayerSpec::Conv { name, .. } if name == "detect" => Some(l.param_count()),
                _ => None,
            })
            .sum();
        assert!((detect_params as f64) < 0.01 * yolo.param_count() as f64);
    }

    #[test]
    fn conv_names_in_order() {
        let names = conv_names(&darknet19(1000));
        assert_eq!(names.len(), 19);
        assert_eq!(names[0], "conv1");
        assert_eq!(names[18], "conv19");
    }

    #[test]
    fn weight_bits_at_8bit() {
        let net = vgg8(10);
        assert_eq!(net.weight_bits(8), net.cim_param_count() * 8);
    }

    #[test]
    fn scaled_networks_stay_consistent() {
        // Every zoo model survives width/resolution scaling with valid
        // shape propagation — the precondition for executing them.
        for (net, hw) in [
            (vgg8(10), (16, 16)),
            (resnet18(10), (32, 32)),
            (darknet19(10), (64, 64)),
            (yolo_v2(4, 2), (64, 64)),
            (tiny_yolo(4, 2), (64, 64)),
        ] {
            for div in [8, 16, 32] {
                let s = scaled(&net, div, hw);
                assert!(
                    s.analyze().is_ok(),
                    "{} fails analysis: {:?}",
                    s.name,
                    s.analyze().err()
                );
                assert!(s.param_count() < net.param_count());
            }
        }
    }

    #[test]
    fn random_zoo_is_always_analyzable() {
        // The property-test generator must never emit an inconsistent
        // graph, across a wide seed sweep, and must be deterministic.
        for seed in 0..500u64 {
            let net = random_zoo(seed);
            assert!(
                net.analyze().is_ok(),
                "seed {seed} ({}): {:?}",
                net.name,
                net.analyze().err()
            );
        }
        let a = random_zoo(42);
        let b = random_zoo(42);
        assert_eq!(a.layers.len(), b.layers.len());
        assert_eq!(a.param_count(), b.param_count());
        // Diversity: some seeds produce residuals, some linears.
        let any_residual = (0..50).any(|s| {
            random_zoo(s)
                .layers
                .iter()
                .any(|l| matches!(l, LayerSpec::ResidualAdd { .. }))
        });
        let any_linear = (0..50).any(|s| {
            random_zoo(s)
                .layers
                .iter()
                .any(|l| matches!(l, LayerSpec::Linear { .. }))
        });
        assert!(any_residual && any_linear);
    }

    #[test]
    fn scaled_keeps_depth_and_topology() {
        let net = yolo_v2(20, 5);
        let s = scaled(&net, 32, (64, 64));
        assert_eq!(s.layers.len(), net.layers.len());
        assert_eq!(s.name, "yolo-v2/w32@64x64");
        // Detection head output: anchors * (5 + classes) is NOT scaled
        // away — the conv out_ch scales, matching the scaled graph.
        let r = s.analyze().unwrap();
        assert_eq!(r.last().unwrap().out_shape.1, 2); // 64 / 32 downsample
    }
}
