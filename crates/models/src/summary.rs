//! Human-readable per-layer summaries of network descriptions.

use crate::ir::{NetworkDesc, NetworkError};

/// One row of a [`summary`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Layer description.
    pub name: String,
    /// Output shape as `CxHxW`.
    pub out_shape: String,
    /// Parameters.
    pub params: u64,
    /// MACs per inference.
    pub macs: u64,
    /// Cumulative parameter fraction up to and including this layer.
    pub cum_param_frac: f64,
}

/// Produces per-layer rows plus totals `(rows, total_params, total_macs)`.
///
/// # Errors
///
/// Propagates [`NetworkError`] for inconsistent networks.
pub fn summary(net: &NetworkDesc) -> Result<(Vec<SummaryRow>, u64, u64), NetworkError> {
    let reports = net.analyze()?;
    let total_params: u64 = reports.iter().map(|r| r.params).sum();
    let total_macs: u64 = reports.iter().map(|r| r.macs).sum();
    let mut cum = 0u64;
    let rows = reports
        .iter()
        .map(|r| {
            cum += r.params;
            SummaryRow {
                name: r.name.clone(),
                out_shape: format!("{}x{}x{}", r.out_shape.0, r.out_shape.1, r.out_shape.2),
                params: r.params,
                macs: r.macs,
                cum_param_frac: if total_params == 0 {
                    0.0
                } else {
                    cum as f64 / total_params as f64
                },
            }
        })
        .collect();
    Ok((rows, total_params, total_macs))
}

/// Formats the summary as a markdown table string.
///
/// # Errors
///
/// Propagates [`NetworkError`].
pub fn summary_markdown(net: &NetworkDesc) -> Result<String, NetworkError> {
    let (rows, params, macs) = summary(net)?;
    let mut out = String::new();
    out.push_str(&format!(
        "### {} — {:.2} M params, {:.2} GMACs\n\n",
        net.name,
        params as f64 / 1e6,
        macs as f64 / 1e9
    ));
    out.push_str("| layer | out | params | MACs | cum. params |\n|---|---|---|---|---|\n");
    for r in rows {
        if r.params == 0 && r.macs == 0 {
            continue; // skip activations/pools for brevity
        }
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.1}% |\n",
            r.name,
            r.out_shape,
            r.params,
            r.macs,
            100.0 * r.cum_param_frac
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn totals_match_network_methods() {
        let net = zoo::vgg8(10);
        let (_, params, macs) = summary(&net).unwrap();
        assert_eq!(params, net.param_count());
        assert_eq!(macs, net.macs().unwrap());
    }

    #[test]
    fn cumulative_fraction_reaches_one() {
        let net = zoo::resnet18(100);
        let (rows, _, _) = summary(&net).unwrap();
        let last = rows.last().unwrap();
        assert!((last.cum_param_frac - 1.0).abs() < 1e-9);
        // Fractions are monotone.
        for w in rows.windows(2) {
            assert!(w[1].cum_param_frac >= w[0].cum_param_frac);
        }
    }

    #[test]
    fn markdown_contains_header_and_layers() {
        let md = summary_markdown(&zoo::tiny_yolo(20, 5)).unwrap();
        assert!(md.contains("tiny-yolo"));
        assert!(md.contains("conv1"));
        assert!(md.contains("| layer |"));
    }

    #[test]
    fn darknet_backbone_holds_most_yolo_params() {
        // The basis for "over 90% of parameters are stored in ROM-CiM":
        // by the end of the backbone the cumulative share is already high.
        let net = zoo::yolo_v2(20, 5);
        let (rows, _, _) = summary(&net).unwrap();
        let backbone_end = rows
            .iter()
            .find(|r| r.name.starts_with("conv18"))
            .expect("conv18 present");
        assert!(backbone_end.cum_param_frac > 0.35);
        // The detect head itself is tiny.
        let detect = rows.iter().find(|r| r.name.starts_with("detect")).unwrap();
        assert!((detect.params as f64) < 0.01 * net.param_count() as f64);
    }
}
