//! Network intermediate representation.
//!
//! The system-level evaluation (area, energy, latency of Fig. 12/14) needs
//! layer *shapes and counts*, not trained weights, so networks are
//! described by this lightweight IR. The same IR drives the CiM weight
//! mapper (every conv lowers to a `(out_ch, in_ch*k*k)` matrix applied to
//! `OH*OW` positions) and the trainable-model builders in `yoloc-core`.

use serde::{Deserialize, Serialize};

/// Activation function kinds used by the paper's models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit (VGG/ResNet).
    Relu,
    /// Leaky ReLU with slope 0.1 (DarkNet family).
    Leaky,
}

/// One layer of a network description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution.
    Conv {
        /// Layer name (unique within the network).
        name: String,
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Whether the layer has a bias vector.
        bias: bool,
    },
    /// Fully-connected layer.
    Linear {
        /// Layer name.
        name: String,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether the layer has a bias vector.
        bias: bool,
    },
    /// Batch normalization (folded into the preceding conv for CiM
    /// deployment; parameters are counted but not mapped).
    BatchNorm {
        /// Normalized channels.
        channels: usize,
    },
    /// Elementwise activation.
    Activation(ActKind),
    /// Square max pooling.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `(N, C)`.
    GlobalAvgPool,
    /// YOLOv2 passthrough/reorg concatenation: appends `extra_ch` channels
    /// (a space-to-depth reorganization of an earlier feature map) to the
    /// current map. Parameter-free in this IR (the reference 512->64
    /// squeeze conv is ~0.03 M parameters, negligible at YOLO scale).
    Passthrough {
        /// Channels appended by the reorg path.
        extra_ch: usize,
    },
    /// The output of the layer `blocks_back` positions earlier (or the
    /// network input when `blocks_back == index + 1`) is added elementwise
    /// (ResNet skip connection), optionally through a 1x1 projection conv
    /// (the strided shortcut of stage-entry blocks).
    ResidualAdd {
        /// How many layers back the skip source sits.
        blocks_back: usize,
        /// Optional projection applied to the skip source.
        projection: Option<ProjectionSpec>,
    },
}

/// A 1x1 projection conv (+ folded batch-norm) on a ResNet skip path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionSpec {
    /// Layer name.
    pub name: String,
    /// Input channels (channels of the skip source).
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Stride.
    pub stride: usize,
}

impl ProjectionSpec {
    /// Parameters: 1x1 conv weights plus batch-norm scale/shift.
    pub fn param_count(&self) -> u64 {
        (self.in_ch * self.out_ch + 2 * self.out_ch) as u64
    }
}

impl LayerSpec {
    /// Number of scalar parameters.
    pub fn param_count(&self) -> u64 {
        match self {
            LayerSpec::Conv {
                in_ch,
                out_ch,
                kernel,
                bias,
                ..
            } => (out_ch * in_ch * kernel * kernel + if *bias { *out_ch } else { 0 }) as u64,
            LayerSpec::ResidualAdd {
                projection: Some(p),
                ..
            } => p.param_count(),
            LayerSpec::Linear {
                in_features,
                out_features,
                bias,
                ..
            } => (out_features * in_features + if *bias { *out_features } else { 0 }) as u64,
            LayerSpec::BatchNorm { channels } => 2 * *channels as u64,
            _ => 0,
        }
    }

    /// Whether this layer's weights are mapped onto CiM arrays
    /// (convs, linears and skip projections; batch-norm folds away).
    pub fn is_cim_layer(&self) -> bool {
        matches!(
            self,
            LayerSpec::Conv { .. }
                | LayerSpec::Linear { .. }
                | LayerSpec::ResidualAdd {
                    projection: Some(_),
                    ..
                }
        )
    }
}

/// Feature-map shape `(channels, height, width)`.
pub type Shape = (usize, usize, usize);

/// Per-layer analysis produced by [`NetworkDesc::analyze`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Index in the layer list.
    pub index: usize,
    /// Human-readable description.
    pub name: String,
    /// Scalar parameters.
    pub params: u64,
    /// Multiply-accumulate operations for one inference.
    pub macs: u64,
    /// Input feature-map shape.
    pub in_shape: Shape,
    /// Output feature-map shape (`(features, 1, 1)` after flatten/linear).
    pub out_shape: Shape,
    /// For CiM layers: the lowered matrix `(rows, cols)` = `(in_ch*k*k,
    /// out_ch)` and the number of matrix-vector products per inference
    /// (output positions).
    pub lowered: Option<LoweredMatrix>,
}

/// The im2col-lowered matrix geometry of a CiM-mapped layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredMatrix {
    /// Dot-product depth (`in_ch * k * k` for conv, `in_features` for FC).
    pub ins: usize,
    /// Output neurons (`out_ch` or `out_features`).
    pub outs: usize,
    /// Matrix-vector products per inference (`OH*OW` positions, 1 for FC).
    pub mvms: u64,
}

/// Error produced when a network description is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkError {
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network error: {}", self.msg)
    }
}

impl std::error::Error for NetworkError {}

/// A complete network description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkDesc {
    /// Network name (e.g. `"darknet19-yolo"`).
    pub name: String,
    /// Input shape `(C, H, W)`.
    pub input: Shape,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkDesc {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        NetworkDesc {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Parameters of CiM-mapped layers only (what must live in ROM/SRAM
    /// CiM arrays; batch-norm folds into conv weights).
    pub fn cim_param_count(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_cim_layer())
            .map(|l| l.param_count())
            .sum()
    }

    /// Storage bits of CiM-mapped parameters at `bits` precision.
    pub fn weight_bits(&self, bits: u8) -> u64 {
        self.cim_param_count() * bits as u64
    }

    /// Total MACs per inference.
    pub fn macs(&self) -> Result<u64, NetworkError> {
        Ok(self.analyze()?.iter().map(|r| r.macs).sum())
    }

    /// Propagates shapes through the network, returning per-layer reports.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if shapes are inconsistent (channel
    /// mismatches, windows that do not fit, bad residual targets).
    pub fn analyze(&self) -> Result<Vec<LayerReport>, NetworkError> {
        let mut reports: Vec<LayerReport> = Vec::with_capacity(self.layers.len());
        let mut shape = self.input;
        let mut flattened = false;
        for (index, layer) in self.layers.iter().enumerate() {
            let in_shape = shape;
            let (macs, lowered, name): (u64, Option<LoweredMatrix>, String) = match layer {
                LayerSpec::Conv {
                    name,
                    in_ch,
                    out_ch,
                    kernel,
                    stride,
                    padding,
                    ..
                } => {
                    if flattened {
                        return Err(NetworkError {
                            msg: format!("conv {name} after flatten"),
                        });
                    }
                    if shape.0 != *in_ch {
                        return Err(NetworkError {
                            msg: format!(
                                "conv {name}: expected {in_ch} input channels, got {}",
                                shape.0
                            ),
                        });
                    }
                    let eff_h = shape.1 + 2 * padding;
                    let eff_w = shape.2 + 2 * padding;
                    if eff_h < *kernel || eff_w < *kernel {
                        return Err(NetworkError {
                            msg: format!("conv {name}: kernel does not fit input"),
                        });
                    }
                    let oh = (eff_h - kernel) / stride + 1;
                    let ow = (eff_w - kernel) / stride + 1;
                    shape = (*out_ch, oh, ow);
                    let ins = in_ch * kernel * kernel;
                    let macs = (out_ch * ins) as u64 * (oh * ow) as u64;
                    (
                        macs,
                        Some(LoweredMatrix {
                            ins,
                            outs: *out_ch,
                            mvms: (oh * ow) as u64,
                        }),
                        format!("{name} (conv {in_ch}x{kernel}x{kernel}->{out_ch})"),
                    )
                }
                LayerSpec::Linear {
                    name,
                    in_features,
                    out_features,
                    ..
                } => {
                    let feat = shape.0 * shape.1 * shape.2;
                    if feat != *in_features {
                        return Err(NetworkError {
                            msg: format!(
                                "linear {name}: expected {in_features} features, got {feat}"
                            ),
                        });
                    }
                    flattened = true;
                    shape = (*out_features, 1, 1);
                    (
                        (*in_features * *out_features) as u64,
                        Some(LoweredMatrix {
                            ins: *in_features,
                            outs: *out_features,
                            mvms: 1,
                        }),
                        format!("{name} (fc {in_features}->{out_features})"),
                    )
                }
                LayerSpec::BatchNorm { channels } => {
                    if shape.0 != *channels {
                        return Err(NetworkError {
                            msg: format!(
                                "batchnorm: expected {channels} channels, got {}",
                                shape.0
                            ),
                        });
                    }
                    (0, None, format!("bn({channels})"))
                }
                LayerSpec::Activation(k) => (0, None, format!("act({k:?})")),
                LayerSpec::MaxPool { kernel, stride } => {
                    if shape.1 < *kernel || shape.2 < *kernel {
                        return Err(NetworkError {
                            msg: "maxpool window does not fit".to_string(),
                        });
                    }
                    shape = (
                        shape.0,
                        (shape.1 - kernel) / stride + 1,
                        (shape.2 - kernel) / stride + 1,
                    );
                    (0, None, format!("maxpool({kernel}/{stride})"))
                }
                LayerSpec::GlobalAvgPool => {
                    shape = (shape.0, 1, 1);
                    (0, None, "gap".to_string())
                }
                LayerSpec::Passthrough { extra_ch } => {
                    shape = (shape.0 + extra_ch, shape.1, shape.2);
                    (0, None, format!("passthrough(+{extra_ch})"))
                }
                LayerSpec::ResidualAdd {
                    blocks_back,
                    projection,
                } => {
                    if *blocks_back == 0 || *blocks_back > index + 1 {
                        return Err(NetworkError {
                            msg: format!("residual add at {index}: bad target {blocks_back}"),
                        });
                    }
                    let src_shape = if *blocks_back == index + 1 {
                        self.input
                    } else {
                        reports[index - blocks_back].out_shape
                    };
                    match projection {
                        None => {
                            if src_shape != shape {
                                return Err(NetworkError {
                                    msg: format!(
                                        "residual add at {index}: shape {src_shape:?} vs {shape:?}"
                                    ),
                                });
                            }
                            (0, None, "residual-add".to_string())
                        }
                        Some(p) => {
                            if src_shape.0 != p.in_ch {
                                return Err(NetworkError {
                                    msg: format!(
                                        "projection {}: expected {} channels, got {}",
                                        p.name, p.in_ch, src_shape.0
                                    ),
                                });
                            }
                            let oh = (src_shape.1 - 1) / p.stride + 1;
                            let ow = (src_shape.2 - 1) / p.stride + 1;
                            if (p.out_ch, oh, ow) != shape {
                                return Err(NetworkError {
                                    msg: format!(
                                        "projection {}: produces {:?}, main path {:?}",
                                        p.name,
                                        (p.out_ch, oh, ow),
                                        shape
                                    ),
                                });
                            }
                            let macs = (p.in_ch * p.out_ch) as u64 * (oh * ow) as u64;
                            (
                                macs,
                                Some(LoweredMatrix {
                                    ins: p.in_ch,
                                    outs: p.out_ch,
                                    mvms: (oh * ow) as u64,
                                }),
                                format!("{} (proj {}->{})", p.name, p.in_ch, p.out_ch),
                            )
                        }
                    }
                }
            };
            reports.push(LayerReport {
                index,
                name,
                params: layer.param_count(),
                macs,
                in_shape,
                out_shape: shape,
                lowered,
            });
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, i: usize, o: usize, k: usize, s: usize, p: usize) -> LayerSpec {
        LayerSpec::Conv {
            name: name.into(),
            in_ch: i,
            out_ch: o,
            kernel: k,
            stride: s,
            padding: p,
            bias: false,
        }
    }

    #[test]
    fn param_counting() {
        let c = conv("c", 3, 16, 3, 1, 1);
        assert_eq!(c.param_count(), 3 * 16 * 9);
        let l = LayerSpec::Linear {
            name: "fc".into(),
            in_features: 10,
            out_features: 4,
            bias: true,
        };
        assert_eq!(l.param_count(), 44);
        assert_eq!(LayerSpec::BatchNorm { channels: 8 }.param_count(), 16);
        assert_eq!(LayerSpec::GlobalAvgPool.param_count(), 0);
    }

    #[test]
    fn shape_propagation_and_macs() {
        let mut net = NetworkDesc::new("t", (3, 8, 8));
        net.layers.push(conv("c1", 3, 4, 3, 1, 1));
        net.layers.push(LayerSpec::MaxPool {
            kernel: 2,
            stride: 2,
        });
        net.layers.push(LayerSpec::GlobalAvgPool);
        net.layers.push(LayerSpec::Linear {
            name: "fc".into(),
            in_features: 4,
            out_features: 2,
            bias: false,
        });
        let reports = net.analyze().unwrap();
        assert_eq!(reports[0].out_shape, (4, 8, 8));
        assert_eq!(reports[0].macs, (4 * 27 * 64) as u64);
        assert_eq!(reports[1].out_shape, (4, 4, 4));
        assert_eq!(reports[2].out_shape, (4, 1, 1));
        assert_eq!(reports[3].out_shape, (2, 1, 1));
        assert_eq!(net.macs().unwrap(), (4 * 27 * 64 + 8) as u64);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut net = NetworkDesc::new("bad", (3, 8, 8));
        net.layers.push(conv("c1", 4, 8, 3, 1, 1));
        assert!(net.analyze().is_err());
    }

    #[test]
    fn residual_shape_check() {
        let mut net = NetworkDesc::new("res", (4, 8, 8));
        net.layers.push(conv("c1", 4, 4, 3, 1, 1));
        net.layers.push(conv("c2", 4, 4, 3, 1, 1));
        net.layers.push(LayerSpec::ResidualAdd {
            blocks_back: 2,
            projection: None,
        });
        assert!(net.analyze().is_ok());
        // Mismatched skip shapes are rejected.
        let mut bad = NetworkDesc::new("res2", (4, 8, 8));
        bad.layers.push(conv("c1", 4, 8, 3, 1, 1));
        bad.layers.push(LayerSpec::ResidualAdd {
            blocks_back: 2, // points at the network input: 4ch vs 8ch
            projection: None,
        });
        assert!(bad.analyze().is_err());
    }

    #[test]
    fn projection_shortcut_counts_params_and_macs() {
        let mut net = NetworkDesc::new("proj", (4, 8, 8));
        net.layers.push(conv("c1", 4, 8, 3, 2, 1)); // (8, 4, 4)
        net.layers.push(LayerSpec::ResidualAdd {
            blocks_back: 2,
            projection: Some(ProjectionSpec {
                name: "down".into(),
                in_ch: 4,
                out_ch: 8,
                stride: 2,
            }),
        });
        let r = net.analyze().unwrap();
        assert_eq!(r[1].out_shape, (8, 4, 4));
        assert_eq!(r[1].macs, (4 * 8 * 16) as u64);
        assert_eq!(net.param_count(), (8 * 4 * 9) as u64 + (4 * 8 + 16) as u64);
    }

    #[test]
    fn lowered_geometry() {
        let mut net = NetworkDesc::new("low", (16, 10, 10));
        net.layers.push(conv("c", 16, 32, 3, 1, 1));
        let r = net.analyze().unwrap();
        let m = r[0].lowered.unwrap();
        assert_eq!(m.ins, 144);
        assert_eq!(m.outs, 32);
        assert_eq!(m.mvms, 100);
    }
}
