//! Full-network deployment onto the CiM functional simulator (Fig. 9's
//! logical flow, end to end).
//!
//! A trained [`TinyCnn`] is *deployed*: every trunk convolution is
//! quantized per-channel to 8 bits and mask-programmed into ROM-CiM
//! subarrays; ReBranch residual convs and the classifier go into SRAM-CiM;
//! activation functions, pooling and the residual merges run digitally
//! through the cache (exactly the split of Fig. 9).
//!
//! # Lowering onto the graph executor
//!
//! Since the graph-compiler refactor, deployment is a **thin lowering**
//! into the same [`ExecPlan`] that executes arbitrary
//! [`yoloc_models::NetworkDesc`] graphs (see [`crate::compiler`]): each
//! block becomes a CiM conv or ReBranch group op plus its digital
//! residual/activation/pooling ops, and the classifier a CiM linear op.
//! The pre-refactor direct walk is kept as [`legacy::LegacyDeployedModel`]
//! — the golden reference the parity tests pin the executor against,
//! bit-for-bit in both logits and [`DeployStats`], serial and batched.
//!
//! # Serial vs batched inference
//!
//! [`CimDeployedModel::infer`] walks the plan once for a whole
//! `(N, C, H, W)` batch on the calling thread.
//! [`CimDeployedModel::infer_batch`] fans the `N` samples across a
//! persistent [`WorkerPool`], giving each sample its own deterministic RNG
//! stream (derived from a base seed and the sample index by
//! [`sample_stream_seed`]), so its output is bit-identical across worker
//! counts — and, on the default noiseless datapath, bit-identical to the
//! serial path (tests pin both).

use rand::Rng;

use crate::compiler::{gap, ExecPlan, ExecutionReport, MemDomain, MemoryParams, OpSource, PlanOp};
pub use crate::engine::sample_stream_seed;
use crate::engine::WorkerPool;
use crate::qconv::{CimConv2d, CimLinear};
use crate::tiny_models::{ConvUnit, TinyCnn};
use yoloc_cim::macro_model::{MacroParams, MvmStats};
use yoloc_models::ActKind;
use yoloc_tensor::layers::MaxPool2d;
use yoloc_tensor::ops::conv2d_reference;
use yoloc_tensor::{Layer, Tensor};

/// Aggregate execution statistics of a deployed inference, split by
/// memory domain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeployStats {
    /// ROM-CiM macro activity (trunk + branch projections).
    pub rom: MvmStats,
    /// SRAM-CiM macro activity (residual convs + classifier).
    pub sram: MvmStats,
}

impl DeployStats {
    /// Accumulates another execution's statistics into this one (used to
    /// reduce per-sample stats from the batched engine).
    pub fn merge(&mut self, other: &DeployStats) {
        self.rom.merge(&other.rom);
        self.sram.merge(&other.sram);
    }

    /// Total energy across both domains, pJ.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.rom.energy_pj + self.sram.energy_pj
    }
}

impl From<&ExecutionReport> for DeployStats {
    fn from(r: &ExecutionReport) -> Self {
        DeployStats {
            rom: r.rom,
            sram: r.sram,
        }
    }
}

/// Runs the software reference of one block, returning the block output
/// so deployment can calibrate activations.
fn software_block(x: &Tensor, unit: &ConvUnit, pool: bool, skip: bool) -> Tensor {
    let conv_out = match unit {
        ConvUnit::Plain(c) => conv2d_reference(x, &c.weight.value, None, 1, 1),
        ConvUnit::ReBranch(rb) => {
            let trunk = conv2d_reference(x, &rb.trunk().weight.value, None, 1, 1);
            let (w1, wb, w2) = rb.branch_weights();
            let c = conv2d_reference(x, w1, None, 1, 0);
            let r = conv2d_reference(&c, wb, None, 1, 1);
            let d = conv2d_reference(&r, w2, None, 1, 0);
            trunk.add(&d)
        }
        ConvUnit::Spwd(s) => {
            let a = conv2d_reference(x, &s.frozen.weight.value, None, 1, 1);
            let b = conv2d_reference(x, &s.deco.weight.value, None, 1, 1);
            a.add(&b)
        }
    };
    let merged = if skip { conv_out.add(x) } else { conv_out };
    let act = merged.map(|v| v.max(0.0));
    if pool {
        MaxPool2d::new(2, 2).forward(&act, false)
    } else {
        act
    }
}

/// A [`TinyCnn`] compiled onto CiM macros, lowered onto the graph
/// executor's [`ExecPlan`].
pub struct CimDeployedModel {
    plan: ExecPlan,
    classes: usize,
}

impl CimDeployedModel {
    /// Compiles a trained model onto CiM macros, calibrating every
    /// layer's activation quantization on `calibration` images.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use yoloc_cim::MacroParams;
    /// use yoloc_core::pipeline::CimDeployedModel;
    /// use yoloc_core::tiny_models::{Family, TinyCnn};
    /// use yoloc_tensor::Tensor;
    ///
    /// let mut rng = StdRng::seed_from_u64(0);
    /// let model = TinyCnn::plain(Family::Vgg, 3, &[4], 3, &mut rng);
    /// let calibration = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
    /// let deployed = CimDeployedModel::deploy(
    ///     &model,
    ///     &calibration,
    ///     MacroParams::rom_paper(),
    ///     MacroParams::sram_paper(),
    /// );
    /// assert_eq!(deployed.classes(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is not a `(N, C, H, W)` batch matching the
    /// model input.
    pub fn deploy(
        model: &TinyCnn,
        calibration: &Tensor,
        rom: MacroParams,
        sram: MacroParams,
    ) -> Self {
        Self::deploy_with(model, calibration, rom, sram, MemoryParams::paper_default())
    }

    /// [`CimDeployedModel::deploy`] with an explicit memory hierarchy for
    /// the live traffic accounting of [`CimDeployedModel::infer_report`].
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is not a `(N, C, H, W)` batch matching the
    /// model input.
    pub fn deploy_with(
        model: &TinyCnn,
        calibration: &Tensor,
        rom: MacroParams,
        sram: MacroParams,
        memory: MemoryParams,
    ) -> Self {
        assert_eq!(calibration.ndim(), 4, "calibration must be (N, C, H, W)");
        let cal_n = calibration.shape()[0].max(1);
        let mut plan = ExecPlan::new(memory);
        let mut h = calibration.clone();
        // Per-sample output footprint of the current block (conv keeps
        // the spatial dims: stride 1, pad 1, 3x3).
        let mut spatial = (calibration.shape()[2], calibration.shape()[3]);
        let mut last_op: Option<usize> = None;
        for b in &model.blocks {
            // Where the block input comes from (the residual skip source).
            let block_input = match last_op {
                Some(i) => OpSource::Op(i),
                None => OpSource::Input,
            };
            let out_ch = match &b.unit {
                ConvUnit::Plain(c) => c.weight.value.shape()[0],
                ConvUnit::ReBranch(rb) => rb.trunk().weight.value.shape()[0],
                ConvUnit::Spwd(s) => s.frozen.weight.value.shape()[0],
            };
            let map_elems = out_ch * spatial.0 * spatial.1;
            let op = match &b.unit {
                ConvUnit::Plain(c) => PlanOp::Conv {
                    conv: CimConv2d::compile(&c.weight.value, 1, 1, &[&h], rom),
                    domain: MemDomain::Rom,
                    epilogue: Vec::new(),
                },
                ConvUnit::ReBranch(rb) => {
                    let (w1, wb, w2) = rb.branch_weights();
                    // Calibrate each stage on its actual software input.
                    let c_out = conv2d_reference(&h, w1, None, 1, 0);
                    let r_out = conv2d_reference(&c_out, wb, None, 1, 1);
                    PlanOp::ReBranch {
                        trunk: CimConv2d::compile(&rb.trunk().weight.value, 1, 1, &[&h], rom),
                        compress: CimConv2d::compile(w1, 1, 0, &[&h], rom),
                        res_conv: CimConv2d::compile(wb, 1, 1, &[&c_out], sram),
                        decompress: CimConv2d::compile(w2, 1, 0, &[&r_out], rom),
                        epilogue: Vec::new(),
                    }
                }
                ConvUnit::Spwd(s) => PlanOp::Conv {
                    // Deploy the *effective* conv (trunk + decoration) as
                    // a single ROM matrix.
                    conv: CimConv2d::compile(
                        &s.frozen.weight.value.add(&s.deco.weight.value),
                        1,
                        1,
                        &[&h],
                        rom,
                    ),
                    domain: MemDomain::Rom,
                    epilogue: Vec::new(),
                },
            };
            plan.push(op, map_elems);
            if b.skip {
                plan.push(
                    PlanOp::ResidualAdd {
                        source: block_input,
                        projection: None,
                    },
                    map_elems,
                );
            }
            plan.push(PlanOp::Activation(ActKind::Relu), map_elems);
            let pool = b.pool_enabled();
            if pool {
                spatial = (spatial.0 / 2, spatial.1 / 2);
                plan.push(
                    PlanOp::MaxPool {
                        kernel: 2,
                        stride: 2,
                    },
                    out_ch * spatial.0 * spatial.1,
                );
            }
            last_op = Some(plan.len() - 1);
            h = software_block(&h, &b.unit, pool, b.skip);
        }
        // Classifier onto SRAM-CiM.
        let feats = gap(&h);
        plan.push(PlanOp::GlobalAvgPool, feats.data().len() / cal_n);
        let w = &model.classifier.weight.value;
        let bias = model
            .classifier
            .bias
            .as_ref()
            .map(|b| b.value.data().to_vec());
        let linear = CimLinear::compile(w, bias.as_deref(), &[&feats], sram);
        let classes = linear.outs();
        plan.push(
            PlanOp::Linear {
                linear,
                domain: MemDomain::Sram,
                epilogue: Vec::new(),
            },
            classes,
        );
        CimDeployedModel { plan, classes }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Access to the lowered execution plan (op count, per-domain
    /// subarray totals).
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Enables or disables the popcount fast path on every programmed
    /// macro (trunk and branch convs plus the classifier); see
    /// [`yoloc_cim::macro_model::RomMvm::set_fast_path`]. Disabled means
    /// every MVM runs the cell-accurate analog reference path — the
    /// pre-engine behaviour, kept as the serial baseline for benchmarks.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.plan.set_fast_path(enabled);
    }

    /// Runs inference through the analog datapath; returns logits and the
    /// per-domain macro statistics.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use yoloc_cim::MacroParams;
    /// use yoloc_core::pipeline::CimDeployedModel;
    /// use yoloc_core::tiny_models::{Family, TinyCnn};
    /// use yoloc_tensor::Tensor;
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let model = TinyCnn::plain(Family::Vgg, 3, &[4], 2, &mut rng);
    /// let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
    /// let deployed = CimDeployedModel::deploy(
    ///     &model,
    ///     &x,
    ///     MacroParams::rom_paper(),
    ///     MacroParams::sram_paper(),
    /// );
    /// let (logits, stats) = deployed.infer(&x, &mut rng);
    /// assert_eq!(logits.shape(), &[1, 2]);
    /// assert!(stats.rom.energy_pj > 0.0);
    /// ```
    pub fn infer<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, DeployStats) {
        let (logits, report) = self.plan.execute(x, rng);
        (logits, DeployStats::from(&report))
    }

    /// Like [`CimDeployedModel::infer`], but returns the full live
    /// [`ExecutionReport`] — macro statistics *plus* the measured
    /// memory-hierarchy energy breakdown of this inference.
    pub fn infer_report<R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        rng: &mut R,
    ) -> (Tensor, ExecutionReport) {
        self.plan.execute(x, rng)
    }

    /// Runs inference on a `(N, C, H, W)` batch by fanning the samples
    /// across a persistent [`WorkerPool`], one deterministic RNG stream
    /// per sample (see [`sample_stream_seed`]).
    ///
    /// Guarantees, both pinned by tests:
    ///
    /// * the logits are **bit-identical for any worker count** (sample
    ///   `i`'s stream depends only on `(seed, i)`, and
    ///   [`WorkerPool::run`] returns results in input order);
    /// * on a noiseless datapath (the paper's design point) the logits
    ///   are **bit-identical to the serial [`CimDeployedModel::infer`]**,
    ///   which consumes no randomness there.
    ///
    /// Statistics event counters are exact; the floating-point energy and
    /// latency fields can differ from the serial path only by f64
    /// summation order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use yoloc_cim::MacroParams;
    /// use yoloc_core::engine::WorkerPool;
    /// use yoloc_core::pipeline::CimDeployedModel;
    /// use yoloc_core::tiny_models::{Family, TinyCnn};
    /// use yoloc_tensor::Tensor;
    ///
    /// let mut rng = StdRng::seed_from_u64(2);
    /// let model = TinyCnn::plain(Family::Vgg, 3, &[4], 2, &mut rng);
    /// let x = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
    /// let deployed = CimDeployedModel::deploy(
    ///     &model,
    ///     &x,
    ///     MacroParams::rom_paper(),
    ///     MacroParams::sram_paper(),
    /// );
    /// let (serial, _) = deployed.infer(&x, &mut rng);
    /// let (batched, _) = WorkerPool::with(2, |pool| deployed.infer_batch(&x, 7, pool));
    /// assert_eq!(serial.data(), batched.data());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-4.
    pub fn infer_batch<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, DeployStats) {
        let (logits, report) = self.plan.execute_batch(x, seed, pool);
        (logits, DeployStats::from(&report))
    }
}

pub mod legacy {
    //! The pre-compiler `TinyCnn` deployment: a hand-written walk over
    //! per-block deployed units. Kept verbatim as the **golden reference**
    //! the graph executor's lowering is pinned against — the parity tests
    //! require bit-identical logits and [`DeployStats`] on the noiseless
    //! datapath, for both serial and batched inference.

    use super::*;

    /// A conv deployed on a macro, with where it physically lives.
    #[allow(clippy::large_enum_variant)] // variants are few and long-lived
    enum DeployedUnit {
        Plain {
            conv: CimConv2d,
        },
        ReBranch {
            trunk: CimConv2d,
            compress: CimConv2d,
            res_conv: CimConv2d,
            decompress: CimConv2d,
        },
    }

    struct DeployedBlock {
        unit: DeployedUnit,
        pool: bool,
        skip: bool,
    }

    /// A [`TinyCnn`] compiled onto CiM macros via the legacy direct walk.
    pub struct LegacyDeployedModel {
        blocks: Vec<DeployedBlock>,
        classifier: CimLinear,
        classes: usize,
    }

    impl LegacyDeployedModel {
        /// Legacy counterpart of [`CimDeployedModel::deploy`].
        ///
        /// # Panics
        ///
        /// Panics if `calibration` is not a `(N, C, H, W)` batch matching
        /// the model input.
        pub fn deploy(
            model: &TinyCnn,
            calibration: &Tensor,
            rom: MacroParams,
            sram: MacroParams,
        ) -> Self {
            assert_eq!(calibration.ndim(), 4, "calibration must be (N, C, H, W)");
            let mut blocks = Vec::new();
            let mut h = calibration.clone();
            for b in &model.blocks {
                let unit = match &b.unit {
                    ConvUnit::Plain(c) => DeployedUnit::Plain {
                        conv: CimConv2d::compile(&c.weight.value, 1, 1, &[&h], rom),
                    },
                    ConvUnit::ReBranch(rb) => {
                        let (w1, wb, w2) = rb.branch_weights();
                        let c_out = conv2d_reference(&h, w1, None, 1, 0);
                        let r_out = conv2d_reference(&c_out, wb, None, 1, 1);
                        DeployedUnit::ReBranch {
                            trunk: CimConv2d::compile(&rb.trunk().weight.value, 1, 1, &[&h], rom),
                            compress: CimConv2d::compile(w1, 1, 0, &[&h], rom),
                            res_conv: CimConv2d::compile(wb, 1, 1, &[&c_out], sram),
                            decompress: CimConv2d::compile(w2, 1, 0, &[&r_out], rom),
                        }
                    }
                    ConvUnit::Spwd(s) => DeployedUnit::Plain {
                        conv: CimConv2d::compile(
                            &s.frozen.weight.value.add(&s.deco.weight.value),
                            1,
                            1,
                            &[&h],
                            rom,
                        ),
                    },
                };
                let pool = b.pool_enabled();
                blocks.push(DeployedBlock {
                    unit,
                    pool,
                    skip: b.skip,
                });
                h = software_block(&h, &b.unit, pool, b.skip);
            }
            let feats = gap(&h);
            let w = &model.classifier.weight.value;
            let bias = model
                .classifier
                .bias
                .as_ref()
                .map(|b| b.value.data().to_vec());
            let classifier = CimLinear::compile(w, bias.as_deref(), &[&feats], sram);
            let classes = classifier.outs();
            LegacyDeployedModel {
                blocks,
                classifier,
                classes,
            }
        }

        /// Legacy counterpart of [`CimDeployedModel::infer`].
        ///
        /// Statistics fold block-locally first (from zero, in stage
        /// order), then merge into the running totals — the same
        /// per-op-then-reduce shape the graph executor's `finalize` uses,
        /// so the two walks stay bit-identical down to f64 summation
        /// order.
        pub fn infer<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, DeployStats) {
            let mut stats = DeployStats::default();
            let mut h = x.clone();
            for b in &self.blocks {
                let mut block = DeployStats::default();
                let conv_out = match &b.unit {
                    DeployedUnit::Plain { conv } => {
                        let (y, s) = conv.forward(&h, rng);
                        block.rom.merge(&s);
                        y
                    }
                    DeployedUnit::ReBranch {
                        trunk,
                        compress,
                        res_conv,
                        decompress,
                    } => {
                        let (t, s1) = trunk.forward(&h, rng);
                        let (c, s2) = compress.forward(&h, rng);
                        let (r, s3) = res_conv.forward(&c, rng);
                        let (d, s4) = decompress.forward(&r, rng);
                        block.rom.merge(&s1);
                        block.rom.merge(&s2);
                        block.sram.merge(&s3);
                        block.rom.merge(&s4);
                        t.add(&d)
                    }
                };
                stats.merge(&block);
                let merged = if b.skip { conv_out.add(&h) } else { conv_out };
                let act = merged.map(|v| v.max(0.0));
                h = if b.pool {
                    MaxPool2d::new(2, 2).forward(&act, false)
                } else {
                    act
                };
            }
            let feats = gap(&h);
            let (logits, s) = self.classifier.forward(&feats, rng);
            stats.sram.merge(&s);
            (logits, stats)
        }

        /// Legacy counterpart of [`CimDeployedModel::infer_batch`].
        ///
        /// # Panics
        ///
        /// Panics if `x` is not rank-4.
        pub fn infer_batch<'env>(
            &'env self,
            x: &Tensor,
            seed: u64,
            pool: &WorkerPool<'env>,
        ) -> (Tensor, DeployStats) {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            assert_eq!(x.ndim(), 4, "input must be (N, C, H, W)");
            let n = x.shape()[0];
            let sample_shape = [1, x.shape()[1], x.shape()[2], x.shape()[3]];
            let sample_len = x.shape()[1] * x.shape()[2] * x.shape()[3];
            let jobs: Vec<_> = (0..n)
                .map(|i| {
                    let sample = Tensor::from_vec(
                        x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                        &sample_shape,
                    )
                    .expect("sample slice matches shape");
                    move || {
                        let mut rng = StdRng::seed_from_u64(sample_stream_seed(seed, i));
                        self.infer(&sample, &mut rng)
                    }
                })
                .collect();
            let results = pool.run(jobs);
            let mut logits = Tensor::zeros(&[n, self.classes]);
            let mut stats = DeployStats::default();
            for (i, (sample_logits, sample_stats)) in results.into_iter().enumerate() {
                logits.data_mut()[i * self.classes..(i + 1) * self.classes]
                    .copy_from_slice(sample_logits.data());
                stats.merge(&sample_stats);
            }
            (logits, stats)
        }
    }
}

/// Compares software vs CiM-deployed accuracy over `n` samples of `task`,
/// returning `(software_acc, cim_acc, stats_of_one_batch)`.
pub fn accuracy_software_vs_cim<R: Rng + ?Sized>(
    model: &mut TinyCnn,
    deployed: &CimDeployedModel,
    task: &yoloc_data::classification::SyntheticTask,
    n: usize,
    rng: &mut R,
) -> (f32, f32, DeployStats) {
    let (x, y) = task.batch(n, rng);
    let sw_logits = model.forward(&x, false);
    let sw_acc = yoloc_tensor::loss::accuracy(&sw_logits, &y);
    let (cim_logits, stats) = deployed.infer(&x, rng);
    let cim_acc = yoloc_tensor::loss::accuracy(&cim_logits, &y);
    (sw_acc, cim_acc, stats)
}

/// Batched counterpart of [`accuracy_software_vs_cim`]: samples `n` images
/// of `task` (deterministically from `seed`), evaluates the software model
/// serially and the deployed model through
/// [`CimDeployedModel::infer_batch`] on `pool`, returning
/// `(software_acc, cim_acc, stats_of_one_batch)`.
pub fn accuracy_software_vs_cim_batch<'env>(
    model: &mut TinyCnn,
    deployed: &'env CimDeployedModel,
    task: &yoloc_data::classification::SyntheticTask,
    n: usize,
    seed: u64,
    pool: &WorkerPool<'env>,
) -> (f32, f32, DeployStats) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let (x, y) = task.batch(n, &mut rng);
    let sw_logits = model.forward(&x, false);
    let sw_acc = yoloc_tensor::loss::accuracy(&sw_logits, &y);
    let (cim_logits, stats) = deployed.infer_batch(&x, seed, pool);
    let cim_acc = yoloc_tensor::loss::accuracy(&cim_logits, &y);
    (sw_acc, cim_acc, stats)
}

#[cfg(test)]
mod tests {
    use super::legacy::LegacyDeployedModel;
    use super::*;
    use crate::strategies::{pretrain_base, TrainConfig};
    use crate::tiny_models::Family;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_data::classification::TransferSuite;

    fn small_params() -> (MacroParams, MacroParams) {
        (MacroParams::rom_paper(), MacroParams::sram_paper())
    }

    #[test]
    fn deployed_model_matches_software_logits() {
        let suite = TransferSuite::new(5);
        let mut model = pretrain_base(
            Family::Vgg,
            &[8, 10],
            &suite.pretrain,
            TrainConfig {
                steps: 60,
                batch: 12,
                lr: 0.08,
                momentum: 0.9,
            },
            5,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let (cal, _) = suite.pretrain.batch(8, &mut rng);
        let (rom, sram) = small_params();
        let deployed = CimDeployedModel::deploy(&model, &cal, rom, sram);
        let (x, _) = suite.pretrain.batch(4, &mut rng);
        let sw = model.forward(&x, false);
        let (cim, stats) = deployed.infer(&x, &mut rng);
        // Quantized inference tracks software logits closely.
        let mag = sw.abs_max().max(1e-6);
        for (a, b) in cim.data().iter().zip(sw.data()) {
            assert!((a - b).abs() / mag < 0.12, "cim {a} vs sw {b}");
        }
        assert!(stats.rom.energy_pj > 0.0);
        assert!(stats.sram.energy_pj > 0.0);
    }

    #[test]
    fn deployed_accuracy_close_to_software() {
        let suite = TransferSuite::new(9);
        let mut model = pretrain_base(
            Family::Vgg,
            &[8, 10],
            &suite.pretrain,
            TrainConfig {
                steps: 120,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
            },
            9,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let (cal, _) = suite.pretrain.batch(8, &mut rng);
        let (rom, sram) = small_params();
        let deployed = CimDeployedModel::deploy(&model, &cal, rom, sram);
        let (sw, cim, _) =
            accuracy_software_vs_cim(&mut model, &deployed, &suite.pretrain, 80, &mut rng);
        // Paper: -0.5% ~ +0.2% mAP change; at smoke scale allow a few
        // percentage points either way.
        assert!((sw - cim).abs() < 0.08, "software {sw} vs CiM {cim}");
    }

    /// An untrained model deployed on a small input — enough to exercise
    /// the full datapath without paying for training.
    fn quick_deployment(
        rom: MacroParams,
        sram: MacroParams,
        batch: usize,
    ) -> (CimDeployedModel, Tensor) {
        let (model, x) = quick_model(batch);
        let deployed = CimDeployedModel::deploy(&model, &x, rom, sram);
        (deployed, x)
    }

    fn quick_model(batch: usize) -> (TinyCnn, Tensor) {
        let mut rng = StdRng::seed_from_u64(20);
        let model = TinyCnn::plain(Family::Vgg, 3, &[6, 8], 4, &mut rng);
        let x = Tensor::rand_uniform(&[batch, 3, 12, 12], 0.0, 1.0, &mut rng);
        (model, x)
    }

    #[test]
    fn executor_lowering_bit_identical_to_legacy_serial() {
        // THE parity pin of the graph-compiler refactor: the TinyCnn
        // lowering onto the ExecPlan must reproduce the legacy direct
        // walk bit-for-bit — logits AND stats — on the noiseless
        // datapath.
        let (rom, sram) = small_params();
        let (model, x) = quick_model(5);
        let new = CimDeployedModel::deploy(&model, &x, rom, sram);
        let old = LegacyDeployedModel::deploy(&model, &x, rom, sram);
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let (logits_new, stats_new) = new.infer(&x, &mut rng_a);
        let (logits_old, stats_old) = old.infer(&x, &mut rng_b);
        assert_eq!(
            logits_new.data(),
            logits_old.data(),
            "logits must match bit-for-bit"
        );
        assert_eq!(stats_new, stats_old, "MvmStats must match bit-for-bit");
    }

    #[test]
    fn executor_lowering_bit_identical_to_legacy_with_rebranch() {
        // Same pin through the ReBranch group op: wrap the model's convs
        // into ReBranch units and deploy both ways.
        use crate::rebranch::ReBranchRatios;
        use crate::strategies::{build_strategy_model, Strategy};
        let suite = TransferSuite::new(40);
        let model = pretrain_base(
            Family::Vgg,
            &[6, 8],
            &suite.pretrain,
            TrainConfig::smoke(),
            40,
        );
        let mut rng = StdRng::seed_from_u64(41);
        let rb = build_strategy_model(
            &model,
            Strategy::ReBranch(ReBranchRatios { d: 2, u: 2 }),
            4,
            &mut rng,
        );
        let (cal, _) = suite.pretrain.batch(6, &mut rng);
        let (rom, sram) = small_params();
        let new = CimDeployedModel::deploy(&rb, &cal, rom, sram);
        let old = LegacyDeployedModel::deploy(&rb, &cal, rom, sram);
        let (x, _) = suite.pretrain.batch(3, &mut rng);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let (ln, sn) = new.infer(&x, &mut rng_a);
        let (lo, so) = old.infer(&x, &mut rng_b);
        assert_eq!(ln.data(), lo.data());
        assert_eq!(sn, so);
        assert!(sn.sram.energy_pj > 0.0, "res-conv must land in SRAM");
    }

    #[test]
    fn executor_lowering_bit_identical_to_legacy_batched() {
        // Parity holds through the batched engine too, for any worker
        // count (exact logits and event counters; f64 energy within
        // summation-order tolerance by construction — both reduce in
        // sample order, so they are equal here as well).
        let (rom, sram) = small_params();
        let (model, x) = quick_model(6);
        let new = CimDeployedModel::deploy(&model, &x, rom, sram);
        let old = LegacyDeployedModel::deploy(&model, &x, rom, sram);
        for workers in [1, 3] {
            let (ln, sn) = WorkerPool::with(workers, |pool| new.infer_batch(&x, 99, pool));
            let (lo, so) = WorkerPool::with(workers, |pool| old.infer_batch(&x, 99, pool));
            assert_eq!(ln.data(), lo.data(), "workers = {workers}");
            assert_eq!(sn, so, "workers = {workers}");
        }
    }

    #[test]
    fn batched_inference_bit_identical_to_serial() {
        // The paper's noiseless design point: the serial path consumes no
        // randomness, so batched and serial must agree bit-for-bit, for
        // any worker count.
        let (rom, sram) = small_params();
        let (deployed, x) = quick_deployment(rom, sram, 6);
        let mut rng = StdRng::seed_from_u64(21);
        let (serial, serial_stats) = deployed.infer(&x, &mut rng);
        for workers in [1, 2, 4] {
            let (batched, stats) =
                crate::engine::WorkerPool::with(workers, |pool| deployed.infer_batch(&x, 99, pool));
            assert_eq!(
                serial.data(),
                batched.data(),
                "workers = {workers}: batched logits must be bit-identical to serial"
            );
            // Event counters are exact; energy/latency may differ only by
            // f64 summation order.
            assert_eq!(
                serial_stats.rom.analog_evaluations,
                stats.rom.analog_evaluations
            );
            assert_eq!(serial_stats.rom.adc_conversions, stats.rom.adc_conversions);
            assert_eq!(serial_stats.rom.wl_pulses, stats.rom.wl_pulses);
            assert_eq!(
                serial_stats.sram.adc_conversions,
                stats.sram.adc_conversions
            );
            let rel = (serial_stats.total_energy_pj() - stats.total_energy_pj()).abs()
                / serial_stats.total_energy_pj();
            assert!(rel < 1e-9, "energy drifted: {rel}");
        }
    }

    #[test]
    fn noisy_batched_inference_identical_across_worker_counts() {
        // With bit-line noise the RNG matters; per-sample streams make the
        // batched result a pure function of (seed, sample), so worker
        // count must not change a single bit.
        let mut rom = MacroParams::rom_paper();
        rom.noise_sigma = 0.3;
        let (deployed, x) = quick_deployment(rom, MacroParams::sram_paper(), 5);
        let (w1, _) = crate::engine::WorkerPool::with(1, |pool| deployed.infer_batch(&x, 7, pool));
        for workers in [2, 4] {
            let (wn, _) =
                crate::engine::WorkerPool::with(workers, |pool| deployed.infer_batch(&x, 7, pool));
            assert_eq!(w1.data(), wn.data(), "workers = {workers}");
        }
        // A different seed draws different noise.
        let (other, _) =
            crate::engine::WorkerPool::with(2, |pool| deployed.infer_batch(&x, 8, pool));
        assert_ne!(w1.data(), other.data());
    }

    #[test]
    fn fast_path_toggle_does_not_change_logits() {
        let (rom, sram) = small_params();
        let (mut deployed, x) = quick_deployment(rom, sram, 3);
        let mut rng = StdRng::seed_from_u64(22);
        let (fast, _) = deployed.infer(&x, &mut rng);
        deployed.set_fast_path(false);
        let (reference, _) = deployed.infer(&x, &mut rng);
        assert_eq!(fast.data(), reference.data());
    }

    #[test]
    fn live_report_prices_the_memory_hierarchy() {
        // The unification point of the refactor: a TinyCnn inference now
        // yields a live EnergyBreakdown, not just macro counters.
        let (rom, sram) = small_params();
        let (deployed, x) = quick_deployment(rom, sram, 2);
        let mut rng = StdRng::seed_from_u64(23);
        let (_, report) = deployed.infer_report(&x, &mut rng);
        assert!(report.energy.cim_uj > 0.0);
        assert!(report.energy.buffer_uj > 0.0);
        assert!(report.energy.noc_uj > 0.0);
        assert!(report.energy.dram_uj > 0.0);
        assert!(report.energy.peripheral_uj > 0.0);
        assert!(report.buffer_traffic_bits > report.dram_traffic_bits);
        assert!(report.latency_ns > 0.0);
        // Consistency with the DeployStats view, through the one shared
        // summation site.
        assert!((report.energy.cim_uj - report.cim_energy_pj() / 1e6).abs() < 1e-12);
    }

    #[test]
    fn batched_accuracy_matches_serial_evaluation() {
        let suite = TransferSuite::new(31);
        let mut model = pretrain_base(
            Family::Vgg,
            &[8, 10],
            &suite.pretrain,
            TrainConfig::smoke(),
            31,
        );
        let mut rng = StdRng::seed_from_u64(32);
        let (cal, _) = suite.pretrain.batch(8, &mut rng);
        let (rom, sram) = small_params();
        let deployed = CimDeployedModel::deploy(&model, &cal, rom, sram);
        let model_ref = &mut model;
        let (sw, cim, stats) = crate::engine::WorkerPool::with(2, |pool| {
            accuracy_software_vs_cim_batch(model_ref, &deployed, &suite.pretrain, 24, 33, pool)
        });
        assert!((sw - cim).abs() < 0.25, "software {sw} vs CiM {cim}");
        assert!(stats.rom.energy_pj > 0.0);
        assert!(stats.sram.energy_pj > 0.0);
    }
}
