//! Full-network deployment onto the CiM functional simulator (Fig. 9's
//! logical flow, end to end).
//!
//! A trained [`TinyCnn`] is *deployed*: every trunk convolution is
//! quantized per-channel to 8 bits and mask-programmed into ROM-CiM
//! subarrays; ReBranch residual convs and the classifier go into SRAM-CiM;
//! activation functions, pooling and the residual merges run digitally
//! through the cache (exactly the split of Fig. 9). Inference then runs
//! through the analog datapath, and the result is compared against the
//! floating-point software model — the executable form of the paper's
//! "almost no accuracy loss (-0.5% ~ +0.2%)" claim, with per-domain
//! energy accounting on the side.

use rand::Rng;

use crate::qconv::CimConv2d;
use crate::tiny_models::{ConvUnit, TinyCnn};
use yoloc_cim::macro_model::{MacroParams, MvmStats, RomMvm};
use yoloc_quant::{calibrate_affine, PerChannelQuant, QuantParams};
use yoloc_tensor::layers::MaxPool2d;
use yoloc_tensor::ops::conv2d_reference;
use yoloc_tensor::{Layer, Tensor};

/// A conv deployed on a macro, with where it physically lives.
#[allow(clippy::large_enum_variant)] // variants are few and long-lived
enum DeployedUnit {
    Plain {
        conv: CimConv2d,
    },
    ReBranch {
        trunk: CimConv2d,
        compress: CimConv2d,
        res_conv: CimConv2d,
        decompress: CimConv2d,
    },
}

struct DeployedBlock {
    unit: DeployedUnit,
    pool: bool,
    skip: bool,
}

/// Aggregate execution statistics of a deployed inference, split by
/// memory domain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeployStats {
    /// ROM-CiM macro activity (trunk + branch projections).
    pub rom: MvmStats,
    /// SRAM-CiM macro activity (residual convs + classifier).
    pub sram: MvmStats,
}

impl DeployStats {
    fn add_rom(&mut self, s: MvmStats) {
        accumulate(&mut self.rom, s);
    }
    fn add_sram(&mut self, s: MvmStats) {
        accumulate(&mut self.sram, s);
    }

    /// Total energy across both domains, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.rom.energy_pj + self.sram.energy_pj
    }
}

fn accumulate(a: &mut MvmStats, b: MvmStats) {
    a.analog_evaluations += b.analog_evaluations;
    a.adc_conversions += b.adc_conversions;
    a.wl_pulses += b.wl_pulses;
    a.energy_pj += b.energy_pj;
    a.latency_ns += b.latency_ns;
}

/// A [`TinyCnn`] compiled onto CiM macros.
pub struct CimDeployedModel {
    blocks: Vec<DeployedBlock>,
    classifier: RomMvm,
    classifier_scales: Vec<f32>,
    classifier_row_sums: Vec<i64>,
    classifier_bias: Vec<f32>,
    classifier_act: QuantParams,
    classes: usize,
}

/// Runs the software reference of one block, returning
/// (conv input, block output) so deployment can calibrate activations.
fn software_block(x: &Tensor, unit: &ConvUnit, pool: bool, skip: bool) -> Tensor {
    let conv_out = match unit {
        ConvUnit::Plain(c) => conv2d_reference(x, &c.weight.value, None, 1, 1),
        ConvUnit::ReBranch(rb) => {
            let trunk = conv2d_reference(x, &rb.trunk().weight.value, None, 1, 1);
            let (w1, wb, w2) = rb.branch_weights();
            let c = conv2d_reference(x, w1, None, 1, 0);
            let r = conv2d_reference(&c, wb, None, 1, 1);
            let d = conv2d_reference(&r, w2, None, 1, 0);
            trunk.add(&d)
        }
        ConvUnit::Spwd(s) => {
            let a = conv2d_reference(x, &s.frozen.weight.value, None, 1, 1);
            let b = conv2d_reference(x, &s.deco.weight.value, None, 1, 1);
            a.add(&b)
        }
    };
    let merged = if skip { conv_out.add(x) } else { conv_out };
    let act = merged.map(|v| v.max(0.0));
    if pool {
        MaxPool2d::new(2, 2).forward(&act, false)
    } else {
        act
    }
}

/// Global average pool `(N, C, H, W) -> (N, C)`.
fn gap(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = x.data()[base..base + h * w].iter().sum();
            *out.at_mut(&[ni, ci]) = s / (h * w) as f32;
        }
    }
    out
}

impl CimDeployedModel {
    /// Compiles a trained model onto CiM macros, calibrating every
    /// layer's activation quantization on `calibration` images.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is not a `(N, C, H, W)` batch matching the
    /// model input.
    pub fn deploy(
        model: &TinyCnn,
        calibration: &Tensor,
        rom: MacroParams,
        sram: MacroParams,
    ) -> Self {
        assert_eq!(calibration.ndim(), 4, "calibration must be (N, C, H, W)");
        let mut blocks = Vec::new();
        let mut h = calibration.clone();
        for b in &model.blocks {
            let unit = match &b.unit {
                ConvUnit::Plain(c) => DeployedUnit::Plain {
                    conv: CimConv2d::compile(&c.weight.value, 1, 1, &[&h], rom),
                },
                ConvUnit::ReBranch(rb) => {
                    let (w1, wb, w2) = rb.branch_weights();
                    // Calibrate each stage on its actual software input.
                    let c_out = conv2d_reference(&h, w1, None, 1, 0);
                    let r_out = conv2d_reference(&c_out, wb, None, 1, 1);
                    DeployedUnit::ReBranch {
                        trunk: CimConv2d::compile(&rb.trunk().weight.value, 1, 1, &[&h], rom),
                        compress: CimConv2d::compile(w1, 1, 0, &[&h], rom),
                        res_conv: CimConv2d::compile(wb, 1, 1, &[&c_out], sram),
                        decompress: CimConv2d::compile(w2, 1, 0, &[&r_out], rom),
                    }
                }
                ConvUnit::Spwd(s) => {
                    // Deploy the *effective* conv (trunk + decoration) as a
                    // single ROM matrix plus an SRAM decoration.
                    DeployedUnit::Plain {
                        conv: CimConv2d::compile(
                            &s.frozen.weight.value.add(&s.deco.weight.value),
                            1,
                            1,
                            &[&h],
                            rom,
                        ),
                    }
                }
            };
            let pool = b.pool_enabled();
            blocks.push(DeployedBlock {
                unit,
                pool,
                skip: b.skip,
            });
            h = software_block(&h, &b.unit, pool, b.skip);
        }
        // Classifier onto SRAM-CiM.
        let feats = gap(&h);
        let w = &model.classifier.weight.value;
        let (outs, ins) = (w.shape()[0], w.shape()[1]);
        let pc = PerChannelQuant::quantize(w, sram.weight_bits);
        let row_sums: Vec<i64> = (0..outs)
            .map(|o| {
                pc.values[o * ins..(o + 1) * ins]
                    .iter()
                    .map(|&v| v as i64)
                    .sum()
            })
            .collect();
        let bias = model
            .classifier
            .bias
            .as_ref()
            .map(|b| b.value.data().to_vec())
            .unwrap_or_else(|| vec![0.0; outs]);
        CimDeployedModel {
            blocks,
            classifier: RomMvm::program(sram, &pc.values, outs, ins),
            classifier_scales: pc.channel_params.iter().map(|p| p.scale).collect(),
            classifier_row_sums: row_sums,
            classifier_bias: bias,
            classifier_act: calibrate_affine(&[&feats], sram.act_bits),
            classes: outs,
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Runs inference through the analog datapath; returns logits and the
    /// per-domain macro statistics.
    pub fn infer<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, DeployStats) {
        let mut stats = DeployStats::default();
        let mut h = x.clone();
        for b in &self.blocks {
            let conv_out = match &b.unit {
                DeployedUnit::Plain { conv } => {
                    let (y, s) = conv.forward(&h, rng);
                    stats.add_rom(s);
                    y
                }
                DeployedUnit::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                } => {
                    let (t, s1) = trunk.forward(&h, rng);
                    let (c, s2) = compress.forward(&h, rng);
                    let (r, s3) = res_conv.forward(&c, rng);
                    let (d, s4) = decompress.forward(&r, rng);
                    stats.add_rom(s1);
                    stats.add_rom(s2);
                    stats.add_sram(s3);
                    stats.add_rom(s4);
                    t.add(&d)
                }
            };
            let merged = if b.skip { conv_out.add(&h) } else { conv_out };
            let act = merged.map(|v| v.max(0.0));
            h = if b.pool {
                MaxPool2d::new(2, 2).forward(&act, false)
            } else {
                act
            };
        }
        let feats = gap(&h);
        let n = feats.shape()[0];
        let ins = feats.shape()[1];
        let mut logits = Tensor::zeros(&[n, self.classes]);
        for ni in 0..n {
            let codes: Vec<i32> = (0..ins)
                .map(|i| self.classifier_act.quantize_value(feats.at(&[ni, i])))
                .collect();
            let (acc, s) = self.classifier.mvm(&codes, rng);
            stats.add_sram(s);
            for (o, &a) in acc.iter().enumerate().take(self.classes) {
                let v = self.classifier_scales[o]
                    * self.classifier_act.scale
                    * (a - self.classifier_act.zero_point as i64 * self.classifier_row_sums[o])
                        as f32
                    + self.classifier_bias[o];
                *logits.at_mut(&[ni, o]) = v;
            }
        }
        (logits, stats)
    }
}

/// Compares software vs CiM-deployed accuracy over `n` samples of `task`,
/// returning `(software_acc, cim_acc, stats_of_one_batch)`.
pub fn accuracy_software_vs_cim<R: Rng + ?Sized>(
    model: &mut TinyCnn,
    deployed: &CimDeployedModel,
    task: &yoloc_data::classification::SyntheticTask,
    n: usize,
    rng: &mut R,
) -> (f32, f32, DeployStats) {
    let (x, y) = task.batch(n, rng);
    let sw_logits = model.forward(&x, false);
    let sw_acc = yoloc_tensor::loss::accuracy(&sw_logits, &y);
    let (cim_logits, stats) = deployed.infer(&x, rng);
    let cim_acc = yoloc_tensor::loss::accuracy(&cim_logits, &y);
    (sw_acc, cim_acc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{pretrain_base, TrainConfig};
    use crate::tiny_models::Family;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_data::classification::TransferSuite;

    fn small_params() -> (MacroParams, MacroParams) {
        (MacroParams::rom_paper(), MacroParams::sram_paper())
    }

    #[test]
    fn deployed_model_matches_software_logits() {
        let suite = TransferSuite::new(5);
        let mut model = pretrain_base(
            Family::Vgg,
            &[8, 10],
            &suite.pretrain,
            TrainConfig {
                steps: 60,
                batch: 12,
                lr: 0.08,
                momentum: 0.9,
            },
            5,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let (cal, _) = suite.pretrain.batch(8, &mut rng);
        let (rom, sram) = small_params();
        let deployed = CimDeployedModel::deploy(&model, &cal, rom, sram);
        let (x, _) = suite.pretrain.batch(4, &mut rng);
        let sw = model.forward(&x, false);
        let (cim, stats) = deployed.infer(&x, &mut rng);
        // Quantized inference tracks software logits closely.
        let mag = sw.abs_max().max(1e-6);
        for (a, b) in cim.data().iter().zip(sw.data()) {
            assert!((a - b).abs() / mag < 0.12, "cim {a} vs sw {b}");
        }
        assert!(stats.rom.energy_pj > 0.0);
        assert!(stats.sram.energy_pj > 0.0);
    }

    #[test]
    fn deployed_accuracy_close_to_software() {
        let suite = TransferSuite::new(9);
        let mut model = pretrain_base(
            Family::Vgg,
            &[8, 10],
            &suite.pretrain,
            TrainConfig {
                steps: 120,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
            },
            9,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let (cal, _) = suite.pretrain.batch(8, &mut rng);
        let (rom, sram) = small_params();
        let deployed = CimDeployedModel::deploy(&model, &cal, rom, sram);
        let (sw, cim, _) =
            accuracy_software_vs_cim(&mut model, &deployed, &suite.pretrain, 80, &mut rng);
        // Paper: -0.5% ~ +0.2% mAP change; at smoke scale allow a few
        // percentage points either way.
        assert!((sw - cim).abs() < 0.08, "software {sw} vs CiM {cim}");
    }
}
