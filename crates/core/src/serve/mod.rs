//! The serving layer: continuous-batching multi-model inference over
//! the arena pool.
//!
//! This module turns the compiled-network runtime into a request
//! server, as a deterministic discrete-event simulation:
//!
//! * [`clock`] — the [`ServeClock`] abstraction: [`VirtualClock`] for
//!   tests (free time travel, host-independent timelines) and
//!   [`MonotonicClock`] for real-time replays.
//! * [`loadgen`] — [`LoadGen`], the seeded open-loop generator of
//!   Poisson / bursty / ramp arrival traces per model.
//! * [`broker`] — [`Broker`], the continuous-batching loop: bounded
//!   admission queues with shed-oldest / reject-new backpressure,
//!   batch windows closing on size or time, round-robin fairness
//!   across tenants, per-request deadlines — and, with a
//!   [`HealthConfig`], golden-probe canaries, quarantine + modeled
//!   repair, bounded retry, and deterministic fault injection
//!   ([`Broker::inject_fault`]).
//! * [`report`] — [`RequestOutcome`] per request and the aggregated
//!   [`ServeReport`] (p50/p95/p99 latency, sustained QPS, latency
//!   histograms, accounting identities), renderable as the
//!   `yoloc-bench-serve/2` JSON the `bench_serve` bin emits.
//!
//! Everything is seeded through
//! [`sample_stream_seed`](crate::engine::sample_stream_seed)-derived
//! streams — no ambient entropy anywhere — so identical inputs give
//! byte-identical reports on any host, at any worker count. The
//! `serve_sim` suite pins the timeline; `serve_parity` pins that the
//! brokered numerics are bit-identical to direct inference.

pub mod broker;
pub mod clock;
pub mod loadgen;
pub mod report;

pub use broker::{
    AdmissionPolicy, Broker, BrokerConfig, Capture, HealthConfig, ServeOutput, TenantConfig,
    TenantHealthStats,
};
pub use clock::{MonotonicClock, ServeClock, VirtualClock};
pub use loadgen::{Arrival, ArrivalPattern, LoadGen, TrafficSpec, NO_DEADLINE};
pub use report::{Disposition, ModelServeStats, RequestOutcome, ServeReport, NO_BATCH};
