//! Seeded open-loop load generation for the serving simulator.
//!
//! [`LoadGen`] turns a list of per-model [`TrafficSpec`]s into one
//! merged, time-sorted arrival trace. Every random draw comes from the
//! workspace's seeded rand shim through a per-spec
//! [`crate::engine::sample_stream_seed`] stream — the generator never
//! touches ambient entropy, so the same `(seed, specs, duration)` triple
//! produces the identical byte-for-byte trace on any host. That
//! property is what makes the serving reports regenerable and the
//! simulation suite's byte-stability gate possible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::sample_stream_seed;

/// Deadline sentinel: the request has no deadline.
pub const NO_DEADLINE: u64 = u64::MAX;

/// The arrival process of one traffic stream.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalPattern {
    /// Memoryless arrivals at `rate_rps` requests per (simulated)
    /// second: exponential inter-arrival gaps.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// `burst` requests land together every `period_ns`, at a seeded
    /// jitter offset inside the first eighth of the period — the
    /// queue-filling pattern that exercises admission control.
    Bursty {
        /// Distance between bursts, ns.
        period_ns: u64,
        /// Requests per burst.
        burst: usize,
    },
    /// Poisson arrivals whose rate ramps linearly from `start_rps` to
    /// `end_rps` across the trace duration (a warm-up / flash-crowd
    /// profile).
    Ramp {
        /// Rate at t = 0, requests per second.
        start_rps: f64,
        /// Rate at t = duration, requests per second.
        end_rps: f64,
    },
}

/// One tenant's traffic: which deployed model it targets, its arrival
/// process, and the per-request latency deadline.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Index of the target model in the broker's deployment order.
    pub model: usize,
    /// Arrival process.
    pub pattern: ArrivalPattern,
    /// Relative deadline (ns after arrival), `None` for best-effort.
    pub deadline_ns: Option<u64>,
}

/// One request of an arrival trace, in broker-ready form.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Trace-wide request id (position in the merged, time-sorted
    /// trace) — the key every outcome and capture refers back to.
    pub id: u64,
    /// Target model index.
    pub model: usize,
    /// Arrival time, ns since trace start.
    pub arrival_ns: u64,
    /// Absolute deadline, ns since trace start ([`NO_DEADLINE`] for
    /// best-effort requests).
    pub deadline_ns: u64,
    /// Seed of the request's input tensor (the broker materializes the
    /// input as `Tensor::rand_uniform` under exactly this seed, and the
    /// parity suite re-materializes it the same way).
    pub input_seed: u64,
}

/// The seeded open-loop load generator.
///
/// # Examples
///
/// ```
/// use yoloc_core::serve::{ArrivalPattern, LoadGen, TrafficSpec};
///
/// let gen = LoadGen::new(7);
/// let spec = TrafficSpec {
///     model: 0,
///     pattern: ArrivalPattern::Poisson { rate_rps: 1e6 },
///     deadline_ns: Some(50_000),
/// };
/// let trace = gen.trace(&[spec], 1_000_000); // 1 ms of traffic
/// assert!(!trace.is_empty());
/// // Same seed, same trace — the generator owns all its entropy.
/// let again = LoadGen::new(7).trace(&[spec], 1_000_000);
/// assert_eq!(trace.len(), again.len());
/// assert!(trace.iter().zip(&again).all(|(a, b)| a.arrival_ns == b.arrival_ns));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LoadGen {
    seed: u64,
}

impl LoadGen {
    /// A generator whose every draw derives from `seed`.
    pub fn new(seed: u64) -> Self {
        LoadGen { seed }
    }

    /// Generates the merged arrival trace of `specs` over
    /// `[0, duration_ns)`, sorted by arrival time (ties break by spec
    /// order, then emission order) with trace-wide ids assigned in
    /// sorted order.
    ///
    /// Each spec draws from its own `sample_stream_seed(seed, spec)`
    /// stream, so adding or editing one spec never perturbs the
    /// arrivals of another.
    pub fn trace(&self, specs: &[TrafficSpec], duration_ns: u64) -> Vec<Arrival> {
        // (arrival, spec index, per-spec sequence) — the sort key that
        // makes the merge deterministic even for identical timestamps.
        let mut raw: Vec<(u64, usize, usize, u64)> = Vec::new();
        for (si, spec) in specs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(sample_stream_seed(self.seed, si));
            let deadline = spec.deadline_ns.unwrap_or(NO_DEADLINE);
            let mut seq = 0usize;
            let mut push = |t: u64, seq: &mut usize| {
                raw.push((t, si, *seq, deadline));
                *seq += 1;
            };
            match spec.pattern {
                ArrivalPattern::Poisson { rate_rps } => {
                    assert!(rate_rps > 0.0, "Poisson rate must be positive");
                    let mut t = 0.0f64;
                    loop {
                        t += exp_gap_ns(rate_rps, &mut rng);
                        if t >= duration_ns as f64 {
                            break;
                        }
                        push(t as u64, &mut seq);
                    }
                }
                ArrivalPattern::Bursty { period_ns, burst } => {
                    assert!(period_ns > 0, "burst period must be positive");
                    let mut t = 0u64;
                    while t < duration_ns {
                        let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                        let at = t + jitter;
                        if at >= duration_ns {
                            break;
                        }
                        for _ in 0..burst {
                            push(at, &mut seq);
                        }
                        t += period_ns;
                    }
                }
                ArrivalPattern::Ramp { start_rps, end_rps } => {
                    assert!(
                        start_rps >= 0.0 && end_rps >= 0.0,
                        "ramp rates must be non-negative"
                    );
                    let mut t = 0.0f64;
                    loop {
                        let frac = t / duration_ns as f64;
                        let rate = (start_rps + (end_rps - start_rps) * frac).max(1e-3);
                        t += exp_gap_ns(rate, &mut rng);
                        if t >= duration_ns as f64 {
                            break;
                        }
                        push(t as u64, &mut seq);
                    }
                }
            }
        }
        raw.sort_by_key(|&(t, si, seq, _)| (t, si, seq));
        raw.into_iter()
            .enumerate()
            .map(|(id, (arrival_ns, si, _, deadline))| Arrival {
                id: id as u64,
                model: specs[si].model,
                arrival_ns,
                deadline_ns: if deadline == NO_DEADLINE {
                    NO_DEADLINE
                } else {
                    arrival_ns.saturating_add(deadline)
                },
                input_seed: sample_stream_seed(self.seed ^ 0x5E57_1217_AB1E_0001, id),
            })
            .collect()
    }
}

/// One exponential inter-arrival gap at `rate_rps`, in nanoseconds.
fn exp_gap_ns(rate_rps: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // -ln(1-u) / rate seconds; u < 1 so the log argument is positive.
    (-(1.0 - u).ln()) / rate_rps * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_sorted_with_dense_ids() {
        let gen = LoadGen::new(11);
        let specs = [
            TrafficSpec {
                model: 0,
                pattern: ArrivalPattern::Poisson { rate_rps: 2e6 },
                deadline_ns: Some(10_000),
            },
            TrafficSpec {
                model: 1,
                pattern: ArrivalPattern::Bursty {
                    period_ns: 100_000,
                    burst: 4,
                },
                deadline_ns: None,
            },
            TrafficSpec {
                model: 0,
                pattern: ArrivalPattern::Ramp {
                    start_rps: 0.0,
                    end_rps: 3e6,
                },
                deadline_ns: Some(20_000),
            },
        ];
        let trace = gen.trace(&specs, 1_000_000);
        assert!(!trace.is_empty());
        for (i, a) in trace.iter().enumerate() {
            assert_eq!(a.id, i as u64, "ids are the sorted positions");
            assert!(a.arrival_ns < 1_000_000, "arrivals stay inside the horizon");
            if i > 0 {
                assert!(trace[i - 1].arrival_ns <= a.arrival_ns, "sorted by time");
            }
        }
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let gen = LoadGen::new(3);
        let spec = TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson { rate_rps: 1e6 },
            deadline_ns: None,
        };
        // 1e6 rps over 10 ms => ~10_000 arrivals.
        let n = gen.trace(&[spec], 10_000_000).len() as f64;
        assert!((8_000.0..12_000.0).contains(&n), "got {n}");
    }

    #[test]
    fn per_spec_streams_are_independent() {
        let gen = LoadGen::new(5);
        let poisson = TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson { rate_rps: 1e6 },
            deadline_ns: None,
        };
        let burst = TrafficSpec {
            model: 1,
            pattern: ArrivalPattern::Bursty {
                period_ns: 50_000,
                burst: 3,
            },
            deadline_ns: None,
        };
        let alone: Vec<u64> = gen
            .trace(&[poisson], 500_000)
            .iter()
            .map(|a| a.arrival_ns)
            .collect();
        let merged: Vec<u64> = gen
            .trace(&[poisson, burst], 500_000)
            .iter()
            .filter(|a| a.model == 0)
            .map(|a| a.arrival_ns)
            .collect();
        assert_eq!(alone, merged, "adding a spec must not perturb stream 0");
    }

    #[test]
    fn deadlines_are_absolute() {
        let gen = LoadGen::new(9);
        let spec = TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson { rate_rps: 1e6 },
            deadline_ns: Some(7_500),
        };
        for a in gen.trace(&[spec], 200_000) {
            assert_eq!(a.deadline_ns, a.arrival_ns + 7_500);
        }
    }
}
