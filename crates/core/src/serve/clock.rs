//! The serving layer's clock abstraction.
//!
//! The [`crate::serve::Broker`] is a discrete-event simulator: it never
//! reads ambient time, it asks a [`ServeClock`] and *advances* it to the
//! next event. Two implementations cover the two use cases:
//!
//! * [`VirtualClock`] — a plain counter. Advancing is free, so a whole
//!   serving scenario (millions of simulated nanoseconds) runs as fast
//!   as the inferences inside it, and identical seeds produce identical
//!   timelines on any host. Every simulation test runs on this clock.
//! * [`MonotonicClock`] — wall time from [`std::time::Instant`].
//!   Advancing sleeps until the target instant, turning the same broker
//!   loop into a real-time replay for latency benchmarking.
//!
//! Both clocks start at 0 ns when constructed; every timestamp in a
//! [`crate::serve::ServeReport`] is relative to that origin.

use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the broker's event loop drives.
pub trait ServeClock {
    /// Current time, nanoseconds since the clock was created.
    fn now_ns(&self) -> u64;

    /// Advances the clock to `t_ns` (no-op when `t_ns` is in the past —
    /// the clock never moves backwards).
    fn advance_to(&mut self, t_ns: u64);
}

/// A virtual clock: time is a number, advancing is assignment.
///
/// # Examples
///
/// ```
/// use yoloc_core::serve::{ServeClock, VirtualClock};
///
/// let mut clock = VirtualClock::new();
/// clock.advance_to(1_500);
/// clock.advance_to(900); // never backwards
/// assert_eq!(clock.now_ns(), 1_500);
/// ```
#[derive(Debug, Default, Clone)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl ServeClock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now
    }

    fn advance_to(&mut self, t_ns: u64) {
        self.now = self.now.max(t_ns);
    }
}

/// A wall clock: `now_ns` is elapsed real time, `advance_to` sleeps.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A wall clock whose origin is the moment of this call.
    pub fn new() -> Self {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn advance_to(&mut self, t_ns: u64) {
        let now = self.now_ns();
        if t_ns > now {
            std::thread::sleep(Duration::from_nanos(t_ns - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_monotonic() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_to(10);
        c.advance_to(5);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn monotonic_clock_reaches_target() {
        let mut c = MonotonicClock::new();
        c.advance_to(2_000_000); // 2 ms
        assert!(c.now_ns() >= 2_000_000);
    }
}
