//! The continuous-batching request broker.
//!
//! [`Broker`] owns the serving loop over N deployed models (tenants):
//! bounded admission queues with a shed-oldest or reject-new overflow
//! policy, dynamic batch windows that close on **size or time**, a
//! single simulated execution engine shared round-robin across tenants,
//! and per-request deadline tracking. It is a discrete-event simulator
//! driven by a [`ServeClock`] — virtual in tests
//! (deterministic, host-independent), monotonic for real-time replays.
//!
//! Execution is real, time is modeled: every batch runs its requests
//! through [`CompiledNetwork::infer_in`] on recycled arenas from the
//! plan's pool (fanned across a [`WorkerPool`], order-preserving), and
//! the engine-busy interval charged to the clock is the batch launch
//! overhead plus the sum of the executed requests' *modeled* chip
//! latencies. Results are therefore bit-identical to a direct
//! `infer_in` on the same plan — the serving layer is pure scheduling,
//! pinned by `tests/serve_parity.rs` — while the timeline is a pure
//! function of the trace and the model latencies, pinned by
//! `tests/serve_sim.rs`.
//!
//! Determinism contract:
//!
//! * every RNG stream is derived from a seed via
//!   [`sample_stream_seed`] (inputs from `Arrival::input_seed`, noise
//!   streams from `(infer_seed, request id)`) — never from ambient
//!   entropy, worker scheduling, or batch composition;
//! * identical `(deployments, trace, config)` produce identical
//!   outcomes and a byte-identical rendered [`ServeReport`] at every
//!   worker count.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::compiler::{CompiledNetwork, ExecutionReport};
use crate::engine::{sample_stream_seed, WorkerPool};
use yoloc_tensor::Tensor;

use super::clock::ServeClock;
use super::loadgen::Arrival;
use super::report::{Disposition, RequestOutcome, ServeReport, NO_BATCH};

/// What to do with a new request when its tenant's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new request (the queue keeps its oldest work).
    RejectNew,
    /// Drop the oldest queued request to make room (freshest-first
    /// under overload — the right policy for deadline-bound traffic).
    ShedOldest,
}

/// Per-tenant serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Admission queue bound (requests). The queue never exceeds it.
    pub queue_cap: usize,
    /// Overflow policy when a request arrives at a full queue.
    pub admission: AdmissionPolicy,
    /// Batch window size bound: a forming batch closes the moment it
    /// holds this many requests.
    pub max_batch: usize,
    /// Batch window time bound, ns: a forming batch closes when its
    /// oldest request has waited this long, full or not.
    pub window_ns: u64,
}

impl TenantConfig {
    /// A sane default: queue of 64, shed-oldest, batches of up to 8
    /// closing after 1 ms.
    pub fn default_serving() -> Self {
        TenantConfig {
            queue_cap: 64,
            admission: AdmissionPolicy::ShedOldest,
            max_batch: 8,
            window_ns: 1_000_000,
        }
    }
}

/// Broker-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Base seed of the per-request inference RNG streams
    /// (`sample_stream_seed(infer_seed, id)` — the parity suite derives
    /// the identical stream for its direct executions).
    pub infer_seed: u64,
    /// Fixed modeled launch cost charged per batch, ns. This is what
    /// makes batching *win*: it amortizes across the batch.
    pub batch_overhead_ns: u64,
    /// Capture per-request logits + execution reports in the output
    /// (the parity suite's hook; benches leave it off).
    pub capture: bool,
}

impl BrokerConfig {
    /// Defaults: seed 0, 20 µs launch overhead, no capture.
    pub fn default_serving() -> Self {
        BrokerConfig {
            infer_seed: 0,
            batch_overhead_ns: 20_000,
            capture: false,
        }
    }
}

/// Captured execution result of one request (only with
/// [`BrokerConfig::capture`]).
#[derive(Debug, Clone)]
pub struct Capture {
    /// Trace-wide request id.
    pub id: u64,
    /// The request's logits.
    pub logits: Vec<f32>,
    /// The request's full execution report.
    pub exec: ExecutionReport,
}

/// Everything one [`Broker::run`] produces.
#[derive(Debug, Clone)]
pub struct ServeOutput {
    /// One outcome per offered request, in event (recording) order.
    pub outcomes: Vec<RequestOutcome>,
    /// The aggregated report.
    pub report: ServeReport,
    /// Captured per-request results (empty unless capturing).
    pub captures: Vec<Capture>,
}

/// A request sitting in an admission queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    arrival_ns: u64,
    enqueue_ns: u64,
    deadline_ns: u64,
    input_seed: u64,
}

/// One deployed model plus its live serving state.
struct Tenant<'m> {
    name: String,
    net: &'m CompiledNetwork,
    cfg: TenantConfig,
    queue: VecDeque<Queued>,
    max_depth: u64,
    batches: u64,
}

impl Tenant<'_> {
    /// Whether a batch can launch now: the window closed on size or on
    /// time.
    fn ready(&self, now: u64) -> bool {
        match self.queue.front() {
            None => false,
            Some(front) => {
                self.queue.len() >= self.cfg.max_batch
                    || now >= front.enqueue_ns.saturating_add(self.cfg.window_ns)
            }
        }
    }

    /// The future instant at which the forming batch's time window
    /// closes (`None` when the queue is empty; launch-on-size needs no
    /// timer, [`Tenant::ready`] sees it immediately).
    fn window_trigger(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|front| front.enqueue_ns.saturating_add(self.cfg.window_ns))
    }
}

/// A launched batch in flight on the simulated engine.
struct InFlight {
    model: usize,
    batch_id: u64,
    start_ns: u64,
    done_ns: u64,
    requests: Vec<Queued>,
    captures: Vec<Capture>,
}

/// The continuous-batching broker (see the [module docs](self)).
///
/// The broker borrows its deployed models (`'m`), so compile them — or
/// deploy them warm through
/// [`ModelServer`](crate::engine::ModelServer) — first, then open the
/// worker pool and run:
///
/// # Examples
///
/// ```
/// use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
/// use yoloc_core::engine::WorkerPool;
/// use yoloc_core::serve::{
///     ArrivalPattern, Broker, BrokerConfig, LoadGen, TenantConfig, TrafficSpec, VirtualClock,
/// };
/// use yoloc_models::zoo;
///
/// let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
/// let net = CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default())?;
/// let trace = LoadGen::new(11).trace(
///     &[TrafficSpec {
///         model: 0,
///         pattern: ArrivalPattern::Poisson { rate_rps: 5_000.0 },
///         deadline_ns: Some(10_000_000),
///     }],
///     2_000_000, // 2 ms of simulated traffic
/// );
/// let out = WorkerPool::with(2, |pool| {
///     let mut broker = Broker::new(VirtualClock::new(), BrokerConfig::default_serving());
///     broker.deploy("vgg", &net, TenantConfig::default_serving());
///     broker.run(&trace, pool)
/// });
/// assert_eq!(out.report.offered, trace.len() as u64);
/// assert_eq!(
///     out.report.completed + out.report.shed + out.report.rejected,
///     out.report.offered
/// );
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
pub struct Broker<'m, C: ServeClock> {
    clock: C,
    cfg: BrokerConfig,
    tenants: Vec<Tenant<'m>>,
    next_batch_id: u64,
    rr_cursor: usize,
}

impl<'m, C: ServeClock> Broker<'m, C> {
    /// A broker with no deployments yet.
    pub fn new(clock: C, cfg: BrokerConfig) -> Self {
        Broker {
            clock,
            cfg,
            tenants: Vec::new(),
            next_batch_id: 0,
            rr_cursor: 0,
        }
    }

    /// Registers a deployed model as the next tenant, returning its
    /// index (the `model` field traffic specs target).
    pub fn deploy(&mut self, name: &str, net: &'m CompiledNetwork, cfg: TenantConfig) -> usize {
        assert!(cfg.queue_cap > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "batch size bound must be positive");
        self.tenants.push(Tenant {
            name: name.to_string(),
            net,
            cfg,
            queue: VecDeque::new(),
            max_depth: 0,
            batches: 0,
        });
        self.tenants.len() - 1
    }

    /// Deployed model names, in tenant order.
    pub fn model_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// Runs the serving loop over `trace` (sorted by arrival time) to
    /// completion: every offered request is admitted, shed or rejected,
    /// and every admitted request executes. Returns the per-request
    /// outcomes, the aggregated [`ServeReport`], and (when capturing)
    /// per-request logits + execution reports.
    ///
    /// # Panics
    ///
    /// Panics if the trace is unsorted or targets an unknown model.
    pub fn run<'env>(&mut self, trace: &[Arrival], pool: &WorkerPool<'env>) -> ServeOutput
    where
        'm: 'env,
    {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be sorted by arrival time"
        );
        assert!(
            trace.iter().all(|a| a.model < self.tenants.len()),
            "trace targets an undeployed model"
        );
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
        let mut captures: Vec<Capture> = Vec::new();
        let mut in_flight: Option<InFlight> = None;
        let mut next_arr = 0usize;
        loop {
            let now = self.clock.now_ns();
            // 1. Admit every arrival that is due.
            while next_arr < trace.len() && trace[next_arr].arrival_ns <= now {
                self.admit(&trace[next_arr], now, &mut outcomes);
                next_arr += 1;
            }
            // 2. Retire a finished batch.
            if in_flight.as_ref().is_some_and(|f| now >= f.done_ns) {
                let f = in_flight.take().expect("in-flight batch");
                for q in &f.requests {
                    outcomes.push(RequestOutcome {
                        id: q.id,
                        model: f.model,
                        arrival_ns: q.arrival_ns,
                        enqueue_ns: q.enqueue_ns,
                        start_ns: f.start_ns,
                        finish_ns: f.done_ns,
                        batch_id: f.batch_id,
                        batch_size: f.requests.len(),
                        deadline_ns: q.deadline_ns,
                        disposition: Disposition::Completed,
                    });
                }
                captures.extend(f.captures);
            }
            // 3. Launch the next ready tenant (round-robin) onto the
            //    idle engine.
            if in_flight.is_none() {
                if let Some(m) = self.pick_ready(now) {
                    in_flight = Some(self.launch(m, now, pool));
                }
            }
            // 4. Advance to the next event: arrival, batch completion,
            //    or (engine idle) the earliest window expiry.
            let mut next_event: Option<u64> = None;
            let mut fold = |t: u64| {
                next_event = Some(next_event.map_or(t, |cur: u64| cur.min(t)));
            };
            if next_arr < trace.len() {
                fold(trace[next_arr].arrival_ns);
            }
            match &in_flight {
                Some(f) => fold(f.done_ns),
                None => {
                    for t in &self.tenants {
                        if let Some(trigger) = t.window_trigger() {
                            fold(trigger);
                        }
                    }
                }
            }
            match next_event {
                // No arrivals left, engine idle, queues empty: drained.
                None => break,
                Some(t) => self.clock.advance_to(t),
            }
        }
        let names = self.model_names();
        let max_depths: Vec<u64> = self.tenants.iter().map(|t| t.max_depth).collect();
        let batches: Vec<u64> = self.tenants.iter().map(|t| t.batches).collect();
        let report = ServeReport::build(
            self.cfg.infer_seed,
            &names,
            &outcomes,
            &max_depths,
            &batches,
        );
        ServeOutput {
            outcomes,
            report,
            captures,
        }
    }

    /// Admits one arrival into its tenant's queue, applying the
    /// overflow policy when the queue is at its bound.
    fn admit(&mut self, a: &Arrival, now: u64, outcomes: &mut Vec<RequestOutcome>) {
        let t = &mut self.tenants[a.model];
        let refused = |id: u64, arrival: &Arrival, q: Option<&Queued>, d: Disposition| {
            // Shed outcomes describe the *old* queued request; rejected
            // outcomes describe the refused arrival itself.
            let (arr, enq, dl) = match q {
                Some(q) => (q.arrival_ns, q.enqueue_ns, q.deadline_ns),
                None => (arrival.arrival_ns, now, arrival.deadline_ns),
            };
            RequestOutcome {
                id,
                model: arrival.model,
                arrival_ns: arr,
                enqueue_ns: enq,
                start_ns: 0,
                finish_ns: now,
                batch_id: NO_BATCH,
                batch_size: 0,
                deadline_ns: dl,
                disposition: d,
            }
        };
        if t.queue.len() >= t.cfg.queue_cap {
            match t.cfg.admission {
                AdmissionPolicy::RejectNew => {
                    outcomes.push(refused(a.id, a, None, Disposition::Rejected));
                    return;
                }
                AdmissionPolicy::ShedOldest => {
                    let old = t.queue.pop_front().expect("full queue has a front");
                    outcomes.push(refused(old.id, a, Some(&old), Disposition::Shed));
                }
            }
        }
        t.queue.push_back(Queued {
            id: a.id,
            arrival_ns: a.arrival_ns,
            enqueue_ns: now,
            deadline_ns: a.deadline_ns,
            input_seed: a.input_seed,
        });
        t.max_depth = t.max_depth.max(t.queue.len() as u64);
    }

    /// Round-robin pick of the next tenant with a closed batch window.
    fn pick_ready(&mut self, now: u64) -> Option<usize> {
        let n = self.tenants.len();
        for i in 0..n {
            let m = (self.rr_cursor + i) % n;
            if self.tenants[m].ready(now) {
                self.rr_cursor = (m + 1) % n;
                return Some(m);
            }
        }
        None
    }

    /// Closes tenant `m`'s batch window, executes the batch across the
    /// pool, and charges the modeled engine-busy interval.
    fn launch<'env>(&mut self, m: usize, now: u64, pool: &WorkerPool<'env>) -> InFlight
    where
        'm: 'env,
    {
        let capture = self.cfg.capture;
        let infer_seed = self.cfg.infer_seed;
        let batch_id = self.next_batch_id;
        self.next_batch_id += 1;
        let (requests, net) = {
            let t = &mut self.tenants[m];
            let k = t.queue.len().min(t.cfg.max_batch);
            t.batches += 1;
            (t.queue.drain(..k).collect::<Vec<_>>(), t.net)
        };
        let (c, h, w) = net.input_shape();
        // One job per request: per-request RNG stream + recycled arena,
        // exactly the batched engine's discipline — which is why the
        // result cannot depend on batch composition or worker count.
        let jobs: Vec<_> = requests
            .iter()
            .map(|q| {
                let x = Tensor::rand_uniform(
                    &[1, c, h, w],
                    0.0,
                    1.0,
                    &mut StdRng::seed_from_u64(q.input_seed),
                );
                let id = q.id;
                move || {
                    let mut rng =
                        StdRng::seed_from_u64(sample_stream_seed(infer_seed, id as usize));
                    let mut arena = net.take_arena();
                    net.infer_in(&x, &mut rng, &mut arena);
                    arena
                }
            })
            .collect();
        let arenas = pool.run(jobs);
        let mut service_ns = self.cfg.batch_overhead_ns;
        let mut caps = Vec::new();
        for (q, arena) in requests.iter().zip(arenas) {
            // The modeled chip latency of this request is the engine
            // time it occupies; floats only feed the u64 timeline
            // through one deterministic rounding.
            service_ns += arena.report().latency_ns.max(0.0).round() as u64;
            if capture {
                caps.push(Capture {
                    id: q.id,
                    logits: arena.output().data().to_vec(),
                    exec: arena.report().clone(),
                });
            }
            net.give_arena(arena);
        }
        InFlight {
            model: m,
            batch_id,
            start_ns: now,
            done_ns: now + service_ns.max(1),
            requests,
            captures: caps,
        }
    }
}
