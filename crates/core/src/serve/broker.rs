//! The continuous-batching request broker.
//!
//! [`Broker`] owns the serving loop over N deployed models (tenants):
//! bounded admission queues with a shed-oldest or reject-new overflow
//! policy, dynamic batch windows that close on **size or time**, a
//! single simulated execution engine shared round-robin across tenants,
//! and per-request deadline tracking. It is a discrete-event simulator
//! driven by a [`ServeClock`] — virtual in tests
//! (deterministic, host-independent), monotonic for real-time replays.
//!
//! Execution is real, time is modeled: every batch runs its requests
//! through [`CompiledNetwork::infer_in`] on recycled arenas from the
//! plan's pool (fanned across a [`WorkerPool`], order-preserving), and
//! the engine-busy interval charged to the clock is the batch launch
//! overhead plus the sum of the executed requests' *modeled* chip
//! latencies. Results are therefore bit-identical to a direct
//! `infer_in` on the same plan — the serving layer is pure scheduling,
//! pinned by `tests/serve_parity.rs` — while the timeline is a pure
//! function of the trace and the model latencies, pinned by
//! `tests/serve_sim.rs`.
//!
//! Determinism contract:
//!
//! * every RNG stream is derived from a seed via
//!   [`sample_stream_seed`] (inputs from `Arrival::input_seed`, noise
//!   streams from `(infer_seed, request id)`) — never from ambient
//!   entropy, worker scheduling, or batch composition;
//! * identical `(deployments, trace, config)` produce identical
//!   outcomes and a byte-identical rendered [`ServeReport`] at every
//!   worker count.
//!
//! # Health monitoring and graceful degradation
//!
//! With [`BrokerConfig::health`] set, every tenant gets a **golden
//! probe canary**: at deploy time the broker runs one known input
//! through the pristine deployment and stores a digest of its logits.
//! At serve time, ahead of a batch launch (rate-limited by
//! [`HealthConfig::canary_period_ns`]), the probe re-runs on whatever
//! network the tenant currently dispatches to and the digests are
//! compared. Batch results are **held pending** until the next passing
//! canary confirms them — a failing canary *voids* everything executed
//! since the last pass, so no response computed on a faulty fabric is
//! ever released as [`Disposition::Completed`].
//!
//! A canary failure quarantines the tenant for
//! [`HealthConfig::repair_ns`] (doubling per consecutive failure —
//! the retry backoff), modeling the time `remap_faults` needs to move
//! dead placements onto spare subarrays and re-program them. Voided
//! requests re-queue at the front within their
//! [`HealthConfig::max_retries`] budget and deadline; the rest time
//! out ([`Disposition::TimedOut`]). While quarantined the tenant stops
//! dispatching but keeps admitting (degraded mode: arrivals queue and
//! shed/reject under the normal admission policy), and requests whose
//! deadline expires in queue time out instead of wasting engine time.
//! When the quarantine lapses dispatch returns to the repaired
//! deployment and the next launch re-validates it with a forced
//! canary.
//!
//! Faults are injected deterministically with [`Broker::inject_fault`]:
//! at a chosen instant the tenant's dispatch swaps to a *faulty twin*
//! (the same description compiled with a `FaultConfig`), so the canary
//! mismatch is a genuine corrupt inference, not a simulated flag. The
//! probe itself is an inference on the live deployment and its modeled
//! latency is charged to the engine like any batch. `health: None`
//! bypasses every hook above — the loop is byte-identical to the
//! pre-health broker.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::compiler::{CompiledNetwork, ExecutionReport};
use crate::engine::{sample_stream_seed, WorkerPool};
use yoloc_tensor::Tensor;

use super::clock::ServeClock;
use super::loadgen::{Arrival, NO_DEADLINE};
use super::report::{Disposition, RequestOutcome, ServeReport, NO_BATCH};

/// What to do with a new request when its tenant's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new request (the queue keeps its oldest work).
    RejectNew,
    /// Drop the oldest queued request to make room (freshest-first
    /// under overload — the right policy for deadline-bound traffic).
    ShedOldest,
}

/// Per-tenant serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Admission queue bound (requests). The queue never exceeds it.
    pub queue_cap: usize,
    /// Overflow policy when a request arrives at a full queue.
    pub admission: AdmissionPolicy,
    /// Batch window size bound: a forming batch closes the moment it
    /// holds this many requests.
    pub max_batch: usize,
    /// Batch window time bound, ns: a forming batch closes when its
    /// oldest request has waited this long, full or not.
    pub window_ns: u64,
}

impl TenantConfig {
    /// A sane default: queue of 64, shed-oldest, batches of up to 8
    /// closing after 1 ms.
    pub fn default_serving() -> Self {
        TenantConfig {
            queue_cap: 64,
            admission: AdmissionPolicy::ShedOldest,
            max_batch: 8,
            window_ns: 1_000_000,
        }
    }
}

/// Broker-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Base seed of the per-request inference RNG streams
    /// (`sample_stream_seed(infer_seed, id)` — the parity suite derives
    /// the identical stream for its direct executions).
    pub infer_seed: u64,
    /// Fixed modeled launch cost charged per batch, ns. This is what
    /// makes batching *win*: it amortizes across the batch.
    pub batch_overhead_ns: u64,
    /// Capture per-request logits + execution reports in the output
    /// (the parity suite's hook; benches leave it off).
    pub capture: bool,
    /// Health monitoring + self-healing (canary probes, quarantine,
    /// retry). `None` leaves the broker byte-identical to the
    /// pre-health serving loop: no probes run, no outcome is ever
    /// timed out, and dispatch never checks tenant health.
    pub health: Option<HealthConfig>,
}

impl BrokerConfig {
    /// Defaults: seed 0, 20 µs launch overhead, no capture, no health
    /// monitoring.
    pub fn default_serving() -> Self {
        BrokerConfig {
            infer_seed: 0,
            batch_overhead_ns: 20_000,
            capture: false,
            health: None,
        }
    }
}

/// Health-monitoring configuration (see the [module docs](self)).
///
/// All state the canary needs beyond these scalars — the golden probe
/// input and its digest — is computed per tenant at
/// [`Broker::deploy`] time, so the config stays `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Canary period, ns: a golden probe runs ahead of a tenant's next
    /// batch launch once this much time has passed since its last
    /// probe (0 probes before every batch).
    pub canary_period_ns: u64,
    /// Seed of the golden probe input and its inference noise stream
    /// (derived per tenant via [`sample_stream_seed`]).
    pub canary_seed: u64,
    /// Retry budget: how many times one request may be re-queued after
    /// failed canaries void its batch before it times out.
    pub max_retries: u32,
    /// Modeled repair time, ns: how long a tenant stays quarantined
    /// after a canary failure while its placements remap onto spare
    /// subarrays (see `CompiledNetwork::remap_faults`). Doubles per
    /// *consecutive* failure as the retry backoff; resets on a pass.
    pub repair_ns: u64,
}

impl HealthConfig {
    /// Defaults: probe at most every 500 µs, retry twice, 2 ms repair.
    pub fn default_serving() -> Self {
        HealthConfig {
            canary_period_ns: 500_000,
            canary_seed: 0xCA_11A2,
            max_retries: 2,
            repair_ns: 2_000_000,
        }
    }
}

/// Captured execution result of one request (only with
/// [`BrokerConfig::capture`]).
#[derive(Debug, Clone)]
pub struct Capture {
    /// Trace-wide request id.
    pub id: u64,
    /// The request's logits.
    pub logits: Vec<f32>,
    /// The request's full execution report.
    pub exec: ExecutionReport,
}

/// Everything one [`Broker::run`] produces.
#[derive(Debug, Clone)]
pub struct ServeOutput {
    /// One outcome per offered request, in event (recording) order.
    pub outcomes: Vec<RequestOutcome>,
    /// The aggregated report.
    pub report: ServeReport,
    /// Captured per-request results (empty unless capturing).
    pub captures: Vec<Capture>,
    /// Per-tenant health telemetry, in deployment order (empty unless
    /// [`BrokerConfig::health`] is set).
    pub health: Vec<TenantHealthStats>,
}

/// Health telemetry of one tenant over a [`Broker::run`].
#[derive(Debug, Clone)]
pub struct TenantHealthStats {
    /// Model name (deployment name).
    pub model: String,
    /// Canary probes executed.
    pub probes: u64,
    /// Instants of canary failures (detections), ns.
    pub failures_at_ns: Vec<u64>,
    /// Instants quarantines lapsed (repairs completed), ns.
    pub repairs_at_ns: Vec<u64>,
    /// Total time spent quarantined, ns.
    pub quarantined_ns: u64,
}

/// A request sitting in an admission queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    arrival_ns: u64,
    enqueue_ns: u64,
    deadline_ns: u64,
    input_seed: u64,
    retries: u32,
}

/// A completed execution awaiting canary confirmation.
#[derive(Debug, Clone, Copy)]
struct PendingDone {
    q: Queued,
    start_ns: u64,
    finish_ns: u64,
    batch_id: u64,
    batch_size: usize,
}

/// Live health state of one tenant (present iff health is configured).
struct TenantHealth {
    /// Golden probe input, fixed at deploy.
    golden_input: Tensor,
    /// Noise-stream seed of the probe inference.
    noise_seed: u64,
    /// Digest of the pristine deployment's probe logits.
    digest: u64,
    last_canary_ns: u64,
    force_canary: bool,
    probes: u64,
    consecutive_failures: u32,
    failures_at: Vec<u64>,
    repairs_at: Vec<u64>,
    quarantined_until: Option<u64>,
    quarantined_total_ns: u64,
    /// Executions held until the next passing canary confirms them.
    pending: Vec<PendingDone>,
    pending_caps: Vec<Capture>,
}

/// One deployed model plus its live serving state.
struct Tenant<'m> {
    name: String,
    net: &'m CompiledNetwork,
    /// Dispatch override while a fault injection is live: inferences
    /// (and canary probes) run on this network instead of `net`.
    faulty: Option<&'m CompiledNetwork>,
    cfg: TenantConfig,
    queue: VecDeque<Queued>,
    max_depth: u64,
    batches: u64,
    health: Option<TenantHealth>,
}

impl<'m> Tenant<'m> {
    /// Whether a batch can launch now: the window closed on size or on
    /// time.
    fn ready(&self, now: u64) -> bool {
        match self.queue.front() {
            None => false,
            Some(front) => {
                self.queue.len() >= self.cfg.max_batch
                    || now >= front.enqueue_ns.saturating_add(self.cfg.window_ns)
            }
        }
    }

    /// The future instant at which the forming batch's time window
    /// closes (`None` when the queue is empty; launch-on-size needs no
    /// timer, [`Tenant::ready`] sees it immediately).
    fn window_trigger(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|front| front.enqueue_ns.saturating_add(self.cfg.window_ns))
    }

    /// The network this tenant currently dispatches to (the faulty twin
    /// while an injected fault is live, the deployment otherwise).
    fn active_net(&self) -> &'m CompiledNetwork {
        self.faulty.unwrap_or(self.net)
    }

    /// Whether the tenant is quarantined (launches suppressed).
    fn quarantined(&self) -> bool {
        self.health
            .as_ref()
            .is_some_and(|h| h.quarantined_until.is_some())
    }
}

/// A scheduled fault injection (see [`Broker::inject_fault`]).
struct ChaosEvent<'m> {
    at_ns: u64,
    model: usize,
    faulty: &'m CompiledNetwork,
}

/// FNV-1a over the logits' exact bit patterns — the canary digest.
fn logits_digest(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A launched batch in flight on the simulated engine.
struct InFlight {
    model: usize,
    batch_id: u64,
    start_ns: u64,
    done_ns: u64,
    requests: Vec<Queued>,
    captures: Vec<Capture>,
}

/// The continuous-batching broker (see the [module docs](self)).
///
/// The broker borrows its deployed models (`'m`), so compile them — or
/// deploy them warm through
/// [`ModelServer`](crate::engine::ModelServer) — first, then open the
/// worker pool and run:
///
/// # Examples
///
/// ```
/// use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
/// use yoloc_core::engine::WorkerPool;
/// use yoloc_core::serve::{
///     ArrivalPattern, Broker, BrokerConfig, LoadGen, TenantConfig, TrafficSpec, VirtualClock,
/// };
/// use yoloc_models::zoo;
///
/// let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
/// let net = CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default())?;
/// let trace = LoadGen::new(11).trace(
///     &[TrafficSpec {
///         model: 0,
///         pattern: ArrivalPattern::Poisson { rate_rps: 5_000.0 },
///         deadline_ns: Some(10_000_000),
///     }],
///     2_000_000, // 2 ms of simulated traffic
/// );
/// let out = WorkerPool::with(2, |pool| {
///     let mut broker = Broker::new(VirtualClock::new(), BrokerConfig::default_serving());
///     broker.deploy("vgg", &net, TenantConfig::default_serving());
///     broker.run(&trace, pool)
/// });
/// assert_eq!(out.report.offered, trace.len() as u64);
/// assert_eq!(
///     out.report.completed + out.report.shed + out.report.rejected + out.report.timed_out,
///     out.report.offered
/// );
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
pub struct Broker<'m, C: ServeClock> {
    clock: C,
    cfg: BrokerConfig,
    tenants: Vec<Tenant<'m>>,
    chaos: Vec<ChaosEvent<'m>>,
    next_batch_id: u64,
    rr_cursor: usize,
}

impl<'m, C: ServeClock> Broker<'m, C> {
    /// A broker with no deployments yet.
    pub fn new(clock: C, cfg: BrokerConfig) -> Self {
        Broker {
            clock,
            cfg,
            tenants: Vec::new(),
            chaos: Vec::new(),
            next_batch_id: 0,
            rr_cursor: 0,
        }
    }

    /// Registers a deployed model as the next tenant, returning its
    /// index (the `model` field traffic specs target).
    ///
    /// With [`BrokerConfig::health`] set, this also runs the tenant's
    /// golden probe once on the pristine deployment and stores the
    /// logits digest the canary will compare against.
    pub fn deploy(&mut self, name: &str, net: &'m CompiledNetwork, cfg: TenantConfig) -> usize {
        assert!(cfg.queue_cap > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "batch size bound must be positive");
        let health = self.cfg.health.map(|h| {
            let idx = self.tenants.len();
            let (c, hh, w) = net.input_shape();
            let golden_input = Tensor::rand_uniform(
                &[1, c, hh, w],
                0.0,
                1.0,
                &mut StdRng::seed_from_u64(sample_stream_seed(h.canary_seed, 2 * idx)),
            );
            let noise_seed = sample_stream_seed(h.canary_seed, 2 * idx + 1);
            let mut arena = net.take_arena();
            net.infer_in(
                &golden_input,
                &mut StdRng::seed_from_u64(noise_seed),
                &mut arena,
            );
            let digest = logits_digest(arena.output().data());
            net.give_arena(arena);
            TenantHealth {
                golden_input,
                noise_seed,
                digest,
                last_canary_ns: 0,
                force_canary: true,
                probes: 0,
                consecutive_failures: 0,
                failures_at: Vec::new(),
                repairs_at: Vec::new(),
                quarantined_until: None,
                quarantined_total_ns: 0,
                pending: Vec::new(),
                pending_caps: Vec::new(),
            }
        });
        self.tenants.push(Tenant {
            name: name.to_string(),
            net,
            faulty: None,
            cfg,
            queue: VecDeque::new(),
            max_depth: 0,
            batches: 0,
            health,
        });
        self.tenants.len() - 1
    }

    /// Schedules a deterministic fault injection: at simulated instant
    /// `at_ns`, tenant `model`'s dispatch (batches *and* canary probes)
    /// swaps to `faulty` — typically the same description compiled with
    /// a `FaultConfig`, so subsequent inferences are genuinely corrupt.
    /// The swap reverts to the pristine deployment when the tenant's
    /// quarantine lapses (the modeled remap-onto-spares repair).
    ///
    /// Without [`BrokerConfig::health`] there is no canary to notice:
    /// the corrupt responses are served silently — the baseline the
    /// fault bench measures against.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not deployed or the twin's input shape
    /// differs from the deployment's.
    pub fn inject_fault(&mut self, model: usize, at_ns: u64, faulty: &'m CompiledNetwork) {
        let t = self
            .tenants
            .get(model)
            .expect("inject_fault targets an undeployed model");
        assert_eq!(
            t.net.input_shape(),
            faulty.input_shape(),
            "faulty twin must accept the deployment's input shape"
        );
        self.chaos.push(ChaosEvent {
            at_ns,
            model,
            faulty,
        });
        self.chaos.sort_by_key(|e| e.at_ns);
    }

    /// Deployed model names, in tenant order.
    pub fn model_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// Runs the serving loop over `trace` (sorted by arrival time) to
    /// completion: every offered request is admitted, shed or rejected,
    /// and every admitted request executes. Returns the per-request
    /// outcomes, the aggregated [`ServeReport`], and (when capturing)
    /// per-request logits + execution reports.
    ///
    /// # Panics
    ///
    /// Panics if the trace is unsorted or targets an unknown model.
    pub fn run<'env>(&mut self, trace: &[Arrival], pool: &WorkerPool<'env>) -> ServeOutput
    where
        'm: 'env,
    {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be sorted by arrival time"
        );
        assert!(
            trace.iter().all(|a| a.model < self.tenants.len()),
            "trace targets an undeployed model"
        );
        self.chaos.sort_by_key(|e| e.at_ns);
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
        let mut captures: Vec<Capture> = Vec::new();
        let mut in_flight: Option<InFlight> = None;
        let mut next_arr = 0usize;
        let mut next_chaos = 0usize;
        loop {
            let now = self.clock.now_ns();
            // 1. Admit every arrival that is due.
            while next_arr < trace.len() && trace[next_arr].arrival_ns <= now {
                self.admit(&trace[next_arr], now, &mut outcomes);
                next_arr += 1;
            }
            // 1b. Trip every fault injection that is due.
            while next_chaos < self.chaos.len() && self.chaos[next_chaos].at_ns <= now {
                let e = &self.chaos[next_chaos];
                self.tenants[e.model].faulty = Some(e.faulty);
                next_chaos += 1;
            }
            // 1c. Complete lapsed quarantines: dispatch returns to the
            //     repaired deployment; the next launch re-validates it.
            for t in &mut self.tenants {
                if let Some(h) = t.health.as_mut() {
                    if h.quarantined_until.is_some_and(|u| now >= u) {
                        h.quarantined_until = None;
                        h.repairs_at.push(now);
                        h.force_canary = true;
                        t.faulty = None;
                    }
                }
            }
            // 1d. Time out queued requests whose deadline has already
            //     passed (health mode only — a dead-on-arrival launch
            //     wastes engine time the quarantined fabric can't spare).
            if self.cfg.health.is_some() {
                for (m, t) in self.tenants.iter_mut().enumerate() {
                    t.queue.retain(|q| {
                        let expired = q.deadline_ns != NO_DEADLINE && q.deadline_ns <= now;
                        if expired {
                            outcomes.push(RequestOutcome {
                                id: q.id,
                                model: m,
                                arrival_ns: q.arrival_ns,
                                enqueue_ns: q.enqueue_ns,
                                start_ns: 0,
                                finish_ns: now,
                                batch_id: NO_BATCH,
                                batch_size: 0,
                                deadline_ns: q.deadline_ns,
                                retries: q.retries,
                                disposition: Disposition::TimedOut,
                            });
                        }
                        !expired
                    });
                }
            }
            // 2. Retire a finished batch. With health enabled the
            //    results are held pending until a canary confirms them.
            if in_flight.as_ref().is_some_and(|f| now >= f.done_ns) {
                let f = in_flight.take().expect("in-flight batch");
                let t = &mut self.tenants[f.model];
                if let Some(h) = t.health.as_mut() {
                    for q in &f.requests {
                        h.pending.push(PendingDone {
                            q: *q,
                            start_ns: f.start_ns,
                            finish_ns: f.done_ns,
                            batch_id: f.batch_id,
                            batch_size: f.requests.len(),
                        });
                    }
                    h.pending_caps.extend(f.captures);
                } else {
                    for q in &f.requests {
                        outcomes.push(RequestOutcome {
                            id: q.id,
                            model: f.model,
                            arrival_ns: q.arrival_ns,
                            enqueue_ns: q.enqueue_ns,
                            start_ns: f.start_ns,
                            finish_ns: f.done_ns,
                            batch_id: f.batch_id,
                            batch_size: f.requests.len(),
                            deadline_ns: q.deadline_ns,
                            retries: q.retries,
                            disposition: Disposition::Completed,
                        });
                    }
                    captures.extend(f.captures);
                }
            }
            // 3. Launch the next ready tenant (round-robin) onto the
            //    idle engine, running its canary first when one is due.
            if in_flight.is_none() {
                if let Some(m) = self.pick_ready(now) {
                    if self.canary_due(m, now) {
                        let (ok, probe_ns) = self.run_canary(m, now);
                        if ok {
                            self.on_canary_pass(m, &mut outcomes, &mut captures);
                            let mut f = self.launch(m, now, pool);
                            // The probe ran on the engine ahead of the
                            // batch; charge its time to the interval.
                            f.done_ns += probe_ns;
                            in_flight = Some(f);
                        } else {
                            self.on_canary_fail(m, now, true, &mut outcomes);
                            // The failed probe still occupied the engine.
                            in_flight = Some(InFlight {
                                model: m,
                                batch_id: NO_BATCH,
                                start_ns: now,
                                done_ns: now + probe_ns,
                                requests: Vec::new(),
                                captures: Vec::new(),
                            });
                        }
                    } else {
                        in_flight = Some(self.launch(m, now, pool));
                    }
                }
            }
            // 4. Advance to the next event: arrival, fault injection,
            //    batch completion, or (engine idle) the earliest window
            //    expiry / quarantine lapse.
            let mut next_event: Option<u64> = None;
            let mut fold = |t: u64| {
                next_event = Some(next_event.map_or(t, |cur: u64| cur.min(t)));
            };
            if next_arr < trace.len() {
                fold(trace[next_arr].arrival_ns);
            }
            if next_chaos < self.chaos.len() {
                fold(self.chaos[next_chaos].at_ns);
            }
            match &in_flight {
                Some(f) => fold(f.done_ns),
                None => {
                    for t in &self.tenants {
                        if t.quarantined() {
                            // A quarantined tenant can't launch; its
                            // next actionable instant is the repair.
                            if let Some(h) = t.health.as_ref() {
                                if let Some(u) = h.quarantined_until {
                                    if !t.queue.is_empty() {
                                        fold(u);
                                    }
                                }
                            }
                        } else if let Some(trigger) = t.window_trigger() {
                            fold(trigger);
                        }
                    }
                }
            }
            match next_event {
                // No arrivals left, engine idle, queues empty: drained.
                None => break,
                Some(t) => self.clock.advance_to(t),
            }
        }
        // Resolve executions still awaiting confirmation: one final
        // canary per tenant decides — confirmed, or (the trace is over,
        // no retry can run) timed out.
        let shutdown_ns = self.clock.now_ns();
        for m in 0..self.tenants.len() {
            let has_pending = self.tenants[m]
                .health
                .as_ref()
                .is_some_and(|h| !h.pending.is_empty());
            if has_pending {
                let (ok, _probe_ns) = self.run_canary(m, shutdown_ns);
                if ok {
                    self.on_canary_pass(m, &mut outcomes, &mut captures);
                } else {
                    self.on_canary_fail(m, shutdown_ns, false, &mut outcomes);
                }
            }
        }
        let names = self.model_names();
        let max_depths: Vec<u64> = self.tenants.iter().map(|t| t.max_depth).collect();
        let batches: Vec<u64> = self.tenants.iter().map(|t| t.batches).collect();
        let report = ServeReport::build(
            self.cfg.infer_seed,
            &names,
            &outcomes,
            &max_depths,
            &batches,
        );
        let health = if self.cfg.health.is_some() {
            self.tenants
                .iter()
                .map(|t| {
                    let h = t.health.as_ref().expect("health state per tenant");
                    TenantHealthStats {
                        model: t.name.clone(),
                        probes: h.probes,
                        failures_at_ns: h.failures_at.clone(),
                        repairs_at_ns: h.repairs_at.clone(),
                        quarantined_ns: h.quarantined_total_ns,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        ServeOutput {
            outcomes,
            report,
            captures,
            health,
        }
    }

    /// Admits one arrival into its tenant's queue, applying the
    /// overflow policy when the queue is at its bound.
    fn admit(&mut self, a: &Arrival, now: u64, outcomes: &mut Vec<RequestOutcome>) {
        let t = &mut self.tenants[a.model];
        let refused = |id: u64, arrival: &Arrival, q: Option<&Queued>, d: Disposition| {
            // Shed outcomes describe the *old* queued request; rejected
            // outcomes describe the refused arrival itself.
            let (arr, enq, dl) = match q {
                Some(q) => (q.arrival_ns, q.enqueue_ns, q.deadline_ns),
                None => (arrival.arrival_ns, now, arrival.deadline_ns),
            };
            RequestOutcome {
                id,
                model: arrival.model,
                arrival_ns: arr,
                enqueue_ns: enq,
                start_ns: 0,
                finish_ns: now,
                batch_id: NO_BATCH,
                batch_size: 0,
                deadline_ns: dl,
                retries: 0,
                disposition: d,
            }
        };
        if t.queue.len() >= t.cfg.queue_cap {
            match t.cfg.admission {
                AdmissionPolicy::RejectNew => {
                    outcomes.push(refused(a.id, a, None, Disposition::Rejected));
                    return;
                }
                AdmissionPolicy::ShedOldest => {
                    let old = t.queue.pop_front().expect("full queue has a front");
                    outcomes.push(refused(old.id, a, Some(&old), Disposition::Shed));
                }
            }
        }
        t.queue.push_back(Queued {
            id: a.id,
            arrival_ns: a.arrival_ns,
            enqueue_ns: now,
            deadline_ns: a.deadline_ns,
            input_seed: a.input_seed,
            retries: 0,
        });
        t.max_depth = t.max_depth.max(t.queue.len() as u64);
    }

    /// Round-robin pick of the next tenant with a closed batch window
    /// (quarantined tenants keep queueing but never launch).
    fn pick_ready(&mut self, now: u64) -> Option<usize> {
        let n = self.tenants.len();
        for i in 0..n {
            let m = (self.rr_cursor + i) % n;
            if self.tenants[m].ready(now) && !self.tenants[m].quarantined() {
                self.rr_cursor = (m + 1) % n;
                return Some(m);
            }
        }
        None
    }

    /// Whether tenant `m`'s canary should run ahead of its next launch.
    fn canary_due(&self, m: usize, now: u64) -> bool {
        let Some(hcfg) = self.cfg.health else {
            return false;
        };
        let h = self.tenants[m].health.as_ref().expect("health state");
        h.force_canary
            || h.probes == 0
            || now >= h.last_canary_ns.saturating_add(hcfg.canary_period_ns)
    }

    /// Runs tenant `m`'s golden probe on its *active* network and
    /// returns whether the logits digest matched, plus the probe's
    /// modeled engine time.
    fn run_canary(&mut self, m: usize, now: u64) -> (bool, u64) {
        let overhead = self.cfg.batch_overhead_ns;
        let t = &mut self.tenants[m];
        let net = t.faulty.unwrap_or(t.net);
        let h = t.health.as_mut().expect("health state");
        let mut rng = StdRng::seed_from_u64(h.noise_seed);
        let mut arena = net.take_arena();
        net.infer_in(&h.golden_input, &mut rng, &mut arena);
        let digest = logits_digest(arena.output().data());
        let probe_ns = overhead + arena.report().latency_ns.max(0.0).round() as u64;
        net.give_arena(arena);
        h.probes += 1;
        h.last_canary_ns = now;
        h.force_canary = false;
        (digest == h.digest, probe_ns.max(1))
    }

    /// A passing canary confirms everything executed since the last
    /// pass: pending results become [`Disposition::Completed`] and
    /// their captures are released.
    fn on_canary_pass(
        &mut self,
        m: usize,
        outcomes: &mut Vec<RequestOutcome>,
        captures: &mut Vec<Capture>,
    ) {
        let t = &mut self.tenants[m];
        let h = t.health.as_mut().expect("health state");
        h.consecutive_failures = 0;
        for p in h.pending.drain(..) {
            outcomes.push(RequestOutcome {
                id: p.q.id,
                model: m,
                arrival_ns: p.q.arrival_ns,
                enqueue_ns: p.q.enqueue_ns,
                start_ns: p.start_ns,
                finish_ns: p.finish_ns,
                batch_id: p.batch_id,
                batch_size: p.batch_size,
                deadline_ns: p.q.deadline_ns,
                retries: p.q.retries,
                disposition: Disposition::Completed,
            });
        }
        captures.append(&mut h.pending_caps);
    }

    /// A failing canary voids everything executed since the last pass
    /// (nothing corrupt is ever released), re-queues the voided
    /// requests within their retry budget and deadline (front of the
    /// queue, original arrival metadata), times out the rest, and
    /// quarantines the tenant for the repair window — doubling per
    /// consecutive failure as the retry backoff. With `allow_retry`
    /// false (shutdown), every voided request times out.
    fn on_canary_fail(
        &mut self,
        m: usize,
        now: u64,
        allow_retry: bool,
        outcomes: &mut Vec<RequestOutcome>,
    ) {
        let hcfg = self.cfg.health.expect("health config");
        let t = &mut self.tenants[m];
        let h = t.health.as_mut().expect("health state");
        h.failures_at.push(now);
        let backoff = h.consecutive_failures.min(16);
        h.consecutive_failures += 1;
        let repair_ns = (hcfg.repair_ns << backoff).max(1);
        if allow_retry {
            h.quarantined_until = Some(now + repair_ns);
            h.quarantined_total_ns += repair_ns;
        }
        // Corrupt captures are dropped with the voided executions.
        h.pending_caps.clear();
        let pending = std::mem::take(&mut h.pending);
        // Reverse so push_front restores execution order ahead of
        // anything newly queued.
        for p in pending.into_iter().rev() {
            let mut q = p.q;
            let expired = q.deadline_ns != NO_DEADLINE && q.deadline_ns <= now;
            if allow_retry && q.retries < hcfg.max_retries && !expired {
                q.retries += 1;
                t.queue.push_front(q);
            } else {
                outcomes.push(RequestOutcome {
                    id: q.id,
                    model: m,
                    arrival_ns: q.arrival_ns,
                    enqueue_ns: q.enqueue_ns,
                    start_ns: 0,
                    finish_ns: now,
                    batch_id: NO_BATCH,
                    batch_size: 0,
                    deadline_ns: q.deadline_ns,
                    retries: q.retries,
                    disposition: Disposition::TimedOut,
                });
            }
        }
        t.max_depth = t.max_depth.max(t.queue.len() as u64);
    }

    /// Closes tenant `m`'s batch window, executes the batch across the
    /// pool, and charges the modeled engine-busy interval.
    fn launch<'env>(&mut self, m: usize, now: u64, pool: &WorkerPool<'env>) -> InFlight
    where
        'm: 'env,
    {
        let capture = self.cfg.capture;
        let infer_seed = self.cfg.infer_seed;
        let batch_id = self.next_batch_id;
        self.next_batch_id += 1;
        let (requests, net) = {
            let t = &mut self.tenants[m];
            let k = t.queue.len().min(t.cfg.max_batch);
            t.batches += 1;
            // Dispatch goes to the active network — the faulty twin
            // while an injected fault is live (the canary's job is to
            // catch exactly this before results are released).
            (t.queue.drain(..k).collect::<Vec<_>>(), t.active_net())
        };
        let (c, h, w) = net.input_shape();
        // One job per request: per-request RNG stream + recycled arena,
        // exactly the batched engine's discipline — which is why the
        // result cannot depend on batch composition or worker count.
        let jobs: Vec<_> = requests
            .iter()
            .map(|q| {
                let x = Tensor::rand_uniform(
                    &[1, c, h, w],
                    0.0,
                    1.0,
                    &mut StdRng::seed_from_u64(q.input_seed),
                );
                let id = q.id;
                move || {
                    let mut rng =
                        StdRng::seed_from_u64(sample_stream_seed(infer_seed, id as usize));
                    let mut arena = net.take_arena();
                    net.infer_in(&x, &mut rng, &mut arena);
                    arena
                }
            })
            .collect();
        let arenas = pool.run(jobs);
        let mut service_ns = self.cfg.batch_overhead_ns;
        let mut caps = Vec::new();
        for (q, arena) in requests.iter().zip(arenas) {
            // The modeled chip latency of this request is the engine
            // time it occupies; floats only feed the u64 timeline
            // through one deterministic rounding.
            service_ns += arena.report().latency_ns.max(0.0).round() as u64;
            if capture {
                caps.push(Capture {
                    id: q.id,
                    logits: arena.output().data().to_vec(),
                    exec: arena.report().clone(),
                });
            }
            net.give_arena(arena);
        }
        InFlight {
            model: m,
            batch_id,
            start_ns: now,
            done_ns: now + service_ns.max(1),
            requests,
            captures: caps,
        }
    }
}
