//! Request outcomes and the aggregated [`ServeReport`].
//!
//! Every request the broker ever sees ends as exactly one
//! [`RequestOutcome`] — completed, shed, rejected, or timed out — so
//! the report's accounting identity
//! `offered == completed + shed + rejected + timed_out` holds by
//! construction and is re-checked by the simulation suite. Timed-out is
//! distinct from the admission-time dispositions: it marks a request
//! the broker *accepted* but could not complete in time — its deadline
//! expired while queued, or its retry budget ran out after a failed
//! health canary voided its batch (see [`super::broker`]). Retries are
//! audited per request ([`RequestOutcome::retries`]) and summed per
//! model. The report
//! aggregates outcomes per model into latency percentiles, a log₂
//! latency histogram, sustained QPS and batching/queue statistics, and
//! serializes to the shim's JSON tree: all counters ride exact integer
//! variants and all derived floats are pure functions of them, so the
//! rendered document is **byte-stable** for identical simulations.

use serde::json::Value as Json;
use serde::Serialize;

use super::loadgen::NO_DEADLINE;

/// Batch-id sentinel for requests that never reached a batch.
pub const NO_BATCH: u64 = u64::MAX;

/// What finally happened to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Executed and returned a result.
    Completed,
    /// Dropped from a full queue by the shed-oldest admission policy.
    Shed,
    /// Refused at admission by the reject-new policy.
    Rejected,
    /// Accepted but never completed: the deadline expired before the
    /// request reached an engine, or a failed health canary voided its
    /// execution and the retry budget ran out. Distinct from
    /// [`Disposition::Shed`]/[`Disposition::Rejected`], which refuse at
    /// admission time.
    TimedOut,
}

impl Disposition {
    /// Stable lowercase name used in serialized reports.
    pub fn name(&self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::Shed => "shed",
            Disposition::Rejected => "rejected",
            Disposition::TimedOut => "timed_out",
        }
    }
}

/// The full per-request audit record the broker emits.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Trace-wide request id.
    pub id: u64,
    /// Target model index (deployment order).
    pub model: usize,
    /// Arrival time from the trace, ns.
    pub arrival_ns: u64,
    /// Time the request entered its model's admission queue, ns (equals
    /// the shed/reject time for requests that never made it).
    pub enqueue_ns: u64,
    /// Batch launch time, ns (0 for shed/rejected requests).
    pub start_ns: u64,
    /// Completion time (or shed/reject time), ns.
    pub finish_ns: u64,
    /// Id of the batch that executed the request ([`NO_BATCH`] for
    /// shed/rejected requests).
    pub batch_id: u64,
    /// Size of that batch (0 for shed/rejected requests).
    pub batch_size: usize,
    /// Absolute deadline, ns ([`NO_DEADLINE`] for best-effort).
    pub deadline_ns: u64,
    /// Times the request was re-queued for execution after a failed
    /// health canary voided a batch it ran in (0 on the happy path).
    pub retries: u32,
    /// Final disposition.
    pub disposition: Disposition,
}

impl RequestOutcome {
    /// Whether the request completed within its deadline (best-effort
    /// requests always hit; shed/rejected requests never do).
    pub fn deadline_hit(&self) -> bool {
        self.disposition == Disposition::Completed
            && (self.deadline_ns == NO_DEADLINE || self.finish_ns <= self.deadline_ns)
    }

    /// End-to-end latency (arrival to completion), ns; `None` unless
    /// the request completed.
    pub fn latency_ns(&self) -> Option<u64> {
        (self.disposition == Disposition::Completed)
            .then(|| self.finish_ns.saturating_sub(self.arrival_ns))
    }
}

/// Aggregated serving statistics of one deployed model (one tenant).
#[derive(Debug, Clone)]
pub struct ModelServeStats {
    /// Model name (deployment name).
    pub name: String,
    /// Requests the trace offered to this model.
    pub offered: u64,
    /// Requests that executed and returned a result.
    pub completed: u64,
    /// Requests dropped by shed-oldest admission.
    pub shed: u64,
    /// Requests refused by reject-new admission.
    pub rejected: u64,
    /// Accepted requests that expired in queue or exhausted their retry
    /// budget after failed canaries.
    pub timed_out: u64,
    /// Total re-executions across this model's requests (canary-voided
    /// batches re-queued for retry).
    pub retried: u64,
    /// Completed requests that met their deadline.
    pub deadline_hits: u64,
    /// Completed requests that missed their deadline.
    pub deadline_misses: u64,
    /// Batches launched for this model.
    pub batches: u64,
    /// Largest batch launched.
    pub max_batch: u64,
    /// Deepest the admission queue ever got (bounded by the queue cap).
    pub max_queue_depth: u64,
    /// Latency percentiles over completed requests (nearest-rank), ns.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// Worst-case latency, ns.
    pub max_ns: u64,
    /// Completed requests per simulated second, over the trace horizon.
    pub sustained_qps: f64,
    /// Log₂ latency histogram: `(upper_bound_ns, count)` per non-empty
    /// bucket, bucket `k` covering `[2^(k-1), 2^k)`.
    pub latency_hist: Vec<(u64, u64)>,
}

impl ModelServeStats {
    fn json(&self) -> Json {
        Json::obj([
            ("model", Json::str(self.name.clone())),
            ("offered", self.offered.to_json()),
            ("completed", self.completed.to_json()),
            ("shed", self.shed.to_json()),
            ("rejected", self.rejected.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("retried", self.retried.to_json()),
            ("deadline_hits", self.deadline_hits.to_json()),
            ("deadline_misses", self.deadline_misses.to_json()),
            ("batches", self.batches.to_json()),
            ("max_batch", self.max_batch.to_json()),
            ("max_queue_depth", self.max_queue_depth.to_json()),
            (
                "mean_batch",
                Json::Num(if self.batches == 0 {
                    0.0
                } else {
                    self.completed as f64 / self.batches as f64
                }),
            ),
            ("p50_ns", self.p50_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
            ("p99_ns", self.p99_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
            ("sustained_qps", Json::Num(self.sustained_qps)),
            (
                "latency_hist",
                Json::Arr(
                    self.latency_hist
                        .iter()
                        .map(|&(le, n)| {
                            Json::obj([("le_ns", le.to_json()), ("count", n.to_json())])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The aggregated result of one serving simulation.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The simulation seed (load generator + per-request streams).
    pub seed: u64,
    /// Simulated horizon: the last event's timestamp, ns.
    pub horizon_ns: u64,
    /// Total requests offered across all models.
    pub offered: u64,
    /// Total completed.
    pub completed: u64,
    /// Total shed.
    pub shed: u64,
    /// Total rejected.
    pub rejected: u64,
    /// Total timed out (accepted, never completed).
    pub timed_out: u64,
    /// Total re-executions after canary-voided batches.
    pub retried: u64,
    /// Per-model statistics, in deployment order.
    pub models: Vec<ModelServeStats>,
}

impl ServeReport {
    /// Aggregates `outcomes` into per-model statistics. `names` is the
    /// deployment-order model name list; `max_depths`/`batches` are the
    /// broker's per-tenant high-water marks and batch counters.
    pub fn build(
        seed: u64,
        names: &[String],
        outcomes: &[RequestOutcome],
        max_depths: &[u64],
        batches: &[u64],
    ) -> Self {
        assert_eq!(names.len(), max_depths.len());
        assert_eq!(names.len(), batches.len());
        let horizon_ns = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
        let mut models = Vec::with_capacity(names.len());
        for (m, name) in names.iter().enumerate() {
            let mine = || outcomes.iter().filter(move |o| o.model == m);
            let count = |d: Disposition| mine().filter(|o| o.disposition == d).count() as u64;
            let completed = count(Disposition::Completed);
            let mut latencies: Vec<u64> = mine().filter_map(RequestOutcome::latency_ns).collect();
            latencies.sort_unstable();
            let pct = |q: f64| -> u64 {
                if latencies.is_empty() {
                    return 0;
                }
                // Nearest-rank: smallest latency covering fraction q.
                let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
                latencies[rank - 1]
            };
            let mut hist = std::collections::BTreeMap::<u64, u64>::new();
            for &l in &latencies {
                let bucket = if l == 0 {
                    0
                } else {
                    64 - u64::from(l.leading_zeros())
                };
                *hist.entry(bucket).or_default() += 1;
            }
            models.push(ModelServeStats {
                name: name.clone(),
                offered: mine().count() as u64,
                completed,
                shed: count(Disposition::Shed),
                rejected: count(Disposition::Rejected),
                timed_out: count(Disposition::TimedOut),
                retried: mine().map(|o| u64::from(o.retries)).sum(),
                deadline_hits: mine().filter(|o| o.deadline_hit()).count() as u64,
                deadline_misses: mine()
                    .filter(|o| o.disposition == Disposition::Completed && !o.deadline_hit())
                    .count() as u64,
                batches: batches[m],
                max_batch: mine().map(|o| o.batch_size as u64).max().unwrap_or(0),
                max_queue_depth: max_depths[m],
                p50_ns: pct(0.50),
                p95_ns: pct(0.95),
                p99_ns: pct(0.99),
                max_ns: latencies.last().copied().unwrap_or(0),
                sustained_qps: if horizon_ns == 0 {
                    0.0
                } else {
                    completed as f64 * 1e9 / horizon_ns as f64
                },
                latency_hist: hist
                    .into_iter()
                    .map(|(bucket, n)| (if bucket == 0 { 0 } else { 1u64 << bucket }, n))
                    .collect(),
            });
        }
        ServeReport {
            seed,
            horizon_ns,
            offered: outcomes.len() as u64,
            completed: models.iter().map(|s| s.completed).sum(),
            shed: models.iter().map(|s| s.shed).sum(),
            rejected: models.iter().map(|s| s.rejected).sum(),
            timed_out: models.iter().map(|s| s.timed_out).sum(),
            retried: models.iter().map(|s| s.retried).sum(),
            models,
        }
    }

    /// Serializes the report to the shim's JSON tree (exact integers,
    /// insertion-ordered fields — byte-stable for identical inputs).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("horizon_ns", self.horizon_ns.to_json()),
            ("offered", self.offered.to_json()),
            ("completed", self.completed.to_json()),
            ("shed", self.shed.to_json()),
            ("rejected", self.rejected.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("retried", self.retried.to_json()),
            (
                "models",
                Json::Arr(self.models.iter().map(ModelServeStats::json).collect()),
            ),
        ])
    }

    /// The rendered JSON document (see [`ServeReport::to_json`]).
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, model: usize, finish: u64, d: Disposition) -> RequestOutcome {
        RequestOutcome {
            id,
            model,
            arrival_ns: id * 10,
            enqueue_ns: id * 10,
            start_ns: finish.saturating_sub(5),
            finish_ns: finish,
            batch_id: if d == Disposition::Completed {
                0
            } else {
                NO_BATCH
            },
            batch_size: if d == Disposition::Completed { 1 } else { 0 },
            deadline_ns: NO_DEADLINE,
            retries: 0,
            disposition: d,
        }
    }

    #[test]
    fn accounting_identity_holds() {
        let outcomes = vec![
            outcome(0, 0, 100, Disposition::Completed),
            outcome(1, 0, 40, Disposition::Shed),
            outcome(2, 1, 60, Disposition::Rejected),
            outcome(3, 1, 200, Disposition::Completed),
            RequestOutcome {
                retries: 2,
                ..outcome(4, 0, 90, Disposition::TimedOut)
            },
        ];
        let names = vec!["a".to_string(), "b".to_string()];
        let r = ServeReport::build(7, &names, &outcomes, &[2, 1], &[1, 1]);
        assert_eq!(r.offered, 5);
        assert_eq!(r.completed + r.shed + r.rejected + r.timed_out, r.offered);
        for m in &r.models {
            assert_eq!(m.completed + m.shed + m.rejected + m.timed_out, m.offered);
        }
        assert_eq!(r.timed_out, 1);
        assert_eq!(r.retried, 2);
        assert_eq!(r.models[0].retried, 2);
        // A timed-out request neither hits its deadline nor reports a
        // latency — only completions feed the percentile pool.
        assert!(!outcomes[4].deadline_hit());
        assert_eq!(outcomes[4].latency_ns(), None);
        assert_eq!(r.horizon_ns, 200);
        assert!(r.models[0].sustained_qps > 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let outcomes: Vec<RequestOutcome> = (0..100)
            .map(|i| RequestOutcome {
                arrival_ns: 0,
                finish_ns: (i + 1) * 10, // latencies 10, 20, ..., 1000
                ..outcome(i, 0, 0, Disposition::Completed)
            })
            .collect();
        let r = ServeReport::build(0, &["m".to_string()], &outcomes, &[1], &[100]);
        assert_eq!(r.models[0].p50_ns, 500);
        assert_eq!(r.models[0].p95_ns, 950);
        assert_eq!(r.models[0].p99_ns, 990);
        assert_eq!(r.models[0].max_ns, 1000);
        let total: u64 = r.models[0].latency_hist.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 100, "histogram covers every completed request");
    }

    #[test]
    fn render_is_stable_across_calls() {
        let outcomes = vec![outcome(0, 0, 123, Disposition::Completed)];
        let r = ServeReport::build(9, &["m".to_string()], &outcomes, &[1], &[1]);
        assert_eq!(r.render(), r.render());
        assert!(r.render().contains("\"sustained_qps\""));
    }
}
