//! A trainable YOLO-style single-scale detector (Fig. 12 experiments).
//!
//! The paper evaluates YOLoC on object detection by transferring a
//! COCO-pretrained YOLO to PASCAL-VOC-like target tasks under the same
//! four strategies as classification. This module provides the reduced
//! scale equivalent: a conv backbone (plain / ReBranch / frozen) plus a
//! 1x1 prediction head emitting one box per grid cell
//! `(objectness, tx, ty, tw, th, class logits...)`, trained with a
//! YOLOv1-style loss and evaluated with the VOC mAP protocol from
//! `yoloc-data`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rebranch::{ReBranchConv, ReBranchRatios};
use crate::tiny_models::{ConvBlock, ConvUnit};
#[cfg(test)]
use yoloc_data::detection::DET_W;
use yoloc_data::detection::{
    mean_average_precision, BBox, Detection, DetectionTask, GtObject, DET_C, DET_H,
};
use yoloc_tensor::layers::Conv2d;
use yoloc_tensor::{Layer, LayerExt, Tensor};

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Transfer strategy for the detector backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorStrategy {
    /// All layers trainable (SRAM-CiM baseline).
    AllSram,
    /// Backbone frozen; only the prediction head trains ("Only Prediction
    /// Trainable", Option II in the Fig. 12 table).
    PredictionOnly,
    /// ReBranch backbone + trainable head (proposed).
    ReBranch {
        /// Channel compression ratio D.
        d: usize,
        /// Channel decompression ratio U.
        u: usize,
    },
}

/// A small single-scale detector.
pub struct TinyYoloDetector {
    backbone: Vec<ConvBlock>,
    head: Conv2d,
    grid: usize,
    classes: usize,
    channels: Vec<usize>,
}

impl TinyYoloDetector {
    /// Builds an all-trainable detector with the given backbone widths.
    /// Each stage pools 2x, so the output grid is
    /// `DET_H / 2^stages`.
    pub fn new<R: Rng + ?Sized>(channels: &[usize], classes: usize, rng: &mut R) -> Self {
        let mut blocks = Vec::new();
        let mut prev = DET_C;
        for (i, &c) in channels.iter().enumerate() {
            let conv = Conv2d::new(&format!("bb{i}"), prev, c, 3, 1, 1, false, rng);
            blocks.push(ConvBlock::bare(ConvUnit::Plain(conv), true, false));
            prev = c;
        }
        let grid = DET_H >> channels.len();
        assert!(grid >= 2, "too many stages for the image size");
        let head = Conv2d::new("head", prev, 5 + classes, 1, 1, 0, true, rng);
        TinyYoloDetector {
            backbone: blocks,
            head,
            grid,
            classes,
            channels: channels.to_vec(),
        }
    }

    /// Output grid side length.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Rebuilds this detector under a transfer strategy with a fresh head
    /// for `classes` target classes.
    pub fn with_strategy<R: Rng + ?Sized>(
        &self,
        strategy: DetectorStrategy,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let mut blocks = Vec::new();
        for (i, b) in self.backbone.iter().enumerate() {
            let w = match &b.unit {
                ConvUnit::Plain(c) => c.weight.value.clone(),
                ConvUnit::ReBranch(c) => c.trunk().weight.value.clone(),
                ConvUnit::Spwd(c) => c.frozen.weight.value.clone(),
            };
            let name = format!("bb{i}");
            let unit = match strategy {
                DetectorStrategy::AllSram => {
                    let mut c = Conv2d::new(&name, w.shape()[1], w.shape()[0], 3, 1, 1, false, rng);
                    c.weight.value = w;
                    ConvUnit::Plain(c)
                }
                DetectorStrategy::PredictionOnly => {
                    let mut c = Conv2d::new(&name, w.shape()[1], w.shape()[0], 3, 1, 1, false, rng);
                    c.weight.value = w;
                    c.freeze_all();
                    ConvUnit::Plain(c)
                }
                DetectorStrategy::ReBranch { d, u } => {
                    ConvUnit::ReBranch(ReBranchConv::from_pretrained(
                        &name,
                        w,
                        None,
                        1,
                        1,
                        ReBranchRatios { d, u },
                        rng,
                    ))
                }
            };
            blocks.push(ConvBlock::bare(unit, true, false));
        }
        let prev = *self.channels.last().expect("channels");
        TinyYoloDetector {
            backbone: blocks,
            head: Conv2d::new("head", prev, 5 + classes, 1, 1, 0, true, rng),
            grid: self.grid,
            classes,
            channels: self.channels.clone(),
        }
    }

    /// Raw prediction map `(N, 5 + classes, S, S)`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for b in &mut self.backbone {
            h = b.forward(&h, train);
        }
        self.head.forward(&h, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let mut g = self.head.backward(grad);
        for b in self.backbone.iter_mut().rev() {
            g = b.backward(&g);
        }
    }

    /// Trainable/total parameter counts.
    pub fn param_split(&self) -> (usize, usize) {
        let total = self.param_count();
        (self.trainable_param_count(), total)
    }

    /// Decodes predictions into detections with per-class NMS.
    pub fn detect(
        &mut self,
        x: &Tensor,
        image_id_base: usize,
        score_thresh: f32,
    ) -> Vec<Detection> {
        let out = self.forward(x, false);
        let n = out.shape()[0];
        let s = self.grid;
        let mut dets = Vec::new();
        for ni in 0..n {
            let mut img_dets: Vec<Detection> = Vec::new();
            for cy in 0..s {
                for cx in 0..s {
                    let obj = sigmoid(out.at(&[ni, 0, cy, cx]));
                    if obj < score_thresh {
                        continue;
                    }
                    let tx = sigmoid(out.at(&[ni, 1, cy, cx]));
                    let ty = sigmoid(out.at(&[ni, 2, cy, cx]));
                    let tw = sigmoid(out.at(&[ni, 3, cy, cx]));
                    let th = sigmoid(out.at(&[ni, 4, cy, cx]));
                    // Class softmax.
                    let mut best_c = 0;
                    let mut best_v = f32::NEG_INFINITY;
                    let mut denom = 0.0f32;
                    let max_logit = (0..self.classes)
                        .map(|c| out.at(&[ni, 5 + c, cy, cx]))
                        .fold(f32::NEG_INFINITY, f32::max);
                    for c in 0..self.classes {
                        let v = out.at(&[ni, 5 + c, cy, cx]);
                        denom += (v - max_logit).exp();
                        if v > best_v {
                            best_v = v;
                            best_c = c;
                        }
                    }
                    let p_class = (best_v - max_logit).exp() / denom;
                    let bbox = BBox {
                        cx: (cx as f32 + tx) / s as f32,
                        cy: (cy as f32 + ty) / s as f32,
                        w: tw,
                        h: th,
                    };
                    img_dets.push(Detection {
                        image_id: image_id_base + ni,
                        class: best_c,
                        score: obj * p_class,
                        bbox,
                    });
                }
            }
            // Greedy per-class NMS at IoU 0.5.
            img_dets.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut kept: Vec<Detection> = Vec::new();
            for d in img_dets {
                if kept
                    .iter()
                    .all(|k| k.class != d.class || k.bbox.iou(&d.bbox) < 0.5)
                {
                    kept.push(d);
                }
            }
            dets.extend(kept);
        }
        dets
    }

    /// One YOLO-loss training step over a batch; returns the loss.
    pub fn train_step(&mut self, images: &Tensor, gts: &[Vec<GtObject>], lr: f32) -> f32 {
        let out = self.forward(images, true);
        let (loss, grad) = self.yolo_loss(&out, gts);
        self.backward(&grad);
        yoloc_tensor::optim::clip_grad_norm(&mut self.params_mut_all(), 5.0);
        let opt = yoloc_tensor::optim::Sgd::new(lr).with_momentum(0.9);
        opt.step(&mut self.params_mut_all());
        loss
    }

    fn params_mut_all(&mut self) -> Vec<&mut yoloc_tensor::Param> {
        let mut v: Vec<&mut yoloc_tensor::Param> = self
            .backbone
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect();
        v.extend(self.head.params_mut());
        v
    }

    /// YOLOv1-style loss and its gradient w.r.t. the raw prediction map.
    fn yolo_loss(&self, out: &Tensor, gts: &[Vec<GtObject>]) -> (f32, Tensor) {
        let n = out.shape()[0];
        let s = self.grid;
        let lambda_coord = 5.0f32;
        let lambda_noobj = 0.5f32;
        let mut grad = Tensor::zeros(out.shape());
        let mut loss = 0.0f64;
        let norm = (n * s * s) as f32;
        for (ni, img_gts) in gts.iter().enumerate().take(n) {
            // Cell -> responsible gt (last one wins, like YOLOv1).
            let mut cell_gt: Vec<Option<&GtObject>> = vec![None; s * s];
            for g in img_gts {
                let cx = ((g.bbox.cx * s as f32) as usize).min(s - 1);
                let cy = ((g.bbox.cy * s as f32) as usize).min(s - 1);
                cell_gt[cy * s + cx] = Some(g);
            }
            for cy in 0..s {
                for cx in 0..s {
                    let obj_raw = out.at(&[ni, 0, cy, cx]);
                    let obj = sigmoid(obj_raw);
                    match cell_gt[cy * s + cx] {
                        Some(g) => {
                            // Objectness towards 1.
                            let d_obj = 2.0 * (obj - 1.0) * obj * (1.0 - obj) / norm;
                            loss += ((obj - 1.0) * (obj - 1.0)) as f64 / norm as f64;
                            *grad.at_mut(&[ni, 0, cy, cx]) = d_obj;
                            // Box coordinates.
                            let targets = [
                                g.bbox.cx * s as f32 - cx as f32,
                                g.bbox.cy * s as f32 - cy as f32,
                                g.bbox.w,
                                g.bbox.h,
                            ];
                            for (j, &t) in targets.iter().enumerate() {
                                let raw = out.at(&[ni, 1 + j, cy, cx]);
                                let v = sigmoid(raw);
                                let diff = v - t;
                                loss += (lambda_coord * diff * diff) as f64 / norm as f64;
                                *grad.at_mut(&[ni, 1 + j, cy, cx]) =
                                    lambda_coord * 2.0 * diff * v * (1.0 - v) / norm;
                            }
                            // Class cross-entropy (softmax over class logits).
                            let max_logit = (0..self.classes)
                                .map(|c| out.at(&[ni, 5 + c, cy, cx]))
                                .fold(f32::NEG_INFINITY, f32::max);
                            let mut denom = 0.0f32;
                            for c in 0..self.classes {
                                denom += (out.at(&[ni, 5 + c, cy, cx]) - max_logit).exp();
                            }
                            for c in 0..self.classes {
                                let p = (out.at(&[ni, 5 + c, cy, cx]) - max_logit).exp() / denom;
                                let t = if c == g.class { 1.0 } else { 0.0 };
                                if c == g.class {
                                    loss += -(p.max(1e-9).ln()) as f64 / norm as f64;
                                }
                                *grad.at_mut(&[ni, 5 + c, cy, cx]) = (p - t) / norm;
                            }
                        }
                        None => {
                            // Objectness towards 0, down-weighted.
                            let d_obj = lambda_noobj * 2.0 * obj * obj * (1.0 - obj) / norm;
                            loss += (lambda_noobj * obj * obj) as f64 / norm as f64;
                            *grad.at_mut(&[ni, 0, cy, cx]) = d_obj;
                        }
                    }
                }
            }
        }
        (loss as f32, grad)
    }
}

impl Layer for TinyYoloDetector {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        TinyYoloDetector::forward(self, x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = self.head.backward(grad_out);
        for b in self.backbone.iter_mut().rev() {
            g = b.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut yoloc_tensor::Param> {
        self.params_mut_all()
    }

    fn params(&self) -> Vec<&yoloc_tensor::Param> {
        let mut v: Vec<&yoloc_tensor::Param> =
            self.backbone.iter().flat_map(|b| b.params()).collect();
        v.extend(self.head.params());
        v
    }

    fn name(&self) -> String {
        format!(
            "TinyYoloDetector(grid={}, classes={})",
            self.grid, self.classes
        )
    }
}

/// Trains a detector on `task` for `steps` batches of `batch` images.
pub fn train_detector<R: Rng + ?Sized>(
    det: &mut TinyYoloDetector,
    task: &DetectionTask,
    steps: usize,
    batch: usize,
    lr: f32,
    rng: &mut R,
) -> f32 {
    let mut last = 0.0;
    for step in 0..steps {
        let data = task.dataset(batch, rng);
        let imgs: Vec<Tensor> = data.iter().map(|(i, _)| i.clone()).collect();
        let gts: Vec<Vec<GtObject>> = data.iter().map(|(_, g)| g.clone()).collect();
        let x = Tensor::stack(&imgs).expect("same shape");
        let step_lr = lr * (1.0 - 0.6 * step as f32 / steps as f32);
        last = det.train_step(&x, &gts, step_lr);
    }
    last
}

/// Evaluates VOC mAP@0.5 over `n_images` fresh images.
pub fn eval_map<R: Rng + ?Sized>(
    det: &mut TinyYoloDetector,
    task: &DetectionTask,
    n_images: usize,
    rng: &mut R,
) -> f32 {
    let data = task.dataset(n_images, rng);
    let mut gt = Vec::new();
    let mut dets = Vec::new();
    for (i, (img, gts)) in data.iter().enumerate() {
        for g in gts {
            gt.push((i, *g));
        }
        let x = Tensor::stack(std::slice::from_ref(img)).expect("one");
        dets.extend(det.detect(&x, i, 0.1));
    }
    mean_average_precision(&dets, &gt, task.classes, 0.5)
}

/// The detection transfer suite of Fig. 12: COCO stand-in pretraining and
/// three target domains.
pub struct DetectionSuite {
    /// COCO stand-in (pretrain).
    pub coco_like: DetectionTask,
    /// PASCAL-VOC stand-in.
    pub voc_like: DetectionTask,
    /// Pedestrian-detection stand-in.
    pub pedestrian_like: DetectionTask,
    /// Traffic-detection stand-in.
    pub traffic_like: DetectionTask,
}

impl DetectionSuite {
    /// Builds the suite deterministically.
    pub fn new(seed: u64) -> Self {
        DetectionSuite {
            coco_like: DetectionTask::generate("coco-like", 6, 0.0, seed, seed + 1),
            voc_like: DetectionTask::generate("voc-like", 4, 0.35, seed, seed + 2),
            pedestrian_like: DetectionTask::generate("pedestrian-like", 2, 0.3, seed, seed + 3),
            traffic_like: DetectionTask::generate("traffic-like", 3, 0.4, seed, seed + 4),
        }
    }
}

/// Pretrains the COCO-like base detector.
pub fn pretrain_detector(
    channels: &[usize],
    suite: &DetectionSuite,
    steps: usize,
    seed: u64,
) -> TinyYoloDetector {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut det = TinyYoloDetector::new(channels, suite.coco_like.classes, &mut rng);
    train_detector(&mut det, &suite.coco_like, steps, 16, 0.05, &mut rng);
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = TinyYoloDetector::new(&[8, 12, 16], 4, &mut rng);
        assert_eq!(det.grid(), 4);
        let x = Tensor::zeros(&[2, DET_C, DET_H, DET_W]);
        let y = det.forward(&x, false);
        assert_eq!(y.shape(), &[2, 9, 4, 4]);
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let task = DetectionTask::generate("t", 3, 0.0, 1, 2);
        let mut det = TinyYoloDetector::new(&[8, 12, 16], 3, &mut rng);
        let data = task.dataset(8, &mut rng);
        let imgs: Vec<Tensor> = data.iter().map(|(i, _)| i.clone()).collect();
        let gts: Vec<Vec<GtObject>> = data.iter().map(|(_, g)| g.clone()).collect();
        let x = Tensor::stack(&imgs).unwrap();
        let first = det.train_step(&x, &gts, 0.05);
        // Overfit the same batch.
        let mut last = first;
        for _ in 0..40 {
            last = det.train_step(&x, &gts, 0.05);
        }
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn training_improves_map() {
        let mut rng = StdRng::seed_from_u64(3);
        let task = DetectionTask::generate("t", 2, 0.0, 5, 6);
        let mut det = TinyYoloDetector::new(&[8, 12, 16], 2, &mut rng);
        let map_before = eval_map(&mut det, &task, 20, &mut rng);
        train_detector(&mut det, &task, 400, 16, 0.08, &mut rng);
        let map_after = eval_map(&mut det, &task, 40, &mut rng);
        assert!(
            map_after > map_before + 0.15 && map_after > 0.25,
            "mAP {map_before} -> {map_after}"
        );
    }

    #[test]
    fn strategies_control_trainability() {
        let mut rng = StdRng::seed_from_u64(4);
        let det = TinyYoloDetector::new(&[8, 12], 4, &mut rng);
        let frozen = det.with_strategy(DetectorStrategy::PredictionOnly, 3, &mut rng);
        let (train_f, total_f) = frozen.param_split();
        assert!(train_f < total_f / 4, "{train_f} of {total_f}");
        let rb = det.with_strategy(DetectorStrategy::ReBranch { d: 2, u: 2 }, 3, &mut rng);
        let (train_r, _) = rb.param_split();
        assert!(train_r > train_f, "rebranch must add trainable capacity");
        let all = det.with_strategy(DetectorStrategy::AllSram, 3, &mut rng);
        let (train_a, total_a) = all.param_split();
        assert_eq!(train_a, total_a);
    }
}
