//! Quantized convolution executed on the ROM-CiM macro.
//!
//! This is the deployment path of Fig. 9: a convolution's weights are
//! quantized per-channel to 8 bits, lowered to a `(out_ch, in_ch*k*k)`
//! matrix, bit-plane-decomposed and mask-programmed into analog subarrays;
//! at run time activations are affine-quantized, driven through the
//! bit-serial datapath, and the ADC results are dequantized with
//! zero-point correction. With the paper's 5-bit-ADC design point the
//! integer arithmetic is exact, so the only deviation from a software
//! conv is the quantization itself — the basis for the paper's "almost no
//! accuracy loss" claim, which the integration tests verify end to end.

use rand::Rng;

use yoloc_cim::macro_model::{MacroParams, MvmStats, RomMvm};
use yoloc_quant::{calibrate_affine, PerChannelQuant, QuantParams};
use yoloc_tensor::ops::{im2col, Conv2dGeometry};
use yoloc_tensor::Tensor;

/// A convolution compiled onto ROM-CiM subarrays.
pub struct CimConv2d {
    engine: RomMvm,
    /// Per-output-channel symmetric weight scales.
    channel_scales: Vec<f32>,
    /// Per-output-channel weight-code row sums (zero-point correction).
    row_sums: Vec<i64>,
    /// Activation quantization parameters.
    pub act_params: QuantParams,
    geom: Conv2dGeometry,
    out_channels: usize,
}

impl CimConv2d {
    /// Compiles `weight` (`(OC, C, k, k)`) into a programmed macro.
    ///
    /// `calibration` tensors determine the activation quantization range
    /// (include zero automatically).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-4.
    pub fn compile(
        weight: &Tensor,
        stride: usize,
        padding: usize,
        calibration: &[&Tensor],
        params: MacroParams,
    ) -> Self {
        assert_eq!(weight.ndim(), 4, "weight must be (OC, C, k, k)");
        let (oc, c, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        let patch = c * k * k;
        let pc = PerChannelQuant::quantize(weight, params.weight_bits);
        let row_sums: Vec<i64> = (0..oc)
            .map(|o| {
                pc.values[o * patch..(o + 1) * patch]
                    .iter()
                    .map(|&v| v as i64)
                    .sum()
            })
            .collect();
        let channel_scales: Vec<f32> = pc.channel_params.iter().map(|p| p.scale).collect();
        let engine = RomMvm::program(params, &pc.values, oc, patch);
        let act_params = calibrate_affine(calibration, params.act_bits);
        CimConv2d {
            engine,
            channel_scales,
            row_sums,
            act_params,
            geom: Conv2dGeometry {
                in_channels: c,
                kernel: k,
                stride,
                padding,
            },
            out_channels: oc,
        }
    }

    /// Number of physical subarrays programmed.
    pub fn subarrays(&self) -> usize {
        self.engine.subarrays_used()
    }

    /// Enables or disables the macro's popcount fast path (see
    /// [`RomMvm::set_fast_path`]). Disabling it forces every forward pass
    /// through the cell-accurate analog reference path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.engine.set_fast_path(enabled);
    }

    /// Runs the convolution on `x` (`(N, C, H, W)`), returning the output
    /// feature map and the accumulated macro statistics.
    pub fn forward<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, MvmStats) {
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.geom.output_hw(h, w);
        let cols = im2col(x, &self.geom);
        let patch = self.geom.patch_len();
        let positions = cols.shape()[1];
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let mut stats = MvmStats::default();
        for pos in 0..positions {
            // Quantize this activation column.
            let codes: Vec<i32> = (0..patch)
                .map(|r| self.act_params.quantize_value(cols.at(&[r, pos])))
                .collect();
            let (acc, s) = self.engine.mvm(&codes, rng);
            stats.analog_evaluations += s.analog_evaluations;
            stats.adc_conversions += s.adc_conversions;
            stats.wl_pulses += s.wl_pulses;
            stats.energy_pj += s.energy_pj;
            stats.latency_ns += s.latency_ns;
            let ni = pos / (oh * ow);
            let p = pos % (oh * ow);
            for (o, &a) in acc.iter().enumerate().take(self.out_channels) {
                let v = self.channel_scales[o]
                    * self.act_params.scale
                    * (a - self.act_params.zero_point as i64 * self.row_sums[o]) as f32;
                *out.at_mut(&[ni, o, p / ow, p % ow]) = v;
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_tensor::ops::conv2d_reference;

    #[test]
    fn cim_conv_matches_software_within_quantization() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let mut params = MacroParams::rom_paper();
        params.subarrays = 2;
        let conv = CimConv2d::compile(&w, 1, 1, &[&x], params);
        let (y, stats) = conv.forward(&x, &mut rng);
        let expect = conv2d_reference(&x, &w, None, 1, 1);
        let mag = expect.abs_max().max(1e-6);
        for (a, b) in y.data().iter().zip(expect.data()) {
            assert!(
                (a - b).abs() / mag < 0.03,
                "CiM {a} vs software {b} (mag {mag})"
            );
        }
        assert!(stats.analog_evaluations > 0);
        assert!(stats.energy_pj > 0.0);
    }

    #[test]
    fn noise_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 5, 5], 0.0, 1.0, &mut rng);
        let mut params = MacroParams::rom_paper();
        params.noise_sigma = 0.3;
        let conv = CimConv2d::compile(&w, 1, 1, &[&x], params);
        let (y, _) = conv.forward(&x, &mut rng);
        let expect = conv2d_reference(&x, &w, None, 1, 1);
        let mag = expect.abs_max().max(1e-6);
        // Noisy analog readout: bounded but nonzero error.
        let mut max_rel = 0.0f32;
        for (a, b) in y.data().iter().zip(expect.data()) {
            max_rel = max_rel.max((a - b).abs() / mag);
        }
        assert!(max_rel > 0.0, "noise should perturb the output");
        assert!(max_rel < 0.5, "noise error out of control: {max_rel}");
    }
}
