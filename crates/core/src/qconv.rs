//! Quantized convolution and linear layers executed on an MVM backend.
//!
//! This is the deployment path of Fig. 9: a layer's weights are quantized
//! per-channel to 8 bits, lowered to a `(out_ch, in_ch*k*k)` (conv) or
//! `(out_features, in_features)` (linear) matrix and programmed onto an
//! [`MvmBackend`] — the analog reference path, the popcount fast path, or
//! the pure-software integer reference, selected per layer
//! ([`yoloc_cim::BackendKind`]). At run time activations are
//! affine-quantized, driven through the backend, and the results are
//! dequantized with zero-point correction. With the paper's 5-bit-ADC
//! design point the integer arithmetic is exact, so the only deviation
//! from a software layer is the quantization itself — the basis for the
//! paper's "almost no accuracy loss" claim, which the integration tests
//! verify end to end.

use rand::Rng;

use yoloc_cim::backend::{
    program_backend, program_backend_faulted, BackendKind, DynRng, MvmBackend, MvmScratch,
};
use yoloc_cim::faults::{FaultContext, FaultPlan, FaultSpec};
use yoloc_cim::kernels::{transposed_pad, MatmulLayout};
use yoloc_cim::macro_model::{MacroParams, MvmStats};
use yoloc_quant::{calibrate_affine, PerChannelQuant, QuantParams};
use yoloc_tensor::ops::{im2col, im2col_into, Conv2dGeometry};
use yoloc_tensor::Tensor;

use serde::json::Value as Json;
use serde::{Deserialize, Serialize};

/// Reusable staging for one CiM layer execution: the im2col patch matrix,
/// the quantized activation codes of the tile in flight, the integer MVM
/// accumulators, and the backend's bit-plane staging.
///
/// One `CimScratch` serves every layer of a deployment in turn (layers
/// run serially, and each call fully overwrites what it uses), which is
/// how the arena executor keeps steady-state inference allocation-free:
/// all four buffers grow on first use and keep their capacity across ops,
/// samples and repeated `infer` calls.
#[derive(Debug, Default)]
pub struct CimScratch {
    /// Lowered `(patch, positions)` im2col matrix (convs only).
    cols: Vec<f32>,
    /// Quantized activation codes of the tile in flight, vector-major.
    codes: Vec<i32>,
    /// Integer accumulators of the tile in flight, vector-major.
    accs: Vec<i64>,
    /// Bit-plane staging for [`MvmBackend::mvm_batch`].
    mvm: MvmScratch,
}

impl CimScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-channel dequantization state shared by conv and linear layers:
/// symmetric weight scales plus weight-code row sums for zero-point
/// correction.
struct Dequant {
    channel_scales: Vec<f32>,
    row_sums: Vec<i64>,
}

impl Dequant {
    fn from_quant(pc: &PerChannelQuant, outs: usize, ins: usize) -> Self {
        let row_sums: Vec<i64> = (0..outs)
            .map(|o| {
                pc.values[o * ins..(o + 1) * ins]
                    .iter()
                    .map(|&v| v as i64)
                    .sum()
            })
            .collect();
        Dequant {
            channel_scales: pc.channel_params.iter().map(|p| p.scale).collect(),
            row_sums,
        }
    }

    /// Dequantizes one accumulator value for output channel `o`.
    #[inline]
    fn value(&self, o: usize, acc: i64, act: &QuantParams) -> f32 {
        self.channel_scales[o] * act.scale * (acc - act.zero_point as i64 * self.row_sums[o]) as f32
    }
}

/// Everything needed to re-program an MVM backend deterministically:
/// the compile-time backend choice, macro parameters and quantized
/// weight codes. Retained by compiled layers so a plan can be serialized
/// and rebuilt bit-identically (the backends themselves own un-walkable
/// state like the analog array, so layers re-run [`program_backend`] on
/// deserialization instead of persisting the engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ProgramSpec {
    kind: BackendKind,
    params: MacroParams,
    outs: usize,
    ins: usize,
    codes: Vec<i32>,
    /// Fault-injection context the layer was programmed under. `None`
    /// compiles the pristine path — and is what every `yoloc-plan/1`
    /// document reads back as, which keeps the field backward
    /// compatible.
    faults: Option<LayerFaults>,
}

/// Per-layer fault record retained for re-programming: the fabric-wide
/// seeded fault spec plus this layer's physical subarray ids and the
/// chiplet-link slowdown it executes under. Re-running the programmer
/// with the same record reproduces the exact faulty engine, so faulted
/// plans serialize and rebuild bit-identically like pristine ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct LayerFaults {
    /// Seeded fabric-wide fault rates.
    pub spec: FaultSpec,
    /// Physical subarray ids in row-major tile order
    /// (`row_tile * col_tiles + col_tile`).
    pub phys_ids: Vec<u64>,
    /// Evaluation-latency multiplier from degraded links (1.0 = none).
    pub link_slowdown: f64,
}

impl ProgramSpec {
    fn program(&self) -> Box<dyn MvmBackend> {
        match &self.faults {
            None => program_backend(self.kind, self.params, &self.codes, self.outs, self.ins),
            Some(lf) => {
                let plan = FaultPlan::new(lf.spec);
                let ctx = FaultContext {
                    plan: &plan,
                    phys_ids: &lf.phys_ids,
                    link_slowdown: lf.link_slowdown,
                };
                program_backend_faulted(
                    self.kind,
                    self.params,
                    &self.codes,
                    self.outs,
                    self.ins,
                    &ctx,
                )
            }
        }
    }
}

/// Object field lookup + deserialize with field context in errors
/// (missing fields route through `Deserialize::from_missing`, so
/// `Option` fields default). Shared by the hand-written layer impls here
/// and the plan serializer in `compiler::serial`.
pub(crate) fn json_field<T: Deserialize>(v: &Json, name: &str) -> Result<T, String> {
    match v.get(name) {
        Some(x) => T::from_value(x).map_err(|e| format!("{name}: {e}")),
        None => T::from_missing(name),
    }
}

/// `QuantParams` lives in `yoloc-quant`, which has no serde dependency
/// (and the orphan rule forbids implementing the shim traits for it
/// here), so the field mapping is spelled out.
fn quant_params_to_json(p: &QuantParams) -> Json {
    Json::obj([
        ("scale", p.scale.to_json()),
        ("zero_point", p.zero_point.to_json()),
        ("bits", p.bits.to_json()),
        ("symmetric", p.symmetric.to_json()),
    ])
}

fn quant_params_from(v: &Json) -> Result<QuantParams, String> {
    Ok(QuantParams {
        scale: json_field(v, "scale")?,
        zero_point: json_field(v, "zero_point")?,
        bits: json_field(v, "bits")?,
        symmetric: json_field(v, "symmetric")?,
    })
}

/// Same story for `Conv2dGeometry` (`yoloc-tensor` has no serde dep).
fn geom_to_json(g: &Conv2dGeometry) -> Json {
    Json::obj([
        ("in_channels", g.in_channels.to_json()),
        ("kernel", g.kernel.to_json()),
        ("stride", g.stride.to_json()),
        ("padding", g.padding.to_json()),
    ])
}

fn geom_from(v: &Json) -> Result<Conv2dGeometry, String> {
    Ok(Conv2dGeometry {
        in_channels: json_field(v, "in_channels")?,
        kernel: json_field(v, "kernel")?,
        stride: json_field(v, "stride")?,
        padding: json_field(v, "padding")?,
    })
}

/// A convolution compiled onto an MVM backend.
pub struct CimConv2d {
    engine: Box<dyn MvmBackend>,
    dequant: Dequant,
    /// Activation quantization parameters.
    pub act_params: QuantParams,
    geom: Conv2dGeometry,
    out_channels: usize,
    /// Target tile count for [`CimConv2d::tile_ranges`] (1 = the whole
    /// position range as a single tile, the legacy serial walk).
    par_tiles: usize,
    /// Compile-time programming record, kept for plan serialization.
    program: ProgramSpec,
}

impl CimConv2d {
    /// Compiles `weight` (`(OC, C, k, k)`) onto the default
    /// [`BackendKind::Popcount`] backend (bit-identical to the analog
    /// reference whenever both apply, with automatic analog fallback for
    /// noisy macros).
    ///
    /// `calibration` tensors determine the activation quantization range
    /// (include zero automatically).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-4.
    pub fn compile(
        weight: &Tensor,
        stride: usize,
        padding: usize,
        calibration: &[&Tensor],
        params: MacroParams,
    ) -> Self {
        Self::compile_on(
            BackendKind::Popcount,
            weight,
            stride,
            padding,
            calibration,
            params,
        )
    }

    /// Compiles `weight` onto an explicitly chosen backend (the per-layer
    /// selection point of the graph compiler).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-4.
    pub fn compile_on(
        kind: BackendKind,
        weight: &Tensor,
        stride: usize,
        padding: usize,
        calibration: &[&Tensor],
        params: MacroParams,
    ) -> Self {
        Self::compile_on_with(kind, weight, stride, padding, calibration, params, None)
    }

    /// [`CimConv2d::compile_on`] with an optional fault-injection
    /// record (the graph compiler's entry when the deployment carries a
    /// fault map).
    pub(crate) fn compile_on_with(
        kind: BackendKind,
        weight: &Tensor,
        stride: usize,
        padding: usize,
        calibration: &[&Tensor],
        params: MacroParams,
        faults: Option<LayerFaults>,
    ) -> Self {
        assert_eq!(weight.ndim(), 4, "weight must be (OC, C, k, k)");
        let (oc, c, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        let patch = c * k * k;
        let pc = PerChannelQuant::quantize(weight, params.weight_bits);
        let dequant = Dequant::from_quant(&pc, oc, patch);
        let program = ProgramSpec {
            kind,
            params,
            outs: oc,
            ins: patch,
            codes: pc.values,
            faults,
        };
        let engine = program.program();
        let act_params = calibrate_affine(calibration, params.act_bits);
        CimConv2d {
            engine,
            dequant,
            act_params,
            geom: Conv2dGeometry {
                in_channels: c,
                kernel: k,
                stride,
                padding,
            },
            out_channels: oc,
            par_tiles: 1,
            program,
        }
    }

    /// Sets the target tile count the layer decomposes its output
    /// positions into (see [`CimConv2d::tile_ranges`]). The graph compiler
    /// derives this from the layer's placement (how many macro clusters of
    /// the mesh — or of its chiplet shard — serve the layer), so a single
    /// inference can fan across workers. The decomposition is a pure
    /// function of this hint and the input shape — never of the worker
    /// count — which is what keeps tiled execution bit-identical to the
    /// serial walk of the same plan.
    pub fn set_tile_hint(&mut self, tiles: usize) {
        self.par_tiles = tiles.max(1);
    }

    /// The contiguous position ranges `forward` folds over: `positions`
    /// output pixels split into (at most) the hinted tile count of
    /// near-equal chunks, in position order.
    pub fn tile_ranges(&self, positions: usize) -> Vec<(usize, usize)> {
        split_ranges(positions, self.par_tiles)
    }

    /// Allocation-free form of [`CimConv2d::tile_ranges`]: the same
    /// ranges as a lazy iterator (the arena executor's hot path).
    pub fn tile_range_iter(&self, positions: usize) -> impl Iterator<Item = (usize, usize)> {
        split_range_iter(positions, self.par_tiles)
    }

    /// Number of tiles [`CimConv2d::tile_ranges`] decomposes `positions`
    /// into, without materializing them.
    pub fn tile_count(&self, positions: usize) -> usize {
        if positions == 0 {
            0
        } else {
            self.par_tiles.clamp(1, positions)
        }
    }

    /// Number of physical subarrays programmed (0 on the software
    /// reference backend).
    pub fn subarrays(&self) -> usize {
        self.engine.subarrays_used()
    }

    /// The execution path this layer currently runs on.
    pub fn backend_name(&self) -> &'static str {
        self.engine.backend_name()
    }

    /// Enables or disables the backend's popcount fast path where one
    /// exists (see [`yoloc_cim::macro_model::RomMvm::set_fast_path`]).
    /// Disabling it forces hardware backends through the cell-accurate
    /// analog reference path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.engine.set_fast_path(enabled);
    }

    /// Moves a fault-aware layer onto new physical subarrays and
    /// re-programs its engine (the repair path after a subarray dies).
    /// No-op on layers compiled without a fault record.
    pub(crate) fn set_fault_ids(&mut self, phys_ids: &[u64]) {
        if let Some(lf) = &mut self.program.faults {
            lf.phys_ids = phys_ids.to_vec();
            self.engine = self.program.program();
        }
    }

    /// Lowers `x` (`(N, C, H, W)`) to its im2col activation matrix — the
    /// shared input every tile of this layer reads. Exposed so the
    /// scheduler can lower once and fan [`CimConv2d::forward_tile`] calls
    /// over the result.
    pub fn lower(&self, x: &Tensor) -> Tensor {
        im2col(x, &self.geom)
    }

    /// Output spatial dims for an `(H, W)` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        self.geom.output_hw(h, w)
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Runs output positions `lo..hi` of the lowered activation matrix
    /// (`cols`, from [`CimConv2d::lower`]) through the backend's
    /// tile-granular entry, returning the dequantized values in
    /// `[position][channel]` order plus the tile's statistics (folded from
    /// zero, in position order).
    ///
    /// This is the parallel unit of the tile scheduler; assembling tiles
    /// in range order reproduces [`CimConv2d::forward`] bit for bit.
    pub fn forward_tile<R: Rng + ?Sized>(
        &self,
        cols: &Tensor,
        lo: usize,
        hi: usize,
        rng: &mut R,
    ) -> (Vec<f32>, MvmStats) {
        self.forward_tile_with(cols, lo, hi, &mut CimScratch::new(), rng)
    }

    /// [`CimConv2d::forward_tile`] with caller-owned staging: the
    /// quantized codes, accumulators and bit-plane planes live in
    /// `scratch` and are reused across calls, so only the returned value
    /// vector is allocated. This is the entry the tile-parallel scheduler
    /// drives with scratch drawn from the deployment's arena pool.
    pub fn forward_tile_with<R: Rng + ?Sized>(
        &self,
        cols: &Tensor,
        lo: usize,
        hi: usize,
        scratch: &mut CimScratch,
        rng: &mut R,
    ) -> (Vec<f32>, MvmStats) {
        let positions = cols.shape()[1];
        let mut stats = MvmStats::default();
        self.run_tile(cols.data(), positions, lo, hi, &mut stats, scratch, rng);
        let mut vals = Vec::with_capacity((hi - lo) * self.out_channels);
        for acc in scratch.accs[..(hi - lo) * self.out_channels].chunks_exact(self.out_channels) {
            for (o, &a) in acc.iter().enumerate() {
                vals.push(self.dequant.value(o, a, &self.act_params));
            }
        }
        (vals, stats)
    }

    /// Quantizes positions `lo..hi` of a patch-major `(patch, positions)`
    /// matrix into `scratch.codes` and batches them through the backend
    /// into `scratch.accs`, merging the tile's statistics (folded from
    /// zero in vector order) into `stats`.
    ///
    /// The staging layout follows the backend's
    /// [`MvmBackend::batch_layout`] choice. The transposed panel is the
    /// natural fit for the patch-major im2col matrix: each activation
    /// row `r` quantizes the *contiguous* slice `cols[r*positions +
    /// lo..hi]` straight into its panel lane — one pass, no
    /// quantize-then-repack, and no strided gather (which is what the
    /// vector-major staging below pays per position).
    #[allow(clippy::too_many_arguments)] // one tile's full dataflow, all borrowed
    fn run_tile<R: Rng + ?Sized>(
        &self,
        cols: &[f32],
        positions: usize,
        lo: usize,
        hi: usize,
        stats: &mut MvmStats,
        scratch: &mut CimScratch,
        rng: &mut R,
    ) {
        let patch = self.geom.patch_len();
        let count = hi - lo;
        scratch.accs.clear();
        scratch.accs.resize(count * self.out_channels, 0);
        match self.engine.batch_layout(count) {
            MatmulLayout::Transposed => {
                let n_pad = transposed_pad(count);
                scratch.codes.clear();
                scratch.codes.resize(patch * n_pad, 0);
                for r in 0..patch {
                    let src = &cols[r * positions + lo..r * positions + hi];
                    let lane = &mut scratch.codes[r * n_pad..r * n_pad + count];
                    for (c, &v) in lane.iter_mut().zip(src) {
                        *c = self.act_params.quantize_value(v);
                    }
                }
                self.engine.mvm_batch_transposed(
                    &scratch.codes,
                    count,
                    n_pad,
                    &mut scratch.accs,
                    stats,
                    &mut scratch.mvm,
                    &mut DynRng(rng),
                );
            }
            MatmulLayout::RowMajor => {
                scratch.codes.clear();
                for pos in lo..hi {
                    for r in 0..patch {
                        scratch
                            .codes
                            .push(self.act_params.quantize_value(cols[r * positions + pos]));
                    }
                }
                self.engine.mvm_batch(
                    &scratch.codes,
                    count,
                    &mut scratch.accs,
                    stats,
                    &mut scratch.mvm,
                    &mut DynRng(rng),
                );
            }
        }
    }

    /// Arena forward: runs the convolution on a raw row-major
    /// `(n, C, h, w)` buffer, writing the dequantized `(n, OC, OH, OW)`
    /// feature map into `out` using only `scratch` storage — the
    /// allocation-free counterpart of [`CimConv2d::forward`], with the
    /// identical tile decomposition and per-tile statistics fold, so the
    /// returned stats (and every output bit) match it exactly.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the given dimensions.
    #[allow(clippy::too_many_arguments)] // raw-buffer entry: data + dims + staging
    pub fn forward_in<R: Rng + ?Sized>(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut CimScratch,
        rng: &mut R,
    ) -> MvmStats {
        let (oh, ow) = self.geom.output_hw(h, w);
        assert_eq!(out.len(), n * self.out_channels * oh * ow, "output length");
        let mut cols = std::mem::take(&mut scratch.cols);
        let (_, positions) = im2col_into(x, n, h, w, &self.geom, &mut cols);
        let mut stats = MvmStats::default();
        for (lo, hi) in self.tile_range_iter(positions) {
            let mut tile_stats = MvmStats::default();
            self.run_tile(&cols, positions, lo, hi, &mut tile_stats, scratch, rng);
            stats.merge(&tile_stats);
            // Dequantize and scatter, position-major, exactly as
            // `scatter_tile` lays tiles into the output map.
            for (v, acc) in scratch.accs[..(hi - lo) * self.out_channels]
                .chunks_exact(self.out_channels)
                .enumerate()
            {
                let pos = lo + v;
                let ni = pos / (oh * ow);
                let p = pos % (oh * ow);
                for (o, &a) in acc.iter().enumerate() {
                    out[((ni * self.out_channels + o) * oh + p / ow) * ow + p % ow] =
                        self.dequant.value(o, a, &self.act_params);
                }
            }
        }
        scratch.cols = cols;
        stats
    }

    /// Scatters one tile's `[position][channel]` values (from
    /// [`CimConv2d::forward_tile`] at range start `lo`) into the `(N, OC,
    /// OH, OW)` output map.
    pub fn scatter_tile(&self, out: &mut Tensor, lo: usize, vals: &[f32]) {
        let (oh, ow) = (out.shape()[2], out.shape()[3]);
        for (v, chunk) in vals.chunks_exact(self.out_channels).enumerate() {
            let pos = lo + v;
            let ni = pos / (oh * ow);
            let p = pos % (oh * ow);
            for (o, &val) in chunk.iter().enumerate() {
                *out.at_mut(&[ni, o, p / ow, p % ow]) = val;
            }
        }
    }

    /// Runs the convolution on `x` (`(N, C, H, W)`), returning the output
    /// feature map and the accumulated backend statistics.
    ///
    /// Execution is tile-structured: the output positions are split by
    /// [`CimConv2d::tile_ranges`] and folded **in tile order** (each tile
    /// folding its positions in order), so the serial walk and the
    /// tile-parallel scheduler perform the exact same floating-point
    /// reduction and agree bit for bit.
    #[must_use = "dropping the result discards the layer output and its measured statistics"]
    pub fn forward<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, MvmStats) {
        assert_eq!(x.ndim(), 4, "input must be (N, C, H, W)");
        assert_eq!(x.shape()[1], self.geom.in_channels, "channel mismatch");
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.geom.output_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let stats = self.forward_in(
            x.data(),
            n,
            h,
            w,
            out.data_mut(),
            &mut CimScratch::new(),
            rng,
        );
        (out, stats)
    }
}

/// Splits `0..len` into (at most) `parts` contiguous near-equal ranges in
/// order; empty when `len == 0`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    split_range_iter(len, parts).collect()
}

/// Lazy form of [`split_ranges`]: the identical ranges in the identical
/// order, without allocating the vector.
pub fn split_range_iter(len: usize, parts: usize) -> impl Iterator<Item = (usize, usize)> {
    let parts = if len == 0 { 0 } else { parts.clamp(1, len) };
    let base = len.checked_div(parts).unwrap_or(0);
    let rem = len.checked_rem(parts).unwrap_or(0);
    let mut lo = 0;
    (0..parts).map(move |i| {
        let hi = lo + base + usize::from(i < rem);
        let range = (lo, hi);
        lo = hi;
        range
    })
}

/// A fully-connected layer compiled onto an MVM backend (the prediction
/// head / classifier path of Fig. 9, always SRAM-CiM in the paper).
pub struct CimLinear {
    engine: Box<dyn MvmBackend>,
    dequant: Dequant,
    bias: Vec<f32>,
    /// Activation quantization parameters.
    pub act_params: QuantParams,
    outs: usize,
    ins: usize,
    /// Compile-time programming record, kept for plan serialization.
    program: ProgramSpec,
}

impl CimLinear {
    /// Compiles `weight` (`(outs, ins)`) with an optional bias vector onto
    /// the default popcount backend; see [`CimLinear::compile_on`].
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-2 or the bias length mismatches.
    pub fn compile(
        weight: &Tensor,
        bias: Option<&[f32]>,
        calibration: &[&Tensor],
        params: MacroParams,
    ) -> Self {
        Self::compile_on(BackendKind::Popcount, weight, bias, calibration, params)
    }

    /// Compiles onto an explicitly chosen backend. The bias is applied
    /// digitally after dequantization (biases are never stored in the
    /// arrays; see `mapping.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-2 or the bias length mismatches.
    pub fn compile_on(
        kind: BackendKind,
        weight: &Tensor,
        bias: Option<&[f32]>,
        calibration: &[&Tensor],
        params: MacroParams,
    ) -> Self {
        Self::compile_on_with(kind, weight, bias, calibration, params, None)
    }

    /// [`CimLinear::compile_on`] with an optional fault-injection
    /// record (the graph compiler's entry when the deployment carries a
    /// fault map).
    pub(crate) fn compile_on_with(
        kind: BackendKind,
        weight: &Tensor,
        bias: Option<&[f32]>,
        calibration: &[&Tensor],
        params: MacroParams,
        faults: Option<LayerFaults>,
    ) -> Self {
        assert_eq!(weight.ndim(), 2, "weight must be (outs, ins)");
        let (outs, ins) = (weight.shape()[0], weight.shape()[1]);
        let pc = PerChannelQuant::quantize(weight, params.weight_bits);
        let dequant = Dequant::from_quant(&pc, outs, ins);
        let bias = match bias {
            Some(b) => {
                assert_eq!(b.len(), outs, "bias length mismatch");
                b.to_vec()
            }
            None => vec![0.0; outs],
        };
        let program = ProgramSpec {
            kind,
            params,
            outs,
            ins,
            codes: pc.values,
            faults,
        };
        CimLinear {
            engine: program.program(),
            dequant,
            bias,
            act_params: calibrate_affine(calibration, params.act_bits),
            outs,
            ins,
            program,
        }
    }

    /// Output features.
    pub fn outs(&self) -> usize {
        self.outs
    }

    /// Number of physical subarrays programmed.
    pub fn subarrays(&self) -> usize {
        self.engine.subarrays_used()
    }

    /// The execution path this layer currently runs on.
    pub fn backend_name(&self) -> &'static str {
        self.engine.backend_name()
    }

    /// Enables or disables the backend's popcount fast path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.engine.set_fast_path(enabled);
    }

    /// Moves a fault-aware layer onto new physical subarrays and
    /// re-programs its engine (the repair path after a subarray dies).
    /// No-op on layers compiled without a fault record.
    pub(crate) fn set_fault_ids(&mut self, phys_ids: &[u64]) {
        if let Some(lf) = &mut self.program.faults {
            lf.phys_ids = phys_ids.to_vec();
            self.engine = self.program.program();
        }
    }

    /// Runs the layer on `feats` (`(N, ins)`) through the backend's
    /// tile-granular entry (the whole batch as one tile), returning the
    /// output and the layer's statistics folded from zero **in sample
    /// order** — the caller merges them into its accumulator exactly once,
    /// so serial, batched and tile-scheduled executions all perform the
    /// same reduction.
    ///
    /// # Panics
    ///
    /// Panics if `feats` is not `(N, ins)`.
    #[must_use = "dropping the result discards the layer output and its measured statistics"]
    pub fn forward<R: Rng + ?Sized>(&self, feats: &Tensor, rng: &mut R) -> (Tensor, MvmStats) {
        assert_eq!(feats.ndim(), 2, "features must be (N, ins)");
        let n = feats.shape()[0];
        let mut out = Tensor::zeros(&[n, self.outs]);
        let stats = self.forward_in(feats.data(), n, out.data_mut(), &mut CimScratch::new(), rng);
        (out, stats)
    }

    /// Arena forward: runs the layer on a raw row-major `(n, ins)` buffer,
    /// writing the biased, dequantized `(n, outs)` result into `out` using
    /// only `scratch` storage — the allocation-free counterpart of
    /// [`CimLinear::forward`] (the whole batch as one tile, statistics
    /// folded from zero in sample order), bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the given dimensions.
    pub fn forward_in<R: Rng + ?Sized>(
        &self,
        feats: &[f32],
        n: usize,
        out: &mut [f32],
        scratch: &mut CimScratch,
        rng: &mut R,
    ) -> MvmStats {
        assert_eq!(feats.len(), n * self.ins, "feature width mismatch");
        assert_eq!(out.len(), n * self.outs, "output length mismatch");
        scratch.accs.clear();
        scratch.accs.resize(n * self.outs, 0);
        let mut stats = MvmStats::default();
        match self.engine.batch_layout(n) {
            MatmulLayout::Transposed => {
                // Features arrive sample-major, so quantize straight into
                // the panel's strided lanes — still a single pass, no
                // quantize-then-repack.
                let n_pad = transposed_pad(n);
                scratch.codes.clear();
                scratch.codes.resize(self.ins * n_pad, 0);
                for (v, row) in feats.chunks_exact(self.ins).enumerate() {
                    for (i, &f) in row.iter().enumerate() {
                        scratch.codes[i * n_pad + v] = self.act_params.quantize_value(f);
                    }
                }
                self.engine.mvm_batch_transposed(
                    &scratch.codes,
                    n,
                    n_pad,
                    &mut scratch.accs,
                    &mut stats,
                    &mut scratch.mvm,
                    &mut DynRng(rng),
                );
            }
            MatmulLayout::RowMajor => {
                scratch.codes.clear();
                scratch
                    .codes
                    .extend(feats.iter().map(|&v| self.act_params.quantize_value(v)));
                self.engine.mvm_batch(
                    &scratch.codes,
                    n,
                    &mut scratch.accs,
                    &mut stats,
                    &mut scratch.mvm,
                    &mut DynRng(rng),
                );
            }
        }
        for (ni, acc) in scratch.accs.chunks_exact(self.outs).enumerate() {
            for (o, &a) in acc.iter().enumerate() {
                out[ni * self.outs + o] = self.dequant.value(o, a, &self.act_params) + self.bias[o];
            }
        }
        stats
    }
}

/// Serialization of a compiled conv layer: the programming record plus
/// the digital dequantization state. The engine is rebuilt from the
/// record on deserialization (`row_sums` and `channel_scales` are stored
/// rather than recomputed so the digital path is byte-for-byte the
/// compile-time state). Runtime [`CimConv2d::set_fast_path`] toggles are
/// *not* captured — a deserialized layer starts on its backend's default
/// path, exactly like a freshly compiled one.
impl Serialize for CimConv2d {
    fn to_json(&self) -> Json {
        Json::obj([
            ("program", self.program.to_json()),
            ("channel_scales", self.dequant.channel_scales.to_json()),
            ("row_sums", self.dequant.row_sums.to_json()),
            ("act_params", quant_params_to_json(&self.act_params)),
            ("geom", geom_to_json(&self.geom)),
            ("out_channels", self.out_channels.to_json()),
            ("par_tiles", self.par_tiles.to_json()),
        ])
    }
}

impl Deserialize for CimConv2d {
    fn from_value(v: &Json) -> Result<Self, String> {
        let program: ProgramSpec = json_field(v, "program")?;
        let engine = program.program();
        Ok(CimConv2d {
            engine,
            dequant: Dequant {
                channel_scales: json_field(v, "channel_scales")?,
                row_sums: json_field(v, "row_sums")?,
            },
            act_params: quant_params_from(
                v.get("act_params").ok_or("missing field \"act_params\"")?,
            )
            .map_err(|e| format!("act_params: {e}"))?,
            geom: geom_from(v.get("geom").ok_or("missing field \"geom\"")?)
                .map_err(|e| format!("geom: {e}"))?,
            out_channels: json_field(v, "out_channels")?,
            par_tiles: json_field(v, "par_tiles")?,
            program,
        })
    }
}

/// See the [`CimConv2d`] serialization notes; identical contract.
impl Serialize for CimLinear {
    fn to_json(&self) -> Json {
        Json::obj([
            ("program", self.program.to_json()),
            ("channel_scales", self.dequant.channel_scales.to_json()),
            ("row_sums", self.dequant.row_sums.to_json()),
            ("bias", self.bias.to_json()),
            ("act_params", quant_params_to_json(&self.act_params)),
            ("outs", self.outs.to_json()),
            ("ins", self.ins.to_json()),
        ])
    }
}

impl Deserialize for CimLinear {
    fn from_value(v: &Json) -> Result<Self, String> {
        let program: ProgramSpec = json_field(v, "program")?;
        let engine = program.program();
        Ok(CimLinear {
            engine,
            dequant: Dequant {
                channel_scales: json_field(v, "channel_scales")?,
                row_sums: json_field(v, "row_sums")?,
            },
            bias: json_field(v, "bias")?,
            act_params: quant_params_from(
                v.get("act_params").ok_or("missing field \"act_params\"")?,
            )
            .map_err(|e| format!("act_params: {e}"))?,
            outs: json_field(v, "outs")?,
            ins: json_field(v, "ins")?,
            program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_tensor::ops::conv2d_reference;

    #[test]
    fn cim_conv_matches_software_within_quantization() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let mut params = MacroParams::rom_paper();
        params.subarrays = 2;
        let conv = CimConv2d::compile(&w, 1, 1, &[&x], params);
        let (y, stats) = conv.forward(&x, &mut rng);
        let expect = conv2d_reference(&x, &w, None, 1, 1);
        let mag = expect.abs_max().max(1e-6);
        for (a, b) in y.data().iter().zip(expect.data()) {
            assert!(
                (a - b).abs() / mag < 0.03,
                "CiM {a} vs software {b} (mag {mag})"
            );
        }
        assert!(stats.analog_evaluations > 0);
        assert!(stats.energy_pj > 0.0);
    }

    #[test]
    fn noise_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 5, 5], 0.0, 1.0, &mut rng);
        let mut params = MacroParams::rom_paper();
        params.noise_sigma = 0.3;
        let conv = CimConv2d::compile(&w, 1, 1, &[&x], params);
        let (y, _) = conv.forward(&x, &mut rng);
        let expect = conv2d_reference(&x, &w, None, 1, 1);
        let mag = expect.abs_max().max(1e-6);
        // Noisy analog readout: bounded but nonzero error.
        let mut max_rel = 0.0f32;
        for (a, b) in y.data().iter().zip(expect.data()) {
            max_rel = max_rel.max((a - b).abs() / mag);
        }
        assert!(max_rel > 0.0, "noise should perturb the output");
        assert!(max_rel < 0.5, "noise error out of control: {max_rel}");
    }

    #[test]
    fn conv_backends_agree_at_paper_design_point() {
        // The per-layer backend selection point: analog, popcount and
        // software deployments of the same conv agree bit-for-bit at the
        // paper's exact design point.
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let params = MacroParams::rom_paper();
        let outputs: Vec<Tensor> = [
            BackendKind::Analog,
            BackendKind::Popcount,
            BackendKind::Software,
        ]
        .into_iter()
        .map(|kind| {
            let conv = CimConv2d::compile_on(kind, &w, 1, 1, &[&x], params);
            conv.forward(&x, &mut rng).0
        })
        .collect();
        assert_eq!(outputs[0].data(), outputs[1].data());
        assert_eq!(outputs[1].data(), outputs[2].data());
    }

    #[test]
    fn cim_linear_matches_software_within_quantization() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::randn(&[5, 24], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[3, 24], 0.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let linear = CimLinear::compile(&w, Some(&bias), &[&x], MacroParams::sram_paper());
        let (y, stats) = linear.forward(&x, &mut rng);
        assert!(stats.adc_conversions > 0);
        // Float reference: y = W x + b.
        for ni in 0..3 {
            for (o, b) in bias.iter().enumerate() {
                let expect: f32 = (0..24).map(|i| w.at(&[o, i]) * x.at(&[ni, i])).sum::<f32>() + b;
                let got = y.at(&[ni, o]);
                assert!((got - expect).abs() < 0.05, "{got} vs {expect}");
            }
        }
    }

    #[test]
    fn cim_linear_software_backend_zero_stats() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Tensor::randn(&[4, 16], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 16], 0.0, 1.0, &mut rng);
        let linear = CimLinear::compile_on(
            BackendKind::Software,
            &w,
            None,
            &[&x],
            MacroParams::sram_paper(),
        );
        assert_eq!(linear.subarrays(), 0);
        assert_eq!(linear.backend_name(), "software");
        let (_, stats) = linear.forward(&x, &mut rng);
        assert_eq!(stats, MvmStats::default());
    }

    #[test]
    fn split_ranges_covers_exactly() {
        assert_eq!(split_ranges(0, 4), vec![]);
        assert_eq!(split_ranges(5, 1), vec![(0, 5)]);
        assert_eq!(split_ranges(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(split_ranges(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        for (len, parts) in [(17usize, 4usize), (64, 16), (7, 7)] {
            let r = split_ranges(len, parts);
            assert_eq!(r.first().unwrap().0, 0);
            assert_eq!(r.last().unwrap().1, len);
            assert!(r.windows(2).all(|w| w[0].1 == w[1].0));
        }
    }

    #[test]
    fn tiled_forward_bit_identical_for_any_hint() {
        // The tile decomposition must not change a single bit of the
        // output or the stats fold relative to the single-tile walk —
        // the root invariant of the tile-parallel scheduler.
        let mut rng = StdRng::seed_from_u64(9);
        let w = Tensor::randn(&[6, 3, 3, 3], 0.0, 0.4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let params = MacroParams::rom_paper();
        let mut conv = CimConv2d::compile(&w, 1, 1, &[&x], params);
        let (base, base_stats) = conv.forward(&x, &mut rng);
        for tiles in [2usize, 5, 16, 1000] {
            conv.set_tile_hint(tiles);
            let (y, s) = conv.forward(&x, &mut rng);
            assert_eq!(base.data(), y.data(), "tiles = {tiles}");
            assert_eq!(base_stats.analog_evaluations, s.analog_evaluations);
            assert_eq!(base_stats.adc_conversions, s.adc_conversions);
            assert_eq!(base_stats.wl_pulses, s.wl_pulses);
        }
    }
}
