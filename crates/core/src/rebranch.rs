//! The Residual Branch (ReBranch) structure of Fig. 7 — the paper's
//! central contribution.
//!
//! A ReBranch convolution runs two parallel paths over the same input
//! feature map:
//!
//! * the **trunk**: a frozen full-size convolution whose pretrained
//!   weights live in ROM-CiM;
//! * the **branch**: `Res-Compress` (frozen point-wise conv, N -> N/D) →
//!   `Res-Conv` (trainable k x k conv, N/D -> M/U, SRAM-CiM) →
//!   `Res-Decompress` (frozen point-wise conv, M/U -> M).
//!
//! The output is their sum. Only `Res-Conv` is trainable, so the
//! trainable parameter count is `1/(D*U)` of the trunk's — the paper's
//! "only 1/(D*U) weights" annotation. The branch is initialized to zero so
//! a freshly-wrapped ReBranch layer computes exactly the pretrained trunk
//! function, and transfer training learns the *residual* of the trunk.
//!
//! Fig. 8's point-wise equivalence (`decompress ∘ conv ∘ compress` equals
//! one full-size convolution of factorized weights) is implemented in
//! [`ReBranchConv::equivalent_kernel`] and property-tested.

use rand::Rng;

use yoloc_tensor::layers::Conv2d;
use yoloc_tensor::{Layer, LayerExt, Param, Tensor};

/// ReBranch hyper-parameters: channel compression/decompression ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReBranchRatios {
    /// Channel compression ratio D (input side).
    pub d: usize,
    /// Channel decompression ratio U (output side).
    pub u: usize,
}

impl ReBranchRatios {
    /// The paper's best configuration, D = U = 4 (16x compression).
    pub fn paper_default() -> Self {
        ReBranchRatios { d: 4, u: 4 }
    }

    /// Overall trainable-parameter compression ratio `D * U`.
    pub fn compression(&self) -> usize {
        self.d * self.u
    }
}

/// A convolution with a frozen ROM trunk and a trainable SRAM residual
/// branch (Fig. 7).
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use yoloc_core::rebranch::{ReBranchConv, ReBranchRatios};
/// use yoloc_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let pretrained = Tensor::randn(&[16, 16, 3, 3], 0.0, 0.2, &mut rng);
/// let rb = ReBranchConv::from_pretrained(
///     "layer3", pretrained, None, 1, 1, ReBranchRatios::paper_default(), &mut rng,
/// );
/// // The trainable set is 1/(D*U) = 1/16 of the trunk.
/// assert_eq!(rb.trunk().weight.len() / rb.sram_param_count(), 16);
/// ```
pub struct ReBranchConv {
    trunk: Conv2d,
    compress: Conv2d,
    res_conv: Conv2d,
    decompress: Conv2d,
    ratios: ReBranchRatios,
}

impl ReBranchConv {
    /// Wraps a pretrained convolution weight as the (frozen) trunk and
    /// builds the residual branch around it.
    ///
    /// `trunk_weight` has shape `(M, N, k, k)`; the branch uses
    /// `N/D` and `M/U` intermediate channels (at least 1 each). `Res-Conv`
    /// is zero-initialized; compress/decompress are random projections,
    /// fixed at fabrication time like the trunk.
    ///
    /// # Panics
    ///
    /// Panics if `trunk_weight` is not rank-4 or ratios are zero.
    pub fn from_pretrained<R: Rng + ?Sized>(
        name: &str,
        trunk_weight: Tensor,
        trunk_bias: Option<Tensor>,
        stride: usize,
        padding: usize,
        ratios: ReBranchRatios,
        rng: &mut R,
    ) -> Self {
        assert_eq!(trunk_weight.ndim(), 4, "trunk weight must be (M, N, k, k)");
        assert!(ratios.d > 0 && ratios.u > 0, "ratios must be positive");
        let (m, n, k) = (
            trunk_weight.shape()[0],
            trunk_weight.shape()[1],
            trunk_weight.shape()[2],
        );
        let nc = (n / ratios.d).max(1);
        let mc = (m / ratios.u).max(1);

        let has_bias = trunk_bias.is_some();
        let mut trunk = Conv2d::new(
            &format!("{name}.trunk"),
            n,
            m,
            k,
            stride,
            padding,
            has_bias,
            rng,
        );
        trunk.weight.value = trunk_weight;
        if let (Some(b), Some(bias)) = (&mut trunk.bias, trunk_bias) {
            b.value = bias;
        }
        trunk.freeze_all();

        let mut compress = Conv2d::pointwise(&format!("{name}.res_compress"), n, nc, rng);
        // Variance-preserving random projection: keeps branch activations
        // and gradients on the trunk's scale regardless of D/U, so one
        // learning rate works for every compression ratio.
        compress.weight.value = Tensor::randn(&[nc, n, 1, 1], 0.0, (1.0 / n as f32).sqrt(), rng);
        compress.freeze_all();
        let mut res_conv = Conv2d::new(
            &format!("{name}.res_conv"),
            nc,
            mc,
            k,
            stride,
            padding,
            false,
            rng,
        );
        // Zero-init: the wrapped layer starts out computing the trunk only.
        res_conv.weight.value = Tensor::zeros(res_conv.weight.value.shape());
        let mut decompress = Conv2d::pointwise(&format!("{name}.res_decompress"), mc, m, rng);
        decompress.weight.value = Tensor::randn(&[m, mc, 1, 1], 0.0, (1.0 / mc as f32).sqrt(), rng);
        decompress.freeze_all();

        ReBranchConv {
            trunk,
            compress,
            res_conv,
            decompress,
            ratios,
        }
    }

    /// Creates a randomly-initialized ReBranch conv (for pretraining a
    /// model that will later be deployed; the trunk is trainable until
    /// [`ReBranchConv::freeze_trunk`] is called).
    #[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter list
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        ratios: ReBranchRatios,
        rng: &mut R,
    ) -> Self {
        let w =
            yoloc_tensor::init::kaiming_normal(&[out_channels, in_channels, kernel, kernel], rng);
        let mut rb = Self::from_pretrained(name, w, None, stride, padding, ratios, rng);
        rb.trunk.unfreeze_all();
        rb
    }

    /// Freezes the trunk (ROM deployment point).
    pub fn freeze_trunk(&mut self) {
        self.trunk.freeze_all();
    }

    /// The branch ratios.
    pub fn ratios(&self) -> ReBranchRatios {
        self.ratios
    }

    /// Parameters resident in ROM-CiM (trunk + compress + decompress).
    pub fn rom_param_count(&self) -> usize {
        self.trunk.weight.len() + self.compress.weight.len() + self.decompress.weight.len()
    }

    /// Trainable parameters resident in SRAM-CiM (`Res-Conv`).
    pub fn sram_param_count(&self) -> usize {
        self.res_conv.weight.len()
    }

    /// The branch path as one full-size equivalent kernel (Fig. 8):
    /// `W_eq[o, i, kh, kw] = sum_{a,b} W2[o, a] * Wb[a, b, kh, kw] * W1[b, i]`.
    pub fn equivalent_kernel(&self) -> Tensor {
        let w1 = &self.compress.weight.value; // (nc, n, 1, 1)
        let wb = &self.res_conv.weight.value; // (mc, nc, k, k)
        let w2 = &self.decompress.weight.value; // (m, mc, 1, 1)
        let (nc, n) = (w1.shape()[0], w1.shape()[1]);
        let (mc, _, k, _) = (wb.shape()[0], wb.shape()[1], wb.shape()[2], wb.shape()[3]);
        let m = w2.shape()[0];
        let mut eq = Tensor::zeros(&[m, n, k, k]);
        for o in 0..m {
            for a in 0..mc {
                let w2v = w2.at(&[o, a, 0, 0]);
                if w2v == 0.0 {
                    continue;
                }
                for b in 0..nc {
                    for i in 0..n {
                        let w1v = w1.at(&[b, i, 0, 0]);
                        if w1v == 0.0 {
                            continue;
                        }
                        for kh in 0..k {
                            for kw in 0..k {
                                *eq.at_mut(&[o, i, kh, kw]) += w2v * wb.at(&[a, b, kh, kw]) * w1v;
                            }
                        }
                    }
                }
            }
        }
        eq
    }

    /// Immutable access to the trunk convolution.
    pub fn trunk(&self) -> &Conv2d {
        &self.trunk
    }

    /// Branch weights `(compress, res_conv, decompress)` for deployment.
    pub fn branch_weights(&self) -> (&Tensor, &Tensor, &Tensor) {
        (
            &self.compress.weight.value,
            &self.res_conv.weight.value,
            &self.decompress.weight.value,
        )
    }

    /// Mutable access to the trainable residual convolution.
    pub fn res_conv_mut(&mut self) -> &mut Conv2d {
        &mut self.res_conv
    }
}

impl Layer for ReBranchConv {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let trunk_out = self.trunk.forward(x, train);
        let c = self.compress.forward(x, train);
        let r = self.res_conv.forward(&c, train);
        let d = self.decompress.forward(&r, train);
        trunk_out.add(&d)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let d_trunk = self.trunk.backward(grad_out);
        let d_dec = self.decompress.backward(grad_out);
        let d_res = self.res_conv.backward(&d_dec);
        let d_comp = self.compress.backward(&d_res);
        d_trunk.add(&d_comp)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.trunk.params_mut();
        v.extend(self.compress.params_mut());
        v.extend(self.res_conv.params_mut());
        v.extend(self.decompress.params_mut());
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.trunk.params();
        v.extend(self.compress.params());
        v.extend(self.res_conv.params());
        v.extend(self.decompress.params());
        v
    }

    fn name(&self) -> String {
        format!(
            "ReBranchConv(D={}, U={}, trunk={})",
            self.ratios.d,
            self.ratios.u,
            self.trunk.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_tensor::ops::conv2d_reference;
    use yoloc_tensor::LayerExt;

    #[test]
    fn zero_branch_equals_trunk() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Tensor::randn(&[8, 8, 3, 3], 0.0, 0.3, &mut rng);
        let mut rb = ReBranchConv::from_pretrained(
            "rb",
            w.clone(),
            None,
            1,
            1,
            ReBranchRatios::paper_default(),
            &mut rng,
        );
        let x = Tensor::randn(&[2, 8, 6, 6], 0.0, 1.0, &mut rng);
        let y = rb.forward(&x, false);
        let expect = conv2d_reference(&x, &w, None, 1, 1);
        for (a, b) in y.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn compression_ratio_of_trainable_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[16, 16, 3, 3], 0.0, 0.3, &mut rng);
        let rb = ReBranchConv::from_pretrained(
            "rb",
            w,
            None,
            1,
            1,
            ReBranchRatios { d: 4, u: 4 },
            &mut rng,
        );
        // Trainable / trunk = 1 / (D*U).
        let ratio = rb.trunk().weight.len() as f64 / rb.sram_param_count() as f64;
        assert!((ratio - 16.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn only_res_conv_is_trainable_after_deploy() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[8, 8, 3, 3], 0.0, 0.3, &mut rng);
        let rb = ReBranchConv::from_pretrained(
            "rb",
            w,
            None,
            1,
            1,
            ReBranchRatios::paper_default(),
            &mut rng,
        );
        assert_eq!(rb.trainable_param_count(), rb.sram_param_count());
        assert!(rb.sram_param_count() > 0);
    }

    #[test]
    fn branch_equals_equivalent_kernel() {
        // Fig. 8: pointwise ∘ conv ∘ pointwise == conv with the contracted
        // kernel. Check on a ReBranch with a *nonzero* res-conv.
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::zeros(&[6, 8, 3, 3]); // zero trunk isolates the branch
        let mut rb = ReBranchConv::from_pretrained(
            "rb",
            w,
            None,
            1,
            1,
            ReBranchRatios { d: 2, u: 2 },
            &mut rng,
        );
        rb.res_conv.weight.value =
            Tensor::randn(rb.res_conv.weight.value.shape(), 0.0, 0.4, &mut rng);
        let x = Tensor::randn(&[1, 8, 5, 5], 0.0, 1.0, &mut rng);
        let y = rb.forward(&x, false);
        let eq = rb.equivalent_kernel();
        let expect = conv2d_reference(&x, &eq, None, 1, 1);
        for (a, b) in y.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_flow_only_to_res_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.3, &mut rng);
        let mut rb = ReBranchConv::from_pretrained(
            "rb",
            w,
            None,
            1,
            1,
            ReBranchRatios { d: 2, u: 2 },
            &mut rng,
        );
        let x = Tensor::randn(&[1, 4, 5, 5], 0.0, 1.0, &mut rng);
        let y = rb.forward(&x, true);
        rb.backward(&Tensor::ones(y.shape()));
        // All parameters receive gradients, but after an SGD step only the
        // res-conv moves.
        let before: Vec<Tensor> = rb.params().iter().map(|p| p.value.clone()).collect();
        let opt = yoloc_tensor::optim::Sgd::new(0.1);
        opt.step(&mut rb.params_mut());
        let after: Vec<Tensor> = rb.params().iter().map(|p| p.value.clone()).collect();
        let mut moved = 0;
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                moved += 1;
                assert!(
                    rb.params()[i].name.contains("res_conv"),
                    "unexpected update to {}",
                    rb.params()[i].name
                );
            }
        }
        assert_eq!(moved, 1, "exactly the res-conv weight should move");
    }

    #[test]
    fn training_recovers_representable_residual() {
        // The branch can learn a target residual that lies in its own
        // function class: build the target as trunk + the equivalent
        // kernel of a *different* branch with the same D/U, then fit by
        // SGD on res-conv only. Loss must drop by a large factor.
        let mut rng = StdRng::seed_from_u64(6);
        let trunk_w = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.3, &mut rng);
        let mut ghost = ReBranchConv::from_pretrained(
            "ghost",
            Tensor::zeros(&[4, 4, 3, 3]),
            None,
            1,
            1,
            ReBranchRatios { d: 2, u: 2 },
            &mut rng,
        );
        ghost.res_conv.weight.value =
            Tensor::randn(ghost.res_conv.weight.value.shape(), 0.0, 0.25, &mut rng);
        let target_w = trunk_w.add(&ghost.equivalent_kernel());
        let mut rb = ReBranchConv::from_pretrained(
            "rb",
            trunk_w,
            None,
            1,
            1,
            ReBranchRatios { d: 2, u: 2 },
            &mut rng,
        );
        let opt = yoloc_tensor::optim::Sgd::new(0.12).with_momentum(0.9);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 0..300 {
            // 9x9 maps: the equivalent-kernel identity holds only away
            // from the zero-padded border, so tiny maps leave a large
            // irreducible loss floor that masks the convergence signal.
            let x = Tensor::randn(&[4, 4, 9, 9], 0.0, 1.0, &mut rng);
            let target = conv2d_reference(&x, &target_w, None, 1, 1);
            let y = rb.forward(&x, true);
            let (loss, grad) = yoloc_tensor::loss::mse(&y, &target);
            rb.backward(&grad);
            opt.step(&mut rb.params_mut());
            if step == 0 {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        let first = first_loss.unwrap();
        assert!(
            last_loss < first * 0.6,
            "residual training should reduce loss: {first} -> {last_loss}"
        );
    }
}
