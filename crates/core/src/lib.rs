//! # yoloc-core
//!
//! The YOLoC framework itself (DAC 2022 reproduction): the ReBranch
//! structure, the four model-flexibility options of Fig. 6 with their
//! transfer-learning harness, the CiM weight mapper, the YOLO-style
//! detector for the Fig. 12 experiments, and the system-level evaluator
//! behind Fig. 13/14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod detector;
pub mod engine;
pub mod mapping;
pub mod pipeline;
pub mod qconv;
pub mod rebranch;
pub mod serve;
pub mod strategies;
pub mod system;
pub mod tiny_models;
pub mod training_cost;

pub use compiler::{
    software_forward, CompileOptions, CompiledNetwork, ExecPlan, ExecutionReport, FaultConfig,
    MemDomain, MemoryParams, NetworkWeights,
};
pub use detector::{
    eval_map, pretrain_detector, train_detector, DetectionSuite, DetectorStrategy, TinyYoloDetector,
};
pub use engine::{sample_stream_seed, WorkerPool};
pub use mapping::{
    map_network, FaultMap, LayerPlacement, MapFaultError, MappingStrategy, NetworkMapping,
};
pub use rebranch::{ReBranchConv, ReBranchRatios};
pub use strategies::{evaluate_strategy, pretrain_base, Strategy, StrategyResult, TrainConfig};
pub use system::{
    evaluate, AreaBreakdown, EnergyBreakdown, SystemKind, SystemParams, SystemReport,
};
pub use tiny_models::{ConvBlock, ConvUnit, Family, SpwdConv, TinyCnn};
