//! The four model-flexibility options of Fig. 6 plus the all-SRAM
//! reference, and the transfer-learning harness that evaluates them
//! (Fig. 6b, Fig. 10, Fig. 11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rebranch::{ReBranchConv, ReBranchRatios};
use crate::tiny_models::{ConvUnit, Family, SpwdConv, TinyCnn};
use yoloc_cim::MacroParams;
use yoloc_data::classification::SyntheticTask;
use yoloc_tensor::layers::Linear;
use yoloc_tensor::loss::{accuracy, cross_entropy};
use yoloc_tensor::optim::{clip_grad_norm, Sgd};
use yoloc_tensor::{Layer, LayerExt, Tensor};

/// A transfer-learning strategy for deploying a pretrained model on a new
/// task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Baseline: every weight trainable, everything in SRAM-CiM.
    AllSram,
    /// Option II extreme: all convs frozen in ROM, only the classifier
    /// retrains ("classifier only" in Fig. 6b).
    AllRom,
    /// Option II (alternative transfer learning): the last `trainable_tail`
    /// conv blocks and the classifier retrain; the rest is ROM. The
    /// paper's "Deep Conv" point is `trainable_tail = 1`.
    Atl {
        /// Number of trailing conv blocks kept trainable.
        trainable_tail: usize,
    },
    /// Option III: SRAM-assisted parallel weight decoration at low
    /// precision.
    Spwd {
        /// Decoration precision in bits (paper working point: 2).
        bits: u8,
    },
    /// Option IV (proposed): residual branch.
    ReBranch(ReBranchRatios),
    /// Option I: ROM-CiM one-shot learning — frozen feature extractor with
    /// a nearest-prototype (TCAM-style distance) classifier built from
    /// `shots` examples per class.
    Rosl {
        /// Training examples per class used to form prototypes.
        shots: usize,
    },
}

impl Strategy {
    /// Short display name.
    pub fn label(&self) -> String {
        match self {
            Strategy::AllSram => "All SRAM".to_string(),
            Strategy::AllRom => "All ROM".to_string(),
            Strategy::Atl { trainable_tail } => format!("Deep Conv (tail={trainable_tail})"),
            Strategy::Spwd { bits } => format!("SPWD ({bits}b)"),
            Strategy::ReBranch(r) => format!("ReBranch (D={}, U={})", r.d, r.u),
            Strategy::Rosl { shots } => format!("ROSL ({shots}-shot)"),
        }
    }
}

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// SGD steps.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
}

impl TrainConfig {
    /// Budget for pretraining the broad base model.
    pub fn pretrain() -> Self {
        TrainConfig {
            steps: 260,
            batch: 24,
            lr: 0.08,
            momentum: 0.9,
        }
    }

    /// Budget for transferring to a target task.
    pub fn transfer() -> Self {
        TrainConfig {
            steps: 160,
            batch: 24,
            lr: 0.06,
            momentum: 0.9,
        }
    }

    /// A fast budget for smoke tests.
    pub fn smoke() -> Self {
        TrainConfig {
            steps: 30,
            batch: 8,
            lr: 0.08,
            momentum: 0.9,
        }
    }
}

/// Trains `model` on `task` with cross-entropy; returns the final-batch
/// training accuracy. `post_step` runs after every optimizer step (used by
/// SPWD's projection).
pub fn train_model<R: Rng + ?Sized>(
    model: &mut TinyCnn,
    task: &SyntheticTask,
    cfg: TrainConfig,
    rng: &mut R,
    mut post_step: impl FnMut(&mut TinyCnn),
) -> f32 {
    let mut last_acc = 0.0;
    let opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    for step in 0..cfg.steps {
        let (x, y) = task.batch(cfg.batch, rng);
        // Cosine-ish decay keeps late training stable on tiny tasks.
        let lr = cfg.lr * (1.0 - 0.7 * step as f32 / cfg.steps as f32);
        let logits = model.forward(&x, true);
        last_acc = accuracy(&logits, &y);
        let (_, grad) = cross_entropy(&logits, &y);
        model.backward(&grad);
        // Tiny unnormalized nets occasionally see gradient spikes; clip
        // for stability (standard practice, strategy-neutral).
        clip_grad_norm(&mut model.params_mut(), 5.0);
        let opt = Sgd { lr, ..opt };
        opt.step(&mut model.params_mut());
        post_step(model);
    }
    last_acc
}

/// Evaluates top-1 accuracy over `n` fresh samples.
pub fn eval_accuracy<R: Rng + ?Sized>(
    model: &mut TinyCnn,
    task: &SyntheticTask,
    n: usize,
    rng: &mut R,
) -> f32 {
    let (x, y) = task.batch(n, rng);
    let logits = model.forward(&x, false);
    accuracy(&logits, &y)
}

/// Builds the strategy-specific model from a pretrained base, with a fresh
/// classifier for `classes` target classes.
///
/// # Panics
///
/// Panics for [`Strategy::Rosl`], which does not produce a gradient-trained
/// model — use [`evaluate_strategy`] instead.
pub fn build_strategy_model<R: Rng + ?Sized>(
    pretrained: &TinyCnn,
    strategy: Strategy,
    classes: usize,
    rng: &mut R,
) -> TinyCnn {
    let weights = pretrained.trunk_weights();
    let meta = pretrained.block_meta();
    let last_ch = weights.last().expect("blocks").shape()[0];
    let classifier = Linear::new("fc", last_ch, classes, true, rng);
    let mut blocks = Vec::new();
    let n_blocks = weights.len();
    for (i, (w, (pool, skip))) in weights.into_iter().zip(meta).enumerate() {
        let name = format!("conv{i}");
        let unit = match strategy {
            Strategy::AllSram => {
                let mut c = plain_from(&name, &w, rng);
                c.unfreeze_all();
                ConvUnit::Plain(c)
            }
            Strategy::AllRom => {
                let mut c = plain_from(&name, &w, rng);
                c.freeze_all();
                ConvUnit::Plain(c)
            }
            Strategy::Atl { trainable_tail } => {
                let mut c = plain_from(&name, &w, rng);
                if i + trainable_tail < n_blocks {
                    c.freeze_all();
                }
                ConvUnit::Plain(c)
            }
            Strategy::Spwd { bits } => {
                ConvUnit::Spwd(SpwdConv::from_pretrained(&name, w, 1, 1, bits, rng))
            }
            Strategy::ReBranch(ratios) => ConvUnit::ReBranch(ReBranchConv::from_pretrained(
                &name, w, None, 1, 1, ratios, rng,
            )),
            Strategy::Rosl { .. } => panic!("ROSL does not build a trained model"),
        };
        blocks.push(crate::tiny_models::ConvBlock::bare(unit, pool, skip));
    }
    TinyCnn::from_parts(blocks, classifier, pretrained.family())
}

fn plain_from<R: Rng + ?Sized>(
    name: &str,
    w: &Tensor,
    rng: &mut R,
) -> yoloc_tensor::layers::Conv2d {
    let (_m, n, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let mut c = yoloc_tensor::layers::Conv2d::new(name, n, w.shape()[0], k, 1, 1, false, rng);
    c.weight.value = w.clone();
    c
}

/// The outcome of evaluating one strategy on one transfer pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyResult {
    /// Strategy label.
    pub strategy: String,
    /// Target-task accuracy in [0, 1].
    pub accuracy: f32,
    /// Weight bits resident in ROM-CiM.
    pub rom_bits: u64,
    /// Weight bits resident in SRAM-CiM.
    pub sram_bits: u64,
    /// CiM memory area in mm² using the paper's macro densities.
    pub area_mm2: f64,
}

/// Memory area of a ROM/SRAM bit split, using the Table I macro densities.
pub fn memory_area_mm2(rom_bits: u64, sram_bits: u64) -> f64 {
    let rom_density = MacroParams::rom_paper().spec().density_mb_per_mm2;
    let sram_density = MacroParams::sram_paper().spec().density_mb_per_mm2;
    rom_bits as f64 / 1_048_576.0 / rom_density + sram_bits as f64 / 1_048_576.0 / sram_density
}

/// Evaluates one strategy on a pretrain -> target transfer pair.
///
/// The pretrained base is passed in so every strategy starts from the same
/// trunk. Deterministic given `seed`.
pub fn evaluate_strategy(
    pretrained: &TinyCnn,
    target: &SyntheticTask,
    strategy: Strategy,
    cfg: TrainConfig,
    seed: u64,
) -> StrategyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        Strategy::Rosl { shots } => {
            // Frozen feature extractor + nearest-prototype classifier.
            let mut feat = build_strategy_model(pretrained, Strategy::AllRom, 1, &mut rng);
            let c = target.classes();
            let mut prototypes: Vec<Tensor> = Vec::with_capacity(c);
            for class in 0..c {
                let imgs: Vec<Tensor> =
                    (0..shots).map(|_| target.render(class, &mut rng)).collect();
                let batch = Tensor::stack(&imgs).expect("same shape");
                let f = feat.features(&batch, false);
                // Mean feature.
                let dim = f.shape()[1];
                let mut mean = Tensor::zeros(&[dim]);
                for s in 0..shots {
                    for j in 0..dim {
                        mean.data_mut()[j] += f.at(&[s, j]) / shots as f32;
                    }
                }
                prototypes.push(mean);
            }
            // Evaluate nearest-prototype.
            let trials = 200;
            let mut correct = 0;
            for _ in 0..trials {
                let label = rng.gen_range(0..c);
                let img = target.render(label, &mut rng);
                let f = feat.features(&Tensor::stack(&[img]).expect("one"), false);
                let fvec = f.index_axis0(0);
                let best = (0..c)
                    .min_by(|&a, &b| {
                        let da = fvec.sub(&prototypes[a]).sq_norm();
                        let db = fvec.sub(&prototypes[b]).sq_norm();
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("classes");
                if best == label {
                    correct += 1;
                }
            }
            let (rom_bits, _) = feat.memory_bits();
            // The TCAM distance classifier stores one prototype per class.
            let proto_bits = (c * prototypes[0].len() * 8) as u64;
            StrategyResult {
                strategy: strategy.label(),
                accuracy: correct as f32 / trials as f32,
                rom_bits,
                sram_bits: proto_bits,
                area_mm2: memory_area_mm2(rom_bits, proto_bits),
            }
        }
        _ => {
            let mut model = build_strategy_model(pretrained, strategy, target.classes(), &mut rng);
            let is_spwd = matches!(strategy, Strategy::Spwd { .. });
            train_model(&mut model, target, cfg, &mut rng, |m| {
                if is_spwd {
                    for b in &mut m.blocks {
                        if let ConvUnit::Spwd(s) = &mut b.unit {
                            s.project();
                        }
                    }
                }
            });
            let acc = eval_accuracy(&mut model, target, 400, &mut rng);
            let (rom_bits, sram_bits) = model.memory_bits();
            StrategyResult {
                strategy: strategy.label(),
                accuracy: acc,
                rom_bits,
                sram_bits,
                area_mm2: memory_area_mm2(rom_bits, sram_bits),
            }
        }
    }
}

/// Pretrains a base model of the given family on `task`.
pub fn pretrain_base(
    family: Family,
    channels: &[usize],
    task: &SyntheticTask,
    cfg: TrainConfig,
    seed: u64,
) -> TinyCnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = TinyCnn::plain(
        family,
        yoloc_data::classification::IMG_C,
        channels,
        task.classes(),
        &mut rng,
    );
    train_model(&mut model, task, cfg, &mut rng, |_| {});
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_models::default_channels;
    use yoloc_data::classification::TransferSuite;

    fn quick_base(suite: &TransferSuite) -> TinyCnn {
        pretrain_base(
            Family::Vgg,
            &default_channels(),
            &suite.pretrain,
            TrainConfig {
                steps: 120,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
            },
            7,
        )
    }

    #[test]
    fn pretraining_learns() {
        let suite = TransferSuite::new(1);
        let mut base = quick_base(&suite);
        let mut rng = StdRng::seed_from_u64(2);
        let acc = eval_accuracy(&mut base, &suite.pretrain, 200, &mut rng);
        // 20-way task, chance = 5%.
        assert!(acc > 0.5, "pretrain accuracy {acc}");
    }

    #[test]
    fn rebranch_beats_frozen_and_tracks_all_sram() {
        let suite = TransferSuite::new(3);
        let base = quick_base(&suite);
        let cfg = TrainConfig {
            steps: 200,
            batch: 16,
            lr: 0.06,
            momentum: 0.9,
        };
        let target = &suite.caltech_like; // far domain: frozen trunk suffers
        let all_sram = evaluate_strategy(&base, target, Strategy::AllSram, cfg, 11);
        let all_rom = evaluate_strategy(&base, target, Strategy::AllRom, cfg, 11);
        let rebranch = evaluate_strategy(
            &base,
            target,
            Strategy::ReBranch(ReBranchRatios::paper_default()),
            cfg,
            11,
        );
        // Ordering of the paper's Fig. 10: ReBranch recovers most of the
        // all-SRAM accuracy; the frozen extractor loses noticeably.
        assert!(
            rebranch.accuracy > all_rom.accuracy + 0.03,
            "rebranch {} vs all-rom {}",
            rebranch.accuracy,
            all_rom.accuracy
        );
        assert!(
            rebranch.accuracy > all_sram.accuracy - 0.16,
            "rebranch {} vs all-sram {}",
            rebranch.accuracy,
            all_sram.accuracy
        );
        // Area ordering: ReBranch far smaller than all-SRAM.
        assert!(rebranch.area_mm2 < 0.4 * all_sram.area_mm2);
        assert!(all_rom.area_mm2 < rebranch.area_mm2);
    }

    #[test]
    fn strategy_memory_accounting() {
        let suite = TransferSuite::new(5);
        let base = quick_base(&suite);
        let mut rng = StdRng::seed_from_u64(6);
        let m = build_strategy_model(
            &base,
            Strategy::ReBranch(ReBranchRatios::paper_default()),
            10,
            &mut rng,
        );
        let (rom, sram) = m.memory_bits();
        assert!(rom > 0 && sram > 0);
        // Fig. 7: res-conv is ~1/16 of the trunk; compress/decompress and
        // the classifier keep the SRAM share above the raw 1/16.
        assert!((sram as f64) < 0.35 * rom as f64);
    }

    #[test]
    fn rosl_runs_and_scores_above_chance() {
        let suite = TransferSuite::new(8);
        let base = quick_base(&suite);
        let r = evaluate_strategy(
            &base,
            &suite.cifar10_like,
            Strategy::Rosl { shots: 10 },
            TrainConfig::smoke(),
            13,
        );
        assert!(r.accuracy > 0.15, "rosl accuracy {}", r.accuracy);
        assert!(r.sram_bits < 100_000);
    }
}
