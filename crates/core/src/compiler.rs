//! Graph compiler and executor: lower **any** [`NetworkDesc`] onto the
//! macro fabric and run it.
//!
//! This is the generalization of the original `TinyCnn`-only deployment
//! pipeline (which is now a thin lowering into the same plan — see
//! [`crate::pipeline`]). Compilation walks the IR, routes each
//! [`LayerSpec`] through the `mapping.rs` placement model (naive vs the
//! paper's packed scheme) into programmed subarrays, and emits an
//! [`ExecPlan`]: a flat list of executable ops — CiM convolutions and
//! linears on a per-layer [`BackendKind`] (analog reference, popcount fast
//! path, or pure-software golden model), ReBranch groups, and the digital
//! ops (activations, pooling, residual merges, passthrough reorg) that run
//! through the cache in Fig. 9.
//!
//! Execution is *measured*, not modelled: every inference walks the
//! quantized datapath and threads the actual per-layer activation traffic
//! through the memory-hierarchy models ([`SramBuffer`], [`MeshNoc`],
//! [`DramModel`]), so each call returns a live [`EnergyBreakdown`]
//! alongside the outputs — the executable counterpart of `system.rs`'s
//! static Fig. 13/14 evaluation.
//!
//! Cross-layer packing ([`MappingStrategy::Packed`]) shares
//! partially-filled subarrays between layers. It is functionally
//! transparent — co-located layers occupy disjoint columns, so each MVM
//! still sees exactly its own weights — and therefore affects the
//! placement/area accounting ([`CompiledNetwork::subarrays`]) rather than
//! the simulated datapath.
//!
//! # Examples
//!
//! Compile a zoo network and run it end to end, getting logits *and* a
//! live energy breakdown:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
//! use yoloc_models::zoo;
//!
//! let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
//! let net = CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = yoloc_tensor::Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
//! let (logits, report) = net.infer(&x, &mut rng);
//! assert_eq!(logits.shape(), &[1, 4]);
//! assert!(report.energy.total_uj() > 0.0);
//! assert!(report.energy.dram_uj > 0.0); // input fetch is paid
//! # Ok::<(), yoloc_models::NetworkError>(())
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{sample_stream_seed, WorkerPool};
use crate::mapping::{map_network, MappingStrategy, NetworkMapping};
use crate::qconv::{CimConv2d, CimLinear};
use crate::system::EnergyBreakdown;
use yoloc_cim::backend::BackendKind;
use yoloc_cim::macro_model::{MacroParams, MvmStats};
use yoloc_memory::{DramModel, MeshNoc, SramBuffer};
use yoloc_models::{ActKind, LayerSpec, NetworkDesc, NetworkError, Shape};
use yoloc_tensor::layers::MaxPool2d;
use yoloc_tensor::ops::conv2d_reference;
use yoloc_tensor::{Layer, Tensor};

/// Which memory domain a CiM layer's weights live in (Fig. 9's split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDomain {
    /// Mask-programmed ROM-CiM (frozen trunk weights).
    Rom,
    /// SRAM-CiM (trainable residual convs and the prediction head).
    Sram,
}

/// The memory hierarchy an [`ExecPlan`] threads its live traffic through.
#[derive(Debug, Clone)]
pub struct MemoryParams {
    /// On-chip activation cache (Fig. 9 "cache").
    pub buffer: SramBuffer,
    /// Off-chip DRAM interface (input fetch / output writeback).
    pub dram: DramModel,
    /// Mesh NoC between the cache and the CiM macro clusters.
    pub noc: MeshNoc,
    /// Activation precision moved through the hierarchy, bits.
    pub act_bits: u8,
    /// System energy overhead factor on CiM compute (controller, clock
    /// tree); 1.0 = macro-only energy. Matches `SystemParams`.
    pub peripheral_overhead: f64,
}

impl MemoryParams {
    /// The same calibration constants as `SystemParams::paper_default`.
    pub fn paper_default() -> Self {
        MemoryParams {
            buffer: SramBuffer::new_28nm(2 * 1024 * 1024),
            dram: DramModel::lpddr4(),
            noc: MeshNoc::new_28nm(4, 4),
            act_bits: 8,
            peripheral_overhead: 1.3,
        }
    }
}

/// Live measurements of one executed inference: per-domain macro activity
/// plus the memory-hierarchy energy it actually moved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// ROM-CiM macro activity (trunk convs, branch projections).
    pub rom: MvmStats,
    /// SRAM-CiM macro activity (residual convs, prediction head).
    pub sram: MvmStats,
    /// Per-inference energy breakdown (live counterpart of Fig. 14a/c).
    pub energy: EnergyBreakdown,
    /// End-to-end latency: serial CiM walk + NoC + DRAM, ns.
    pub latency_ns: f64,
    /// Activation bits moved through the on-chip cache.
    pub buffer_traffic_bits: u64,
    /// Activation bits moved across the mesh NoC.
    pub noc_traffic_bits: u64,
    /// Bits crossing the chip boundary (input fetch + output writeback;
    /// weights are resident, the point of the paper).
    pub dram_traffic_bits: u64,
}

impl ExecutionReport {
    /// Accumulates another execution's measurements (used to reduce
    /// per-sample reports from the batched engine, in sample order).
    pub fn merge(&mut self, other: &ExecutionReport) {
        self.rom.merge(&other.rom);
        self.sram.merge(&other.sram);
        self.energy.accumulate(&other.energy);
        self.latency_ns += other.latency_ns;
        self.buffer_traffic_bits += other.buffer_traffic_bits;
        self.noc_traffic_bits += other.noc_traffic_bits;
        self.dram_traffic_bits += other.dram_traffic_bits;
    }
}

/// Where a residual / passthrough op reads its second operand from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpSource {
    /// The network input.
    Input,
    /// The output of an earlier op in the plan.
    Op(usize),
}

/// One executable operation of a compiled plan.
#[allow(clippy::large_enum_variant)] // few ops, long-lived, boxed engines inside
pub(crate) enum PlanOp {
    /// A CiM-mapped convolution.
    Conv { conv: CimConv2d, domain: MemDomain },
    /// A ReBranch group (Fig. 7): ROM trunk + compress, SRAM res-conv,
    /// ROM decompress, summed.
    ReBranch {
        trunk: CimConv2d,
        compress: CimConv2d,
        res_conv: CimConv2d,
        decompress: CimConv2d,
    },
    /// A CiM-mapped fully-connected layer.
    Linear {
        linear: CimLinear,
        domain: MemDomain,
    },
    /// Elementwise activation (digital).
    Activation(ActKind),
    /// Max pooling (digital).
    MaxPool { kernel: usize, stride: usize },
    /// Global average pooling to `(N, C)` (digital).
    GlobalAvgPool,
    /// YOLO passthrough: space-to-depth reorg of an earlier map,
    /// channel-fitted to `extra_ch` and concatenated (digital).
    Passthrough { source: OpSource, extra_ch: usize },
    /// Residual merge, optionally through a CiM 1x1 projection.
    ResidualAdd {
        source: OpSource,
        projection: Option<Box<(CimConv2d, MemDomain)>>,
    },
}

impl PlanOp {
    fn is_cim(&self) -> bool {
        matches!(
            self,
            PlanOp::Conv { .. }
                | PlanOp::ReBranch { .. }
                | PlanOp::Linear { .. }
                | PlanOp::ResidualAdd {
                    projection: Some(_),
                    ..
                }
        )
    }
}

/// Global average pool `(N, C, H, W) -> (N, C)`.
pub(crate) fn gap(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = x.data()[base..base + h * w].iter().sum();
            *out.at_mut(&[ni, ci]) = s / (h * w) as f32;
        }
    }
    out
}

/// Applies an IR activation elementwise (ReLU, or leaky ReLU slope 0.1).
fn apply_act(x: &Tensor, kind: ActKind) -> Tensor {
    match kind {
        ActKind::Relu => x.map(|v| v.max(0.0)),
        ActKind::Leaky => x.map(|v| if v > 0.0 { v } else { 0.1 * v }),
    }
}

/// Flattens a rank-4 map to `(N, C*H*W)` (identity on rank-2 inputs).
fn flatten_2d(x: &Tensor) -> Tensor {
    if x.ndim() == 2 {
        return x.clone();
    }
    let n = x.shape()[0];
    let rest: usize = x.shape()[1..].iter().product();
    Tensor::from_vec(x.data().to_vec(), &[n, rest]).expect("flatten preserves length")
}

/// The parameter-free passthrough reorg of the IR: space-to-depth the
/// source map (`(N, C, 2H, 2W)` -> `(N, 4C, H, W)`, offset-major), fit to
/// `extra_ch` channels (truncating or cycling), and concatenate onto
/// `cur`.
///
/// # Panics
///
/// Panics if the source spatial dims are not exactly twice `cur`'s.
fn passthrough_concat(src: &Tensor, cur: &Tensor, extra_ch: usize) -> Tensor {
    let (n, c, h, w) = (
        cur.shape()[0],
        cur.shape()[1],
        cur.shape()[2],
        cur.shape()[3],
    );
    let sc = src.shape()[1];
    assert_eq!(
        (src.shape()[2], src.shape()[3]),
        (2 * h, 2 * w),
        "passthrough source must be at twice the current resolution"
    );
    let reorg_ch = 4 * sc;
    let mut out = Tensor::zeros(&[n, c + extra_ch, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(&[ni, ci, y, x]) = cur.at(&[ni, ci, y, x]);
                }
            }
        }
        for e in 0..extra_ch {
            // Offset-major reorg: channel index walks (dy, dx, src channel).
            let r = e % reorg_ch;
            let (dy, dx, sci) = (r / (2 * sc), (r / sc) % 2, r % sc);
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(&[ni, c + e, y, x]) = src.at(&[ni, sci, 2 * y + dy, 2 * x + dx]);
                }
            }
        }
    }
    out
}

/// An executable plan: ops in execution order plus the memory hierarchy
/// their live traffic is priced against.
pub struct ExecPlan {
    ops: Vec<PlanOp>,
    memory: MemoryParams,
}

impl ExecPlan {
    pub(crate) fn new(memory: MemoryParams) -> Self {
        ExecPlan {
            ops: Vec::new(),
            memory,
        }
    }

    /// Appends an op, returning its index (used as an [`OpSource`]).
    pub(crate) fn push(&mut self, op: PlanOp) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Number of ops in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Physical subarrays programmed, `(rom, sram)` (exclusive per-layer
    /// tiling; see [`CompiledNetwork::subarrays`] for the packed count).
    pub fn subarrays(&self) -> (usize, usize) {
        let mut rom = 0;
        let mut sram = 0;
        for op in &self.ops {
            match op {
                PlanOp::Conv { conv, domain } => match domain {
                    MemDomain::Rom => rom += conv.subarrays(),
                    MemDomain::Sram => sram += conv.subarrays(),
                },
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                } => {
                    rom += trunk.subarrays() + compress.subarrays() + decompress.subarrays();
                    sram += res_conv.subarrays();
                }
                PlanOp::Linear { linear, domain } => match domain {
                    MemDomain::Rom => rom += linear.subarrays(),
                    MemDomain::Sram => sram += linear.subarrays(),
                },
                PlanOp::ResidualAdd {
                    projection: Some(p),
                    ..
                } => match p.1 {
                    MemDomain::Rom => rom += p.0.subarrays(),
                    MemDomain::Sram => sram += p.0.subarrays(),
                },
                _ => {}
            }
        }
        (rom, sram)
    }

    /// Enables or disables the popcount fast path on every programmed
    /// backend in the plan.
    pub fn set_fast_path(&mut self, enabled: bool) {
        for op in &mut self.ops {
            match op {
                PlanOp::Conv { conv, .. } => conv.set_fast_path(enabled),
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                } => {
                    trunk.set_fast_path(enabled);
                    compress.set_fast_path(enabled);
                    res_conv.set_fast_path(enabled);
                    decompress.set_fast_path(enabled);
                }
                PlanOp::Linear { linear, .. } => linear.set_fast_path(enabled),
                PlanOp::ResidualAdd {
                    projection: Some(p),
                    ..
                } => p.0.set_fast_path(enabled),
                _ => {}
            }
        }
    }

    /// Executes the plan on `x` (`(N, C, H, W)`), returning the output and
    /// the live [`ExecutionReport`].
    pub fn execute<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, ExecutionReport) {
        let mut report = ExecutionReport::default();
        let ab = self.memory.act_bits as u64;
        let mut buffer_pj = 0.0;
        let mut noc_pj = 0.0;
        let mut noc_lat = 0.0;
        // Only outputs an OpSource actually references are retained; on a
        // plain feed-forward plan nothing is, so the hot path keeps no
        // intermediate activations alive and pays no extra clones.
        let mut retain = vec![false; self.ops.len()];
        for op in &self.ops {
            if let PlanOp::Passthrough {
                source: OpSource::Op(i),
                ..
            }
            | PlanOp::ResidualAdd {
                source: OpSource::Op(i),
                ..
            } = op
            {
                retain[*i] = true;
            }
        }
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(self.ops.len());
        let mut h = x.clone();
        for (op_idx, op) in self.ops.iter().enumerate() {
            let in_bits = h.data().len() as u64 * ab;
            let mut side_bits = 0u64;
            fn resolve<'a>(
                s: &OpSource,
                x: &'a Tensor,
                outputs: &'a [Option<Tensor>],
            ) -> &'a Tensor {
                match s {
                    OpSource::Input => x,
                    OpSource::Op(i) => outputs[*i].as_ref().expect("source output retained"),
                }
            }
            let out = match op {
                PlanOp::Conv { conv, domain } => {
                    let (y, s) = conv.forward(&h, rng);
                    match domain {
                        MemDomain::Rom => report.rom.merge(&s),
                        MemDomain::Sram => report.sram.merge(&s),
                    }
                    y
                }
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                } => {
                    let (t, s1) = trunk.forward(&h, rng);
                    let (c, s2) = compress.forward(&h, rng);
                    let (r, s3) = res_conv.forward(&c, rng);
                    let (d, s4) = decompress.forward(&r, rng);
                    report.rom.merge(&s1);
                    report.rom.merge(&s2);
                    report.sram.merge(&s3);
                    report.rom.merge(&s4);
                    t.add(&d)
                }
                PlanOp::Linear { linear, domain } => {
                    let feats = flatten_2d(&h);
                    let sink = match domain {
                        MemDomain::Rom => &mut report.rom,
                        MemDomain::Sram => &mut report.sram,
                    };
                    linear.forward(&feats, rng, sink)
                }
                PlanOp::Activation(kind) => apply_act(&h, *kind),
                PlanOp::MaxPool { kernel, stride } => {
                    MaxPool2d::new(*kernel, *stride).forward(&h, false)
                }
                PlanOp::GlobalAvgPool => gap(&h),
                PlanOp::Passthrough { source, extra_ch } => {
                    let src = resolve(source, x, &outputs);
                    side_bits = src.data().len() as u64 * ab;
                    passthrough_concat(src, &h, *extra_ch)
                }
                PlanOp::ResidualAdd { source, projection } => {
                    let src = resolve(source, x, &outputs);
                    side_bits = src.data().len() as u64 * ab;
                    match projection {
                        None => h.add(src),
                        Some(p) => {
                            let (y, s) = p.0.forward(src, rng);
                            match p.1 {
                                MemDomain::Rom => report.rom.merge(&s),
                                MemDomain::Sram => report.sram.merge(&s),
                            }
                            h.add(&y)
                        }
                    }
                }
            };
            let out_bits = out.data().len() as u64 * ab;
            let moved = in_bits + side_bits + out_bits;
            report.buffer_traffic_bits += moved;
            buffer_pj += self.memory.buffer.access_energy_pj(moved);
            if op.is_cim() {
                report.noc_traffic_bits += moved;
                noc_pj += self.memory.noc.uniform_transfer_energy_pj(moved);
                noc_lat += self.memory.noc.uniform_transfer_latency_ns(moved);
            }
            outputs.push(retain[op_idx].then(|| out.clone()));
            h = out;
        }
        // Chip boundary: the input arrives from, and the result returns
        // to, DRAM. Weights are resident — the paper's whole point — so
        // they contribute no per-inference DRAM traffic.
        let input_bits = x.data().len() as u64 * ab;
        let output_bits = h.data().len() as u64 * ab;
        report.dram_traffic_bits = input_bits + output_bits;
        let dram_pj = self
            .memory
            .dram
            .transfer_energy_pj(report.dram_traffic_bits);
        let dram_lat = self
            .memory
            .dram
            .transfer_latency_ns(report.dram_traffic_bits);
        let cim_pj = report.rom.energy_pj + report.sram.energy_pj;
        report.energy = EnergyBreakdown {
            cim_uj: cim_pj / 1e6,
            peripheral_uj: cim_pj * (self.memory.peripheral_overhead - 1.0) / 1e6,
            buffer_uj: buffer_pj / 1e6,
            noc_uj: noc_pj / 1e6,
            dram_uj: dram_pj / 1e6,
            ..Default::default()
        };
        report.latency_ns = report.rom.latency_ns + report.sram.latency_ns + noc_lat + dram_lat;
        (h, report)
    }

    /// Executes the plan on a `(N, ...)` batch by fanning samples across a
    /// persistent [`WorkerPool`], one deterministic RNG stream per sample
    /// (see [`sample_stream_seed`]): outputs are bit-identical for any
    /// worker count, and bit-identical to [`ExecPlan::execute`] on the
    /// noiseless datapath.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-4.
    pub fn execute_batch<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport) {
        assert_eq!(x.ndim(), 4, "input must be (N, C, H, W)");
        let n = x.shape()[0];
        if n == 0 {
            // An empty batch walks the plan once (every op handles N = 0)
            // so the output carries the correct trailing shape, as the
            // legacy path did.
            let mut rng = StdRng::seed_from_u64(seed);
            return self.execute(x, &mut rng);
        }
        let sample_shape = [1, x.shape()[1], x.shape()[2], x.shape()[3]];
        let sample_len: usize = x.shape()[1..].iter().product();
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                let sample = Tensor::from_vec(
                    x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                    &sample_shape,
                )
                .expect("sample slice matches shape");
                move || {
                    let mut rng = StdRng::seed_from_u64(sample_stream_seed(seed, i));
                    self.execute(&sample, &mut rng)
                }
            })
            .collect();
        let results = pool.run(jobs);
        let per_sample: usize = results[0].0.data().len();
        let mut out_shape = results[0].0.shape().to_vec();
        out_shape[0] = n;
        let mut data = Vec::with_capacity(n * per_sample);
        let mut report = ExecutionReport::default();
        for (sample_out, sample_report) in &results {
            data.extend_from_slice(sample_out.data());
            report.merge(sample_report);
        }
        (
            Tensor::from_vec(data, &out_shape).expect("batched output shape"),
            report,
        )
    }
}

/// Trained (or generated) parameters for a [`NetworkDesc`], aligned with
/// its layer list.
pub struct NetworkWeights {
    /// Main weight per layer (convs: `(OC, C, k, k)`; linears:
    /// `(outs, ins)`), `None` for parameter-free layers.
    weights: Vec<Option<Tensor>>,
    /// Projection weight per `ResidualAdd` layer (`(OC, C, 1, 1)`).
    projections: Vec<Option<Tensor>>,
    /// Bias per linear layer.
    biases: Vec<Option<Vec<f32>>>,
}

impl NetworkWeights {
    /// Deterministic Kaiming-initialized weights for every CiM layer of
    /// `desc` (zero biases) — enough to *execute* a zoo architecture at
    /// full fidelity when no trained checkpoint exists.
    pub fn random(desc: &NetworkDesc, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(desc.layers.len());
        let mut projections = Vec::with_capacity(desc.layers.len());
        let mut biases = Vec::with_capacity(desc.layers.len());
        for layer in &desc.layers {
            let (w, p, b) = match layer {
                LayerSpec::Conv {
                    in_ch,
                    out_ch,
                    kernel,
                    ..
                } => (
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[*out_ch, *in_ch, *kernel, *kernel],
                        &mut rng,
                    )),
                    None,
                    None,
                ),
                LayerSpec::Linear {
                    in_features,
                    out_features,
                    bias,
                    ..
                } => (
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[*out_features, *in_features],
                        &mut rng,
                    )),
                    None,
                    bias.then(|| vec![0.0; *out_features]),
                ),
                LayerSpec::ResidualAdd {
                    projection: Some(p),
                    ..
                } => (
                    None,
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[p.out_ch, p.in_ch, 1, 1],
                        &mut rng,
                    )),
                    None,
                ),
                _ => (None, None, None),
            };
            weights.push(w);
            projections.push(p);
            biases.push(b);
        }
        NetworkWeights {
            weights,
            projections,
            biases,
        }
    }

    fn weight(&self, idx: usize, name: &str) -> Result<&Tensor, NetworkError> {
        self.weights[idx].as_ref().ok_or_else(|| NetworkError {
            msg: format!("missing weights for layer {name}"),
        })
    }
}

/// Compile-time configuration: macro parameters, default and per-layer
/// backend selection, mapping strategy, and the memory hierarchy.
#[derive(Clone)]
pub struct CompileOptions {
    /// ROM-CiM macro for trunk layers.
    pub rom: MacroParams,
    /// SRAM-CiM macro for the prediction head.
    pub sram: MacroParams,
    /// Default execution backend for every CiM layer.
    pub backend: BackendKind,
    /// Per-layer backend overrides, matched by layer name.
    pub backend_overrides: Vec<(String, BackendKind)>,
    /// Subarray placement strategy reported by the compiled network.
    pub mapping: MappingStrategy,
    /// Memory hierarchy for live traffic accounting.
    pub memory: MemoryParams,
}

impl CompileOptions {
    /// Paper-default macros, popcount backend, packed placement.
    pub fn paper_default() -> Self {
        CompileOptions {
            rom: MacroParams::rom_paper(),
            sram: MacroParams::sram_paper(),
            backend: BackendKind::Popcount,
            backend_overrides: Vec::new(),
            mapping: MappingStrategy::Packed,
            memory: MemoryParams::paper_default(),
        }
    }

    fn backend_for(&self, name: &str) -> BackendKind {
        self.backend_overrides
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
            .unwrap_or(self.backend)
    }
}

/// A [`NetworkDesc`] compiled onto the macro fabric: the executable plan
/// plus its `mapping.rs` placement.
pub struct CompiledNetwork {
    plan: ExecPlan,
    /// Network name (from the description).
    pub name: String,
    /// Per-layer subarray placement (naive and packed counts).
    pub mapping: NetworkMapping,
    strategy: MappingStrategy,
    input: Shape,
}

impl CompiledNetwork {
    /// Compiles `desc` with explicit `weights`, calibrating activation
    /// quantization layer by layer on `calibration` (a `(N, C, H, W)`
    /// batch matching the network input).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if shapes are inconsistent, weights are
    /// missing, or a passthrough source cannot be located.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` does not match the network input shape.
    pub fn compile(
        desc: &NetworkDesc,
        weights: &NetworkWeights,
        calibration: &Tensor,
        opts: CompileOptions,
    ) -> Result<Self, NetworkError> {
        assert_eq!(calibration.ndim(), 4, "calibration must be (N, C, H, W)");
        assert_eq!(
            &calibration.shape()[1..],
            &[desc.input.0, desc.input.1, desc.input.2],
            "calibration shape must match the network input"
        );
        let reports = desc.analyze()?;
        let mapping = map_network(desc, &opts.rom)?;
        let last_cim = desc.layers.iter().rposition(|l| l.is_cim_layer());
        let mut plan = ExecPlan::new(opts.memory.clone());
        let mut h = calibration.clone();
        // Float outputs per layer (residual/passthrough sources and
        // calibration inputs) and the plan op producing each layer.
        let mut history: Vec<Tensor> = Vec::with_capacity(desc.layers.len());
        let mut op_of_layer: Vec<Option<usize>> = Vec::with_capacity(desc.layers.len());
        let mut last_op: Option<usize> = None;
        for (idx, layer) in desc.layers.iter().enumerate() {
            match layer {
                LayerSpec::Conv {
                    name,
                    stride,
                    padding,
                    ..
                } => {
                    let w = weights.weight(idx, name)?;
                    let (domain, params) = if Some(idx) == last_cim {
                        (MemDomain::Sram, opts.sram)
                    } else {
                        (MemDomain::Rom, opts.rom)
                    };
                    let conv = CimConv2d::compile_on(
                        opts.backend_for(name),
                        w,
                        *stride,
                        *padding,
                        &[&h],
                        params,
                    );
                    last_op = Some(plan.push(PlanOp::Conv { conv, domain }));
                    h = conv2d_reference(&h, w, None, *stride, *padding);
                }
                LayerSpec::Linear { name, .. } => {
                    let w = weights.weight(idx, name)?;
                    let feats = flatten_2d(&h);
                    let (domain, params) = if Some(idx) == last_cim {
                        (MemDomain::Sram, opts.sram)
                    } else {
                        (MemDomain::Rom, opts.rom)
                    };
                    let bias = weights.biases[idx].as_deref();
                    let linear =
                        CimLinear::compile_on(opts.backend_for(name), w, bias, &[&feats], params);
                    last_op = Some(plan.push(PlanOp::Linear { linear, domain }));
                    h = linear_reference(&feats, w, bias);
                }
                LayerSpec::BatchNorm { .. } => {
                    // Folded into the preceding conv: identity at
                    // inference; no op is emitted.
                }
                LayerSpec::Activation(kind) => {
                    last_op = Some(plan.push(PlanOp::Activation(*kind)));
                    h = apply_act(&h, *kind);
                }
                LayerSpec::MaxPool { kernel, stride } => {
                    last_op = Some(plan.push(PlanOp::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    }));
                    h = MaxPool2d::new(*kernel, *stride).forward(&h, false);
                }
                LayerSpec::GlobalAvgPool => {
                    last_op = Some(plan.push(PlanOp::GlobalAvgPool));
                    h = gap(&h);
                }
                LayerSpec::Passthrough { extra_ch } => {
                    let src_layer = passthrough_source(&reports, idx)?;
                    let source = match op_of_layer[src_layer] {
                        Some(i) => OpSource::Op(i),
                        None => OpSource::Input,
                    };
                    last_op = Some(plan.push(PlanOp::Passthrough {
                        source,
                        extra_ch: *extra_ch,
                    }));
                    h = passthrough_concat(&history[src_layer], &h, *extra_ch);
                }
                LayerSpec::ResidualAdd {
                    blocks_back,
                    projection,
                } => {
                    let from_input = *blocks_back == idx + 1;
                    let source = if from_input {
                        OpSource::Input
                    } else {
                        match op_of_layer[idx - blocks_back] {
                            Some(i) => OpSource::Op(i),
                            None => OpSource::Input,
                        }
                    };
                    // Shared with software_forward: resolve the skip
                    // source and apply the projection reference.
                    let (src_float, skip_float) = residual_skip_reference(
                        idx,
                        *blocks_back,
                        projection.as_ref(),
                        weights,
                        &history,
                        calibration,
                    )?;
                    let proj = match projection {
                        None => None,
                        Some(p) => {
                            let w = weights.projections[idx].as_ref().expect("checked above");
                            let conv = CimConv2d::compile_on(
                                opts.backend_for(&p.name),
                                w,
                                p.stride,
                                0,
                                &[&src_float],
                                opts.rom,
                            );
                            Some(Box::new((conv, MemDomain::Rom)))
                        }
                    };
                    last_op = Some(plan.push(PlanOp::ResidualAdd {
                        source,
                        projection: proj,
                    }));
                    h = h.add(&skip_float);
                }
            }
            history.push(h.clone());
            op_of_layer.push(last_op);
        }
        Ok(CompiledNetwork {
            plan,
            name: desc.name.clone(),
            mapping,
            strategy: opts.mapping,
            input: desc.input,
        })
    }

    /// Compiles `desc` with deterministic random weights and a generated
    /// calibration batch — the one-call entry point for executing a zoo
    /// architecture (see the module example).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the description is inconsistent.
    pub fn compile_random(
        desc: &NetworkDesc,
        seed: u64,
        opts: CompileOptions,
    ) -> Result<Self, NetworkError> {
        let weights = NetworkWeights::random(desc, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA11_B0A7);
        let (c, ih, iw) = desc.input;
        let calibration = Tensor::rand_uniform(&[2, c, ih, iw], 0.0, 1.0, &mut rng);
        Self::compile(desc, &weights, &calibration, opts)
    }

    /// The network input shape `(C, H, W)`.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Subarrays consumed under the compile-time [`MappingStrategy`].
    pub fn subarrays(&self) -> usize {
        self.mapping.subarrays(self.strategy)
    }

    /// Physical subarrays actually programmed, `(rom, sram)`.
    pub fn programmed_subarrays(&self) -> (usize, usize) {
        self.plan.subarrays()
    }

    /// Enables or disables the popcount fast path on every layer.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.plan.set_fast_path(enabled);
    }

    /// Runs one inference through the quantized CiM datapath, returning
    /// the network output and the live execution report.
    pub fn infer<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, ExecutionReport) {
        self.plan.execute(x, rng)
    }

    /// Batched inference over a persistent [`WorkerPool`]; see
    /// [`ExecPlan::execute_batch`].
    pub fn infer_batch<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport) {
        self.plan.execute_batch(x, seed, pool)
    }
}

/// Float reference of a linear layer: `y = W x + b` on `(N, ins)`.
fn linear_reference(feats: &Tensor, w: &Tensor, bias: Option<&[f32]>) -> Tensor {
    let (n, ins) = (feats.shape()[0], feats.shape()[1]);
    let outs = w.shape()[0];
    let mut out = Tensor::zeros(&[n, outs]);
    for ni in 0..n {
        for o in 0..outs {
            let mut acc = 0.0f32;
            for i in 0..ins {
                acc += w.at(&[o, i]) * feats.at(&[ni, i]);
            }
            if let Some(b) = bias {
                acc += b[o];
            }
            *out.at_mut(&[ni, o]) = acc;
        }
    }
    out
}

/// Locates the passthrough reorg source: the latest earlier layer whose
/// output map sits at exactly twice the resolution of the current map.
/// Shared by compile-time calibration and [`software_forward`] so the two
/// walks cannot diverge.
fn passthrough_source(
    reports: &[yoloc_models::LayerReport],
    idx: usize,
) -> Result<usize, NetworkError> {
    let (th, tw) = (reports[idx].in_shape.1, reports[idx].in_shape.2);
    (0..idx)
        .rev()
        .find(|&j| reports[j].out_shape.1 == 2 * th && reports[j].out_shape.2 == 2 * tw)
        .ok_or_else(|| NetworkError {
            msg: format!(
                "passthrough at layer {idx}: no earlier map at {}x{}",
                2 * th,
                2 * tw
            ),
        })
}

/// Resolves a residual skip's float source map and applies the projection
/// reference (if any), returning `(source, skip)`. Shared by compile-time
/// calibration and [`software_forward`] so the two walks cannot diverge.
fn residual_skip_reference(
    idx: usize,
    blocks_back: usize,
    projection: Option<&yoloc_models::ProjectionSpec>,
    weights: &NetworkWeights,
    history: &[Tensor],
    x: &Tensor,
) -> Result<(Tensor, Tensor), NetworkError> {
    let src = if blocks_back == idx + 1 {
        x.clone()
    } else {
        history[idx - blocks_back].clone()
    };
    let skip = match projection {
        None => src.clone(),
        Some(p) => {
            let w = weights.projections[idx]
                .as_ref()
                .ok_or_else(|| NetworkError {
                    msg: format!("missing projection weights for {}", p.name),
                })?;
            conv2d_reference(&src, w, None, p.stride, 0)
        }
    };
    Ok((src, skip))
}

/// The floating-point software reference of a compiled network: the same
/// graph walk with float convolutions, used for accuracy comparisons
/// against the quantized CiM execution.
///
/// # Errors
///
/// Returns [`NetworkError`] on inconsistent descriptions or missing
/// weights.
pub fn software_forward(
    desc: &NetworkDesc,
    weights: &NetworkWeights,
    x: &Tensor,
) -> Result<Tensor, NetworkError> {
    let reports = desc.analyze()?;
    let mut h = x.clone();
    let mut history: Vec<Tensor> = Vec::with_capacity(desc.layers.len());
    for (idx, layer) in desc.layers.iter().enumerate() {
        match layer {
            LayerSpec::Conv {
                name,
                stride,
                padding,
                ..
            } => {
                let w = weights.weight(idx, name)?;
                h = conv2d_reference(&h, w, None, *stride, *padding);
            }
            LayerSpec::Linear { name, .. } => {
                let w = weights.weight(idx, name)?;
                h = linear_reference(&flatten_2d(&h), w, weights.biases[idx].as_deref());
            }
            LayerSpec::BatchNorm { .. } => {}
            LayerSpec::Activation(kind) => h = apply_act(&h, *kind),
            LayerSpec::MaxPool { kernel, stride } => {
                h = MaxPool2d::new(*kernel, *stride).forward(&h, false);
            }
            LayerSpec::GlobalAvgPool => h = gap(&h),
            LayerSpec::Passthrough { extra_ch } => {
                let src = passthrough_source(&reports, idx)?;
                h = passthrough_concat(&history[src], &h, *extra_ch);
            }
            LayerSpec::ResidualAdd {
                blocks_back,
                projection,
            } => {
                let (_, skip) = residual_skip_reference(
                    idx,
                    *blocks_back,
                    projection.as_ref(),
                    weights,
                    &history,
                    x,
                )?;
                h = h.add(&skip);
            }
        }
        history.push(h.clone());
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkerPool;
    use yoloc_models::zoo;

    fn small_opts() -> CompileOptions {
        CompileOptions::paper_default()
    }

    #[test]
    fn compiled_vgg_tracks_software_reference() {
        let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
        let weights = NetworkWeights::random(&desc, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cal = Tensor::rand_uniform(&[2, 1, 16, 16], 0.0, 1.0, &mut rng);
        let net = CompiledNetwork::compile(&desc, &weights, &cal, small_opts()).unwrap();
        let x = Tensor::rand_uniform(&[2, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        let sw = software_forward(&desc, &weights, &x).unwrap();
        assert_eq!(y.shape(), sw.shape());
        let mag = sw.abs_max().max(1e-6);
        for (a, b) in y.data().iter().zip(sw.data()) {
            assert!((a - b).abs() / mag < 0.15, "cim {a} vs sw {b}");
        }
        // Live accounting: both domains active (trunk in ROM, head in
        // SRAM), every hierarchy level paid.
        assert!(report.rom.energy_pj > 0.0);
        assert!(report.sram.energy_pj > 0.0);
        assert!(report.energy.buffer_uj > 0.0);
        assert!(report.energy.noc_uj > 0.0);
        assert!(report.energy.dram_uj > 0.0);
        assert!(report.latency_ns > 0.0);
        assert!(report.energy.total_uj() > 0.0);
    }

    #[test]
    fn compiled_residual_and_projection_networks_run() {
        // ResNet-18 scaled down: exercises ResidualAdd with and without
        // projections end to end.
        let desc = zoo::scaled(&zoo::resnet18(3), 16, (32, 32));
        let net = CompiledNetwork::compile_random(&desc, 11, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::rand_uniform(&[1, 1, 32, 32], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        assert_eq!(y.shape(), &[1, 3]);
        assert!(report.rom.analog_evaluations > 0);
        // Projections are programmed: more ROM subarrays than zero.
        let (rom_subs, sram_subs) = net.programmed_subarrays();
        assert!(rom_subs > 0 && sram_subs > 0);
    }

    #[test]
    fn compiled_yolo_passthrough_runs_end_to_end() {
        let desc = zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64));
        let net = CompiledNetwork::compile_random(&desc, 21, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let x = Tensor::rand_uniform(&[1, 1, 64, 64], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        // 64x64 input downsamples x32 -> 2x2 detection map, channels per
        // the scaled IR's own shape propagation.
        let expect = desc.analyze().unwrap().last().unwrap().out_shape;
        assert_eq!(y.shape(), &[1, expect.0, expect.1, expect.2]);
        assert!(report.energy.total_uj() > 0.0);
        assert!(report.dram_traffic_bits > 0);
    }

    #[test]
    fn batched_compiled_inference_bit_identical_to_serial() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 31, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let x = Tensor::rand_uniform(&[5, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (serial, serial_report) = net.infer(&x, &mut rng);
        for workers in [1, 2, 4] {
            let (batched, report) = WorkerPool::with(workers, |pool| net.infer_batch(&x, 9, pool));
            assert_eq!(serial.data(), batched.data(), "workers = {workers}");
            assert_eq!(
                serial_report.rom.analog_evaluations,
                report.rom.analog_evaluations
            );
            assert_eq!(
                serial_report.rom.adc_conversions,
                report.rom.adc_conversions
            );
            assert_eq!(
                serial_report.buffer_traffic_bits,
                report.buffer_traffic_bits
            );
            assert_eq!(serial_report.dram_traffic_bits, report.dram_traffic_bits);
        }
    }

    #[test]
    fn empty_batch_is_handled() {
        // Regression: the batched path must not index results[0] on an
        // empty batch; it returns an output with the correct trailing
        // shape and a zero report, like the serial path.
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 71, small_opts()).unwrap();
        let x = Tensor::zeros(&[0, 1, 16, 16]);
        let (y, report) = WorkerPool::with(2, |pool| net.infer_batch(&x, 5, pool));
        assert_eq!(y.shape(), &[0, 3]);
        assert_eq!(report.rom.analog_evaluations, 0);
        assert_eq!(report.dram_traffic_bits, 0);
    }

    #[test]
    fn software_backend_override_zeroes_layer_energy() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = small_opts();
        // Run everything on the software golden model.
        opts.backend = BackendKind::Software;
        let net = CompiledNetwork::compile_random(&desc, 41, opts).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (_, report) = net.infer(&x, &mut rng);
        assert_eq!(report.rom.energy_pj, 0.0);
        assert_eq!(report.sram.energy_pj, 0.0);
        assert_eq!(report.energy.cim_uj, 0.0);
        // The memory hierarchy still moves activations.
        assert!(report.energy.buffer_uj > 0.0);
        let (rom_subs, sram_subs) = net.programmed_subarrays();
        assert_eq!((rom_subs, sram_subs), (0, 0));
    }

    #[test]
    fn per_layer_backend_override_applies_by_name() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = small_opts();
        opts.backend_overrides = vec![("conv1".to_string(), BackendKind::Software)];
        let net = CompiledNetwork::compile_random(&desc, 51, opts).unwrap();
        let base = CompiledNetwork::compile_random(&desc, 51, small_opts()).unwrap();
        // conv1 contributes no subarrays under the override.
        assert!(net.programmed_subarrays().0 < base.programmed_subarrays().0);
        // And both produce identical logits at the exact design point.
        let mut rng = StdRng::seed_from_u64(52);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (a, _) = net.infer(&x, &mut rng);
        let (b, _) = base.infer(&x, &mut rng);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn packed_mapping_never_exceeds_naive() {
        let desc = zoo::scaled(&zoo::tiny_yolo(4, 2), 16, (64, 64));
        let net = CompiledNetwork::compile_random(&desc, 61, small_opts()).unwrap();
        assert!(net.mapping.subarrays_packed <= net.mapping.subarrays_naive);
        assert_eq!(net.subarrays(), net.mapping.subarrays_packed);
    }
}
