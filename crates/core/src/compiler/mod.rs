//! Graph compiler and executor: lower **any** [`NetworkDesc`] onto the
//! macro fabric and run it.
//!
//! This is the generalization of the original `TinyCnn`-only deployment
//! pipeline (which is now a thin lowering into the same plan — see
//! [`crate::pipeline`]). Compilation walks the IR, routes each
//! [`LayerSpec`] through the `mapping.rs` placement model (naive vs the
//! paper's packed scheme) into programmed subarrays, and emits an
//! [`ExecPlan`]: a flat list of executable ops — CiM convolutions and
//! linears on a per-layer [`BackendKind`] (analog reference, popcount fast
//! path, or pure-software golden model), ReBranch groups, and the digital
//! ops (activations, pooling, residual merges, passthrough reorg) that run
//! through the cache in Fig. 9.
//!
//! Execution is *measured*, not modelled: every inference walks the
//! quantized datapath and threads the actual per-layer activation traffic
//! through the memory-hierarchy models ([`SramBuffer`], [`MeshNoc`],
//! [`DramModel`]), so each call returns a live [`EnergyBreakdown`]
//! alongside the outputs — the executable counterpart of `system.rs`'s
//! static Fig. 13/14 evaluation.
//!
//! Cross-layer packing ([`MappingStrategy::Packed`]) shares
//! partially-filled subarrays between layers. It is functionally
//! transparent — co-located layers occupy disjoint columns, so each MVM
//! still sees exactly its own weights — and therefore affects the
//! placement/area accounting ([`CompiledNetwork::subarrays`]) rather than
//! the simulated datapath.
//!
//! # The staged pipeline
//!
//! Compilation is now a staged pipeline over the [`ExecPlan`] IR:
//!
//! ```text
//! NetworkDesc ──lower──▶ raw ExecPlan ──[passes]──▶ optimized ExecPlan
//!                                          │
//!               EpilogueFusion ── fold act/pool/residual into the
//!               │                 consuming CiM conv/linear op
//!               DeadOpElimination ── sweep fused-away ops, remap sources
//!               BufferLiveness ── live ranges → BufferPlan (slot-reuse
//!                                 arena, peak bytes in ExecutionReport)
//! ```
//!
//! The pass framework lives in [`passes`], the arena planner in
//! [`buffers`], the zero-allocation runtime that *executes on* the
//! planned arena in [`arena`], and the tile-level task graph the
//! parallel scheduler executes in [`schedule`]. [`ExecPlan::execute`]
//! runs on a recycled [`ExecArena`] whenever a buffer plan exists;
//! [`ExecPlan::execute_cloned`] — the clone-based serial interpreter —
//! is kept as the **parity oracle**: the arena runtime and the
//! tile-parallel [`crate::engine::Scheduler`] must reproduce it bit for
//! bit (logits, stats and energy alike) on the same plan, and a plan
//! compiled with [`passes::PassPipeline::none`] is the legacy unfused
//! reference the optimized plan is pinned against (logits and
//! [`MvmStats`]).
//!
//! Under [`MappingStrategy::Sharded`] the compiled layers are spread
//! across SRAM/ROM-CiM chiplets; the plan records each op's chiplet and
//! both executors price activation traffic that crosses a die boundary
//! through the [`yoloc_memory::ChipletLink`] (the `link_uj` /
//! `link_traffic_bits` fields of the report), on top of the per-chip mesh
//! NoC.
//!
//! # Examples
//!
//! Compile a zoo network and run it end to end, getting logits *and* a
//! live energy breakdown:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
//! use yoloc_models::zoo;
//!
//! let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
//! let net = CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = yoloc_tensor::Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
//! let (logits, report) = net.infer(&x, &mut rng);
//! assert_eq!(logits.shape(), &[1, 4]);
//! assert!(report.energy.total_uj() > 0.0);
//! assert!(report.energy.dram_uj > 0.0); // input fetch is paid
//! // The pass pipeline planned the activation arena: slot reuse beats
//! // per-op allocation.
//! assert!(report.peak_arena_bytes < report.naive_arena_bytes);
//! # Ok::<(), yoloc_models::NetworkError>(())
//! ```
//!
//! Shard the same network across four chiplets — functionally
//! transparent, but the die-to-die activation stream now shows up in the
//! report:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
//! use yoloc_core::mapping::MappingStrategy;
//! use yoloc_models::zoo;
//!
//! let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
//! let mut opts = CompileOptions::paper_default();
//! opts.mapping = MappingStrategy::Sharded { chips: 4 };
//! let net = CompiledNetwork::compile_random(&desc, 7, opts)?;
//! assert_eq!(net.mapping.shard.as_ref().expect("shard plan").chips, 4);
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = yoloc_tensor::Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
//! let (_, report) = net.infer(&x, &mut rng);
//! assert!(report.link_traffic_bits > 0);
//! assert!(report.energy.link_uj > 0.0);
//! # Ok::<(), yoloc_models::NetworkError>(())
//! ```

pub mod arena;
pub mod buffers;
pub mod cache;
pub mod passes;
pub mod schedule;
pub mod serial;

pub use arena::ExecArena;
pub use buffers::BufferPlan;
pub use passes::{PassKind, PassPipeline, PassReport};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::{sample_stream_seed, WorkerPool};
use crate::mapping::{
    assign_subarrays, map_network_with, remap_placements, FaultMap, MapFaultError, MappingStrategy,
    NetworkMapping,
};
use crate::qconv::{CimConv2d, CimLinear, LayerFaults};
use crate::system::EnergyBreakdown;
use yoloc_cim::backend::BackendKind;
use yoloc_cim::faults::{FaultPlan, FaultSpec};
use yoloc_cim::macro_model::{MacroParams, MvmStats};
use yoloc_memory::{ChipletLink, DramModel, MeshNoc, SramBuffer};
use yoloc_models::{ActKind, LayerSpec, NetworkDesc, NetworkError, Shape};
use yoloc_tensor::layers::MaxPool2d;
use yoloc_tensor::ops::conv2d_reference;
use yoloc_tensor::{Layer, Tensor};

/// Which memory domain a CiM layer's weights live in (Fig. 9's split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemDomain {
    /// Mask-programmed ROM-CiM (frozen trunk weights).
    Rom,
    /// SRAM-CiM (trainable residual convs and the prediction head).
    Sram,
}

/// The memory hierarchy an [`ExecPlan`] threads its live traffic through.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryParams {
    /// On-chip activation cache (Fig. 9 "cache").
    pub buffer: SramBuffer,
    /// Off-chip DRAM interface (input fetch / output writeback).
    pub dram: DramModel,
    /// Mesh NoC between the cache and the CiM macro clusters.
    pub noc: MeshNoc,
    /// Chip-to-chip link activation traffic crosses when a
    /// [`MappingStrategy::Sharded`] deployment places producer and
    /// consumer layers on different chiplets.
    pub link: ChipletLink,
    /// Activation precision moved through the hierarchy, bits.
    pub act_bits: u8,
    /// System energy overhead factor on CiM compute (controller, clock
    /// tree); 1.0 = macro-only energy. Matches `SystemParams`.
    pub peripheral_overhead: f64,
}

impl MemoryParams {
    /// The same calibration constants as `SystemParams::paper_default`.
    pub fn paper_default() -> Self {
        MemoryParams {
            buffer: SramBuffer::new_28nm(2 * 1024 * 1024),
            dram: DramModel::lpddr4(),
            noc: MeshNoc::new_28nm(4, 4),
            link: ChipletLink::simba(),
            act_bits: 8,
            peripheral_overhead: 1.3,
        }
    }

    /// Macro clusters one chip's mesh serves — the fan-out the compiler
    /// derives per-layer tile counts from.
    pub fn clusters(&self) -> usize {
        (self.noc.width * self.noc.height).max(1)
    }
}

/// Live measurements of one executed inference: per-domain macro activity
/// plus the memory-hierarchy energy it actually moved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// ROM-CiM macro activity (trunk convs, branch projections).
    pub rom: MvmStats,
    /// SRAM-CiM macro activity (residual convs, prediction head).
    pub sram: MvmStats,
    /// Per-inference energy breakdown (live counterpart of Fig. 14a/c).
    pub energy: EnergyBreakdown,
    /// End-to-end latency: serial CiM walk + NoC + link + DRAM, ns.
    pub latency_ns: f64,
    /// Modeled latency of each plan op (CiM walk plus the NoC/link
    /// transfers its activations paid), ns, in op order.
    pub per_op_latency_ns: Vec<f64>,
    /// The intra-sample latency model: modeled end-to-end latency when
    /// each op's CiM work spreads its placement-derived tiles across
    /// [`ExecutionReport::INTRA_SAMPLE_LANES`] parallel macro-cluster
    /// lanes (NoC/link/DRAM transfers stay serial — activations stream op
    /// to op, shard topology included). Index-aligned with the lane
    /// constant; `[0]` (one lane) equals the serial walk.
    pub intra_sample_latency_ns: Vec<f64>,
    /// Activation bits moved through the on-chip cache.
    pub buffer_traffic_bits: u64,
    /// Activation bits moved across the mesh NoC.
    pub noc_traffic_bits: u64,
    /// Activation bits that crossed a chiplet boundary (0 unless the plan
    /// was compiled with [`MappingStrategy::Sharded`]).
    pub link_traffic_bits: u64,
    /// Bits crossing the chip boundary (input fetch + output writeback;
    /// weights are resident, the point of the paper).
    pub dram_traffic_bits: u64,
    /// Peak activation-arena footprint of this execution under the
    /// compiled [`BufferPlan`] (slot-reuse allocation), bytes.
    pub peak_arena_bytes: u64,
    /// The same footprint under naive per-op allocation (every op output
    /// kept live), bytes — the baseline the buffer-liveness pass shrinks.
    pub naive_arena_bytes: u64,
}

impl ExecutionReport {
    /// The lane counts [`ExecutionReport::intra_sample_latency_ns`] is
    /// evaluated at.
    pub const INTRA_SAMPLE_LANES: [usize; 4] = [1, 2, 4, 8];

    /// Modeled intra-sample speedup at `lanes` parallel lanes (serial
    /// latency over the lane-parallel makespan); `None` when `lanes` is
    /// not in [`ExecutionReport::INTRA_SAMPLE_LANES`] or the report is
    /// empty.
    #[must_use]
    pub fn intra_sample_speedup(&self, lanes: usize) -> Option<f64> {
        let idx = Self::INTRA_SAMPLE_LANES.iter().position(|&l| l == lanes)?;
        let serial = *self.intra_sample_latency_ns.first()?;
        let at = *self.intra_sample_latency_ns.get(idx)?;
        (at > 0.0).then(|| serial / at)
    }

    /// Accumulates another execution's measurements (used to reduce
    /// per-sample reports from the batched engine, in sample order).
    /// Traffic, energy and latency add; arena footprints take the max
    /// (samples share the arena, they do not stack); per-op latencies add
    /// element-wise when the plans match (adopting `other`'s when this
    /// report is fresh).
    pub fn merge(&mut self, other: &ExecutionReport) {
        self.rom.merge(&other.rom);
        self.sram.merge(&other.sram);
        self.energy.accumulate(&other.energy);
        self.latency_ns += other.latency_ns;
        fn zip_add(dst: &mut Vec<f64>, src: &[f64]) {
            if dst.is_empty() {
                dst.extend_from_slice(src);
            } else if dst.len() == src.len() {
                for (a, b) in dst.iter_mut().zip(src) {
                    *a += b;
                }
            }
        }
        zip_add(&mut self.per_op_latency_ns, &other.per_op_latency_ns);
        zip_add(
            &mut self.intra_sample_latency_ns,
            &other.intra_sample_latency_ns,
        );
        self.buffer_traffic_bits += other.buffer_traffic_bits;
        self.noc_traffic_bits += other.noc_traffic_bits;
        self.link_traffic_bits += other.link_traffic_bits;
        self.dram_traffic_bits += other.dram_traffic_bits;
        self.peak_arena_bytes = self.peak_arena_bytes.max(other.peak_arena_bytes);
        self.naive_arena_bytes = self.naive_arena_bytes.max(other.naive_arena_bytes);
    }

    /// Total CiM macro energy across both domains, pJ — the single place
    /// the per-domain stats are summed (every site used to re-add the
    /// fields by hand).
    #[must_use]
    pub fn cim_energy_pj(&self) -> f64 {
        self.rom.energy_pj + self.sram.energy_pj
    }
}

/// Where a residual / passthrough op reads its second operand from.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) enum OpSource {
    /// The network input.
    Input,
    /// The output of an earlier op in the plan.
    Op(usize),
}

/// A digital op folded into the tail of a CiM op by the epilogue-fusion
/// pass: it runs on the op's output before the result round-trips the
/// cache, so the intermediate map never moves through the hierarchy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) enum EpilogueOp {
    /// Elementwise activation.
    Act(ActKind),
    /// Max pooling.
    MaxPool { kernel: usize, stride: usize },
    /// Projection-free residual merge with an earlier op's output.
    Residual { source: OpSource },
}

/// One executable operation of a compiled plan.
#[derive(Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // few ops, long-lived, boxed engines inside
pub(crate) enum PlanOp {
    /// A CiM-mapped convolution (plus any fused epilogue).
    Conv {
        conv: CimConv2d,
        domain: MemDomain,
        epilogue: Vec<EpilogueOp>,
    },
    /// A ReBranch group (Fig. 7): ROM trunk + compress, SRAM res-conv,
    /// ROM decompress, summed (plus any fused epilogue).
    ReBranch {
        trunk: CimConv2d,
        compress: CimConv2d,
        res_conv: CimConv2d,
        decompress: CimConv2d,
        epilogue: Vec<EpilogueOp>,
    },
    /// A CiM-mapped fully-connected layer (plus any fused epilogue).
    Linear {
        linear: CimLinear,
        domain: MemDomain,
        epilogue: Vec<EpilogueOp>,
    },
    /// Elementwise activation (digital).
    Activation(ActKind),
    /// Max pooling (digital).
    MaxPool { kernel: usize, stride: usize },
    /// Global average pooling to `(N, C)` (digital).
    GlobalAvgPool,
    /// YOLO passthrough: space-to-depth reorg of an earlier map,
    /// channel-fitted to `extra_ch` and concatenated (digital).
    Passthrough { source: OpSource, extra_ch: usize },
    /// Residual merge, optionally through a CiM 1x1 projection.
    ResidualAdd {
        source: OpSource,
        projection: Option<Box<(CimConv2d, MemDomain)>>,
    },
    /// Identity left behind by a fusion pass; swept (and its references
    /// remapped) by dead-op elimination.
    Nop,
}

impl PlanOp {
    pub(crate) fn is_cim(&self) -> bool {
        matches!(
            self,
            PlanOp::Conv { .. }
                | PlanOp::ReBranch { .. }
                | PlanOp::Linear { .. }
                | PlanOp::ResidualAdd {
                    projection: Some(_),
                    ..
                }
        )
    }

    /// The fused epilogue of a CiM op (empty for digital ops).
    pub(crate) fn epilogue(&self) -> &[EpilogueOp] {
        match self {
            PlanOp::Conv { epilogue, .. }
            | PlanOp::ReBranch { epilogue, .. }
            | PlanOp::Linear { epilogue, .. } => epilogue,
            _ => &[],
        }
    }

    /// Every earlier-op output this op reads besides the running
    /// activation (skip sources, passthrough sources, fused residuals).
    pub(crate) fn sources(&self) -> Vec<OpSource> {
        let mut srcs = Vec::new();
        match self {
            PlanOp::Passthrough { source, .. } | PlanOp::ResidualAdd { source, .. } => {
                srcs.push(*source);
            }
            _ => {}
        }
        for e in self.epilogue() {
            if let EpilogueOp::Residual { source } = e {
                srcs.push(*source);
            }
        }
        srcs
    }
}

/// Physical subarrays an op programs, `(rom, sram)`.
pub(crate) fn op_subarrays(op: &PlanOp) -> (usize, usize) {
    match op {
        PlanOp::Conv { conv, domain, .. } => match domain {
            MemDomain::Rom => (conv.subarrays(), 0),
            MemDomain::Sram => (0, conv.subarrays()),
        },
        PlanOp::ReBranch {
            trunk,
            compress,
            res_conv,
            decompress,
            ..
        } => (
            trunk.subarrays() + compress.subarrays() + decompress.subarrays(),
            res_conv.subarrays(),
        ),
        PlanOp::Linear { linear, domain, .. } => match domain {
            MemDomain::Rom => (linear.subarrays(), 0),
            MemDomain::Sram => (0, linear.subarrays()),
        },
        PlanOp::ResidualAdd {
            projection: Some(p),
            ..
        } => match p.1 {
            MemDomain::Rom => (p.0.subarrays(), 0),
            MemDomain::Sram => (0, p.0.subarrays()),
        },
        _ => (0, 0),
    }
}

/// Measurements of one executed plan op. The serial interpreter and the
/// tile-parallel scheduler produce these identically (same per-op stat
/// folds, same traffic attribution) and both reduce them through
/// [`ExecPlan::finalize`] — the construction that makes tiled execution
/// bit-identical to the serial walk.
#[derive(Debug, Clone, Default)]
pub(crate) struct PerOpExec {
    /// ROM-domain stats, folded from zero in the op's canonical order.
    pub rom: MvmStats,
    /// SRAM-domain stats, folded from zero.
    pub sram: MvmStats,
    /// Running-activation input bits.
    pub in_bits: u64,
    /// Side-operand bits (skip/passthrough/fused-residual sources).
    pub side_bits: u64,
    /// Output bits (post-epilogue).
    pub out_bits: u64,
    /// Bits among the above that crossed a chiplet boundary.
    pub cross_bits: u64,
    /// Placement-derived tiles the op's CiM work splits into (0/1 for
    /// digital ops): the width the intra-sample latency model divides the
    /// op's macro latency by when lanes are available.
    pub tiles: usize,
}

impl PerOpExec {
    pub(crate) fn add(&mut self, domain: MemDomain, s: &MvmStats) {
        match domain {
            MemDomain::Rom => self.rom.merge(s),
            MemDomain::Sram => self.sram.merge(s),
        }
    }
}

/// Global average pool `(N, C, H, W) -> (N, C)`.
pub(crate) fn gap(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = x.data()[base..base + h * w].iter().sum();
            *out.at_mut(&[ni, ci]) = s / (h * w) as f32;
        }
    }
    out
}

/// Applies an IR activation elementwise (ReLU, or leaky ReLU slope 0.1).
pub(crate) fn apply_act(x: &Tensor, kind: ActKind) -> Tensor {
    match kind {
        ActKind::Relu => x.map(|v| v.max(0.0)),
        ActKind::Leaky => x.map(|v| if v > 0.0 { v } else { 0.1 * v }),
    }
}

/// Flattens a rank-4 map to `(N, C*H*W)` (identity on rank-2 inputs).
pub(crate) fn flatten_2d(x: &Tensor) -> Tensor {
    if x.ndim() == 2 {
        return x.clone();
    }
    let n = x.shape()[0];
    let rest: usize = x.shape()[1..].iter().product();
    Tensor::from_vec(x.data().to_vec(), &[n, rest]).expect("flatten preserves length")
}

/// [`flatten_2d`] for owned tensors: row-major order makes the flatten a
/// pure reinterpretation, so this moves the buffer instead of copying it
/// ([`Tensor::into_reshaped`]).
pub(crate) fn flatten_2d_owned(x: Tensor) -> Tensor {
    if x.ndim() == 2 {
        return x;
    }
    let n = x.shape()[0];
    let rest: usize = x.shape()[1..].iter().product();
    x.into_reshaped(&[n, rest])
        .expect("flatten preserves length")
}

/// The parameter-free passthrough reorg of the IR: space-to-depth the
/// source map (`(N, C, 2H, 2W)` -> `(N, 4C, H, W)`, offset-major), fit to
/// `extra_ch` channels (truncating or cycling), and concatenate onto
/// `cur`.
///
/// # Panics
///
/// Panics if the source spatial dims are not exactly twice `cur`'s.
pub(crate) fn passthrough_concat(src: &Tensor, cur: &Tensor, extra_ch: usize) -> Tensor {
    let (n, c, h, w) = (
        cur.shape()[0],
        cur.shape()[1],
        cur.shape()[2],
        cur.shape()[3],
    );
    let sc = src.shape()[1];
    assert_eq!(
        (src.shape()[2], src.shape()[3]),
        (2 * h, 2 * w),
        "passthrough source must be at twice the current resolution"
    );
    let reorg_ch = 4 * sc;
    let mut out = Tensor::zeros(&[n, c + extra_ch, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(&[ni, ci, y, x]) = cur.at(&[ni, ci, y, x]);
                }
            }
        }
        for e in 0..extra_ch {
            // Offset-major reorg: channel index walks (dy, dx, src channel).
            let r = e % reorg_ch;
            let (dy, dx, sci) = (r / (2 * sc), (r / sc) % 2, r % sc);
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(&[ni, c + e, y, x]) = src.at(&[ni, sci, 2 * y + dy, 2 * x + dx]);
                }
            }
        }
    }
    out
}

/// Monotone count of full plan compilations in this process
/// ([`CompiledNetwork::compile`] entries, cache hits excluded) — the
/// counter the plan-cache CI gate asserts on: a warm deploy of an
/// already-cached network must leave it unchanged.
static COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of full compilations performed by this process so far.
pub fn compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

/// An executable plan: ops in execution order plus the memory hierarchy
/// their live traffic is priced against.
pub struct ExecPlan {
    pub(crate) ops: Vec<PlanOp>,
    pub(crate) memory: MemoryParams,
    /// Per-sample output element count of each op (post-epilogue).
    pub(crate) out_elems: Vec<usize>,
    /// Chiplet each op executes on (all on chip 0 without sharding).
    pub(crate) chip_of: Vec<usize>,
    /// Number of chiplets the plan is sharded across.
    pub(crate) n_chips: usize,
    /// Arena plan from the buffer-liveness pass (`None` until it runs).
    pub(crate) buffer_plan: Option<BufferPlan>,
    /// Recycled execution arenas: `execute`/`execute_batch` (and the
    /// scheduler's kernel staging) draw from and return to this pool, so
    /// steady-state inference reuses warmed buffers instead of touching
    /// the allocator. Grows to the peak concurrency ever seen.
    pub(crate) arena_pool: Mutex<Vec<ExecArena>>,
}

impl ExecPlan {
    pub(crate) fn new(memory: MemoryParams) -> Self {
        ExecPlan {
            ops: Vec::new(),
            memory,
            out_elems: Vec::new(),
            chip_of: Vec::new(),
            n_chips: 1,
            buffer_plan: None,
            arena_pool: Mutex::new(Vec::new()),
        }
    }

    /// Takes a recycled [`ExecArena`] from the plan's pool (or a fresh
    /// one when the pool is empty).
    pub fn take_arena(&self) -> ExecArena {
        self.arena_pool
            .lock()
            .expect("arena pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool for reuse by later executions.
    pub fn give_arena(&self, arena: ExecArena) {
        self.arena_pool.lock().expect("arena pool lock").push(arena);
    }

    /// Appends an op producing `out_elems` elements per sample, returning
    /// its index (used as an [`OpSource`]).
    pub(crate) fn push(&mut self, op: PlanOp, out_elems: usize) -> usize {
        self.ops.push(op);
        self.out_elems.push(out_elems);
        self.chip_of.push(0);
        self.ops.len() - 1
    }

    /// Number of ops in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The memory hierarchy this plan prices traffic against.
    pub fn memory(&self) -> &MemoryParams {
        &self.memory
    }

    /// The arena plan computed by the buffer-liveness pass, if it ran.
    pub fn buffer_plan(&self) -> Option<&BufferPlan> {
        self.buffer_plan.as_ref()
    }

    /// Number of chiplets the plan is sharded across (1 = single chip).
    pub fn chips(&self) -> usize {
        self.n_chips
    }

    /// For each op, the index of the last op that reads its output (its
    /// own index when nothing does): the live ranges the buffer-liveness
    /// pass and the scheduler's arena eviction share. The final op is
    /// pinned live to the end of the plan (it is the network output).
    pub(crate) fn last_use(&self) -> Vec<usize> {
        let n = self.ops.len();
        let mut last = (0..n).collect::<Vec<_>>();
        for (i, op) in self.ops.iter().enumerate() {
            // The running activation: op i consumes op i-1's output.
            if i > 0 {
                last[i - 1] = last[i - 1].max(i);
            }
            for src in op.sources() {
                if let OpSource::Op(j) = src {
                    last[j] = last[j].max(i);
                }
            }
        }
        if n > 0 {
            last[n - 1] = n; // network output: live past the final op
        }
        last
    }

    /// Assigns each op its chiplet from the placement-aligned
    /// [`crate::mapping::ShardPlan`]: the plan's CiM ops appear in the
    /// same order as the mapping's placements (convs, linears and
    /// residual projections all produce a placement, whatever backend
    /// they execute on), so the i-th CiM op takes the i-th placement's
    /// die and digital ops ride with the CiM op that feeds them. The
    /// executors and the reported shard layout therefore describe the
    /// *same* partition by construction, and activation traffic between
    /// ops on different chips is priced through the [`ChipletLink`].
    pub(crate) fn assign_chips(&mut self, shard: &crate::mapping::ShardPlan) {
        self.n_chips = shard.chips.max(1);
        let mut cim_idx = 0usize;
        let mut current = 0usize;
        for i in 0..self.ops.len() {
            if self.ops[i].is_cim() {
                current = shard.chip_of.get(cim_idx).copied().unwrap_or(current);
                cim_idx += 1;
            }
            self.chip_of[i] = current;
        }
        debug_assert_eq!(
            cim_idx,
            shard.chip_of.len(),
            "plan CiM ops must align 1:1 with the mapping placements"
        );
    }

    /// Moves the `cim_idx`-th CiM op (placement order) onto new
    /// physical subarrays and re-programs its engine — the repair path.
    /// Returns `false` when the op cannot be re-homed (out of range, or
    /// a ReBranch group, which is compiled outside the placement walk).
    pub(crate) fn reprogram_cim_ids(&mut self, cim_idx: usize, phys_ids: &[u64]) -> bool {
        let mut k = 0usize;
        for op in &mut self.ops {
            if !op.is_cim() {
                continue;
            }
            if k == cim_idx {
                match op {
                    PlanOp::Conv { conv, .. } => conv.set_fault_ids(phys_ids),
                    PlanOp::Linear { linear, .. } => linear.set_fault_ids(phys_ids),
                    PlanOp::ResidualAdd {
                        projection: Some(p),
                        ..
                    } => p.0.set_fault_ids(phys_ids),
                    _ => return false,
                }
                return true;
            }
            k += 1;
        }
        false
    }

    /// Sets every CiM conv's tile hint (the fan-out the scheduler
    /// partitions a single inference into) to `tiles`.
    pub(crate) fn set_tile_hints(&mut self, tiles: usize) {
        for op in &mut self.ops {
            match op {
                PlanOp::Conv { conv, .. } => conv.set_tile_hint(tiles),
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                    ..
                } => {
                    trunk.set_tile_hint(tiles);
                    compress.set_tile_hint(tiles);
                    res_conv.set_tile_hint(tiles);
                    decompress.set_tile_hint(tiles);
                }
                PlanOp::ResidualAdd {
                    projection: Some(p),
                    ..
                } => p.0.set_tile_hint(tiles),
                _ => {}
            }
        }
    }

    /// Physical subarrays programmed, `(rom, sram)` (exclusive per-layer
    /// tiling; see [`CompiledNetwork::subarrays`] for the packed count).
    pub fn subarrays(&self) -> (usize, usize) {
        let mut rom = 0;
        let mut sram = 0;
        for op in &self.ops {
            let (r, s) = op_subarrays(op);
            rom += r;
            sram += s;
        }
        (rom, sram)
    }

    /// Enables or disables the popcount fast path on every programmed
    /// backend in the plan.
    pub fn set_fast_path(&mut self, enabled: bool) {
        for op in &mut self.ops {
            match op {
                PlanOp::Conv { conv, .. } => conv.set_fast_path(enabled),
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                    ..
                } => {
                    trunk.set_fast_path(enabled);
                    compress.set_fast_path(enabled);
                    res_conv.set_fast_path(enabled);
                    decompress.set_fast_path(enabled);
                }
                PlanOp::Linear { linear, .. } => linear.set_fast_path(enabled),
                PlanOp::ResidualAdd {
                    projection: Some(p),
                    ..
                } => p.0.set_fast_path(enabled),
                _ => {}
            }
        }
    }

    /// The ops whose outputs must be retained during execution because a
    /// later op reads them through an [`OpSource`].
    pub(crate) fn retained(&self) -> Vec<bool> {
        let mut retain = vec![false; self.ops.len()];
        for op in &self.ops {
            for src in op.sources() {
                if let OpSource::Op(i) = src {
                    retain[i] = true;
                }
            }
        }
        retain
    }

    /// Applies a fused epilogue to `y`, accumulating the side-operand
    /// traffic (and its producing chip) of any fused residual into `rec`.
    pub(crate) fn apply_epilogue(
        &self,
        epilogue: &[EpilogueOp],
        mut y: Tensor,
        op_idx: usize,
        x: &Tensor,
        outputs: &dyn Fn(usize) -> Tensor,
        rec: &mut PerOpExec,
    ) -> Tensor {
        let ab = self.memory.act_bits as u64;
        for e in epilogue {
            y = match e {
                EpilogueOp::Act(kind) => apply_act(&y, *kind),
                EpilogueOp::MaxPool { kernel, stride } => {
                    MaxPool2d::new(*kernel, *stride).forward(&y, false)
                }
                EpilogueOp::Residual { source } => {
                    // The input is read-only here: borrow it directly
                    // instead of cloning a tensor just to add it.
                    let src_owned;
                    let src: &Tensor = match source {
                        OpSource::Input => x,
                        OpSource::Op(i) => {
                            src_owned = outputs(*i);
                            &src_owned
                        }
                    };
                    let bits = src.data().len() as u64 * ab;
                    rec.side_bits += bits;
                    if self.source_chip(source) != self.chip_of[op_idx] {
                        rec.cross_bits += bits;
                    }
                    y.add(src)
                }
            };
        }
        y
    }

    /// The chiplet a source operand is produced on (the input arrives on
    /// chip 0, where the DRAM interface sits).
    pub(crate) fn source_chip(&self, source: &OpSource) -> usize {
        match source {
            OpSource::Input => 0,
            OpSource::Op(i) => self.chip_of[*i],
        }
    }

    /// Executes one op of the plan serially on the calling thread: the
    /// parity-oracle implementation [`ExecPlan::execute`] walks op by op,
    /// and the scheduler reuses verbatim for every non-tiled op (digital
    /// ops, linears, projected residuals) so the two cannot diverge.
    /// `outputs` resolves retained earlier-op outputs.
    pub(crate) fn run_op_serial<R: Rng + ?Sized>(
        &self,
        op_idx: usize,
        h: &Tensor,
        x: &Tensor,
        outputs: &[Option<Tensor>],
        rng: &mut R,
    ) -> (Tensor, PerOpExec) {
        let ab = self.memory.act_bits as u64;
        let op = &self.ops[op_idx];
        let mut rec = PerOpExec {
            in_bits: h.data().len() as u64 * ab,
            ..PerOpExec::default()
        };
        if op_idx > 0 && self.chip_of[op_idx] != self.chip_of[op_idx - 1] {
            rec.cross_bits += rec.in_bits;
        }
        let resolve =
            |i: usize| -> Tensor { outputs[i].as_ref().expect("source output retained").clone() };
        let out = match op {
            PlanOp::Conv {
                conv,
                domain,
                epilogue,
            } => {
                let (y, s) = conv.forward(h, rng);
                rec.tiles = conv
                    .tile_ranges(y.data().len() / conv.out_channels().max(1))
                    .len();
                rec.add(*domain, &s);
                self.apply_epilogue(epilogue, y, op_idx, x, &resolve, &mut rec)
            }
            PlanOp::ReBranch {
                trunk,
                compress,
                res_conv,
                decompress,
                epilogue,
            } => {
                let (t, s1) = trunk.forward(h, rng);
                rec.tiles = trunk
                    .tile_ranges(t.data().len() / trunk.out_channels().max(1))
                    .len();
                let (c, s2) = compress.forward(h, rng);
                let (r, s3) = res_conv.forward(&c, rng);
                let (d, s4) = decompress.forward(&r, rng);
                rec.rom.merge(&s1);
                rec.rom.merge(&s2);
                rec.sram.merge(&s3);
                rec.rom.merge(&s4);
                self.apply_epilogue(epilogue, t.add(&d), op_idx, x, &resolve, &mut rec)
            }
            PlanOp::Linear {
                linear,
                domain,
                epilogue,
            } => {
                let feats = flatten_2d(h);
                let (y, s) = linear.forward(&feats, rng);
                rec.add(*domain, &s);
                self.apply_epilogue(epilogue, y, op_idx, x, &resolve, &mut rec)
            }
            PlanOp::Activation(kind) => apply_act(h, *kind),
            PlanOp::MaxPool { kernel, stride } => {
                MaxPool2d::new(*kernel, *stride).forward(h, false)
            }
            PlanOp::GlobalAvgPool => gap(h),
            PlanOp::Passthrough { source, extra_ch } => {
                // Side sources are read-only: borrow the input or the
                // retained output directly, never clone.
                let src: &Tensor = match source {
                    OpSource::Input => x,
                    OpSource::Op(i) => outputs[*i].as_ref().expect("source output retained"),
                };
                rec.side_bits = src.data().len() as u64 * ab;
                if self.source_chip(source) != self.chip_of[op_idx] {
                    rec.cross_bits += rec.side_bits;
                }
                passthrough_concat(src, h, *extra_ch)
            }
            PlanOp::ResidualAdd { source, projection } => {
                let src: &Tensor = match source {
                    OpSource::Input => x,
                    OpSource::Op(i) => outputs[*i].as_ref().expect("source output retained"),
                };
                rec.side_bits = src.data().len() as u64 * ab;
                if self.source_chip(source) != self.chip_of[op_idx] {
                    rec.cross_bits += rec.side_bits;
                }
                match projection {
                    None => h.add(src),
                    Some(p) => {
                        let (y, s) = p.0.forward(src, rng);
                        rec.add(p.1, &s);
                        h.add(&y)
                    }
                }
            }
            PlanOp::Nop => h.clone(),
        };
        rec.out_bits = out.data().len() as u64 * ab;
        (out, rec)
    }

    /// Executes the plan on `x` (`(N, C, H, W)`), returning the output and
    /// the live [`ExecutionReport`].
    ///
    /// When the plan carries a [`BufferPlan`] (any pipeline that runs the
    /// buffer-liveness pass), execution runs on a recycled [`ExecArena`]
    /// from the plan's pool — the allocation-free steady-state
    /// interpreter — and only the returned output/report are fresh
    /// values. Plans without a buffer plan (e.g. the
    /// [`PassPipeline::none`] parity oracle) fall back to the clone-based
    /// interpreter [`ExecPlan::execute_cloned`]; the two are pinned
    /// bit-identical by the arena parity suite.
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn execute<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, ExecutionReport) {
        if self.buffer_plan.is_none() {
            return self.execute_cloned(x, rng);
        }
        let mut arena = self.take_arena();
        self.execute_arena(x, rng, &mut arena);
        let result = (arena.output().clone(), arena.report().clone());
        self.give_arena(arena);
        result
    }

    /// Executes the plan into a caller-owned [`ExecArena`], returning
    /// views of the output and report that borrow the arena — the
    /// **zero-allocation entry**: after the first (warm-up) call on a
    /// given input shape, an inference through the same arena performs no
    /// heap allocation at all. Plans without a buffer plan fall back to
    /// the clone interpreter and store its (freshly allocated) result in
    /// the arena.
    pub fn execute_in<'a, R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        rng: &mut R,
        arena: &'a mut ExecArena,
    ) -> (&'a Tensor, &'a ExecutionReport) {
        if self.buffer_plan.is_some() {
            self.execute_arena(x, rng, arena);
        } else {
            let (out, report) = self.execute_cloned(x, rng);
            arena.set_result(out, report);
        }
        (arena.output(), arena.report())
    }

    /// The clone-based serial interpreter: allocates per-op output
    /// tensors like the pre-arena executor did. Kept as the **parity
    /// oracle** the arena interpreter and the tile-parallel
    /// [`crate::engine::Scheduler`] are pinned against — all three record
    /// the same per-op measurements and reduce them through
    /// `ExecPlan::finalize`, so their full reports agree bit for bit on
    /// the noiseless datapath.
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn execute_cloned<R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        rng: &mut R,
    ) -> (Tensor, ExecutionReport) {
        // Only outputs an OpSource actually references are retained; on a
        // plain feed-forward plan nothing is, so the hot path keeps no
        // intermediate activations alive and pays no extra clones. The
        // final op's output is the network result itself — nothing can
        // read it through a source later, so it is never cloned either.
        let retain = self.retained();
        let n_ops = self.ops.len();
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(n_ops);
        let mut per_op = Vec::with_capacity(n_ops);
        let mut h: Option<Tensor> = None;
        for (op_idx, &keep) in retain.iter().enumerate() {
            let input = h.as_ref().unwrap_or(x);
            let (out, rec) = self.run_op_serial(op_idx, input, x, &outputs, rng);
            per_op.push(rec);
            outputs.push((keep && op_idx + 1 < n_ops).then(|| out.clone()));
            h = Some(out);
        }
        let h = h.unwrap_or_else(|| x.clone());
        let report = self.finalize(x, &h, &per_op);
        (h, report)
    }

    /// Reduces per-op measurements into the final [`ExecutionReport`] —
    /// shared verbatim by every interpreter so they cannot diverge, down
    /// to f64 summation order. Allocating wrapper over
    /// [`ExecPlan::finalize_into`].
    pub(crate) fn finalize(
        &self,
        x: &Tensor,
        output: &Tensor,
        per_op: &[PerOpExec],
    ) -> ExecutionReport {
        let n = if x.ndim() >= 1 { x.shape()[0] } else { 1 };
        let mut report = ExecutionReport::default();
        self.finalize_into(x.data().len(), n, output.data().len(), per_op, &mut report);
        report
    }

    /// [`ExecPlan::finalize`] writing into a caller-owned report whose
    /// vectors keep their capacity — the arena executor's allocation-free
    /// reduction. `input_elems`/`output_elems` are the network I/O sizes
    /// and `batch_n` the leading batch dimension.
    pub(crate) fn finalize_into(
        &self,
        input_elems: usize,
        batch_n: usize,
        output_elems: usize,
        per_op: &[PerOpExec],
        report: &mut ExecutionReport,
    ) {
        let ab = self.memory.act_bits as u64;
        // Reset every field while keeping the vector allocations.
        let mut per_op_latency = std::mem::take(&mut report.per_op_latency_ns);
        let mut intra_sample = std::mem::take(&mut report.intra_sample_latency_ns);
        per_op_latency.clear();
        intra_sample.clear();
        *report = ExecutionReport {
            per_op_latency_ns: per_op_latency,
            intra_sample_latency_ns: intra_sample,
            ..ExecutionReport::default()
        };
        let mut buffer_pj = 0.0;
        let mut noc_pj = 0.0;
        let mut noc_lat = 0.0;
        let mut link_pj = 0.0;
        let mut link_lat = 0.0;
        for (op, rec) in self.ops.iter().zip(per_op) {
            report.rom.merge(&rec.rom);
            report.sram.merge(&rec.sram);
            let moved = rec.in_bits + rec.side_bits + rec.out_bits;
            report.buffer_traffic_bits += moved;
            buffer_pj += self.memory.buffer.access_energy_pj(moved);
            let mut op_lat = rec.rom.latency_ns + rec.sram.latency_ns;
            if op.is_cim() {
                report.noc_traffic_bits += moved;
                noc_pj += self.memory.noc.uniform_transfer_energy_pj(moved);
                let l = self.memory.noc.uniform_transfer_latency_ns(moved);
                noc_lat += l;
                op_lat += l;
            }
            if rec.cross_bits > 0 {
                report.link_traffic_bits += rec.cross_bits;
                link_pj += self.memory.link.transfer_energy_pj(rec.cross_bits);
                let l = self.memory.link.transfer_latency_ns(rec.cross_bits);
                link_lat += l;
                op_lat += l;
            }
            report.per_op_latency_ns.push(op_lat);
        }
        // Intra-sample latency model: with L parallel macro-cluster lanes
        // an op's CiM latency shrinks by tiles / ceil(tiles / L) (its
        // placement-derived tiles spread over the lanes in near-equal
        // rounds); transfers stay serial — activations stream op to op
        // through the NoC and any chiplet links of the shard topology.
        for &lanes in ExecutionReport::INTRA_SAMPLE_LANES.iter() {
            let mut total = 0.0;
            for (rec, op_lat) in per_op.iter().zip(&report.per_op_latency_ns) {
                let cim = rec.rom.latency_ns + rec.sram.latency_ns;
                let transfers = op_lat - cim;
                let tiles = rec.tiles.max(1);
                let rounds = tiles.div_ceil(lanes) as f64 / tiles as f64;
                total += cim * rounds + transfers;
            }
            report.intra_sample_latency_ns.push(total);
        }
        // Chip boundary: the input arrives from, and the result returns
        // to, DRAM. Weights are resident — the paper's whole point — so
        // they contribute no per-inference DRAM traffic.
        let input_bits = input_elems as u64 * ab;
        let output_bits = output_elems as u64 * ab;
        report.dram_traffic_bits = input_bits + output_bits;
        let dram_pj = self
            .memory
            .dram
            .transfer_energy_pj(report.dram_traffic_bits);
        let dram_lat = self
            .memory
            .dram
            .transfer_latency_ns(report.dram_traffic_bits);
        let cim_pj = report.cim_energy_pj();
        report.energy = EnergyBreakdown {
            cim_uj: cim_pj / 1e6,
            peripheral_uj: cim_pj * (self.memory.peripheral_overhead - 1.0) / 1e6,
            buffer_uj: buffer_pj / 1e6,
            noc_uj: noc_pj / 1e6,
            link_uj: link_pj / 1e6,
            dram_uj: dram_pj / 1e6,
            ..Default::default()
        };
        report.latency_ns =
            report.rom.latency_ns + report.sram.latency_ns + noc_lat + link_lat + dram_lat;
        // The chip-boundary DRAM transfer is serial at every lane count.
        for v in &mut report.intra_sample_latency_ns {
            *v += dram_lat;
        }
        let sample_bytes = 4u64 * batch_n.max(1) as u64;
        if let Some(bp) = &self.buffer_plan {
            report.peak_arena_bytes = bp.peak_elems as u64 * sample_bytes;
            report.naive_arena_bytes = bp.naive_elems as u64 * sample_bytes;
        } else {
            let naive: usize = self.out_elems.iter().sum();
            report.peak_arena_bytes = naive as u64 * sample_bytes;
            report.naive_arena_bytes = report.peak_arena_bytes;
        }
    }

    /// Executes the plan on a `(N, ...)` batch by fanning samples across a
    /// persistent [`WorkerPool`], one deterministic RNG stream per sample
    /// (see [`sample_stream_seed`]): outputs are bit-identical for any
    /// worker count, and bit-identical to [`ExecPlan::execute`] on the
    /// noiseless datapath.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-4.
    pub fn execute_batch<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport) {
        assert_eq!(x.ndim(), 4, "input must be (N, C, H, W)");
        let n = x.shape()[0];
        if n == 0 {
            // An empty batch walks the plan once (every op handles N = 0)
            // so the output carries the correct trailing shape, as the
            // legacy path did.
            let mut rng = StdRng::seed_from_u64(seed);
            return self.execute(x, &mut rng);
        }
        let sample_shape = [1, x.shape()[1], x.shape()[2], x.shape()[3]];
        let sample_len: usize = x.shape()[1..].iter().product();
        // Each job runs its sample on a recycled arena and hands the
        // arena itself back (output and report ride inside it), so the
        // steady-state batch loop allocates only the sample views and the
        // final assembly, never per-op tensors.
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                let sample = Tensor::from_vec(
                    x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                    &sample_shape,
                )
                .expect("sample slice matches shape");
                move || {
                    let mut rng = StdRng::seed_from_u64(sample_stream_seed(seed, i));
                    let mut arena = self.take_arena();
                    self.execute_in(&sample, &mut rng, &mut arena);
                    arena
                }
            })
            .collect();
        let arenas = pool.run(jobs);
        let per_sample: usize = arenas[0].output().data().len();
        let mut out_shape = arenas[0].output().shape().to_vec();
        out_shape[0] = n;
        let mut data = Vec::with_capacity(n * per_sample);
        let mut report = ExecutionReport::default();
        for arena in arenas {
            data.extend_from_slice(arena.output().data());
            report.merge(arena.report());
            self.give_arena(arena);
        }
        (
            Tensor::from_vec(data, &out_shape).expect("batched output shape"),
            report,
        )
    }
}

/// Trained (or generated) parameters for a [`NetworkDesc`], aligned with
/// its layer list.
pub struct NetworkWeights {
    /// Main weight per layer (convs: `(OC, C, k, k)`; linears:
    /// `(outs, ins)`), `None` for parameter-free layers.
    weights: Vec<Option<Tensor>>,
    /// Projection weight per `ResidualAdd` layer (`(OC, C, 1, 1)`).
    projections: Vec<Option<Tensor>>,
    /// Bias per linear layer.
    biases: Vec<Option<Vec<f32>>>,
}

impl NetworkWeights {
    /// Deterministic Kaiming-initialized weights for every CiM layer of
    /// `desc` (zero biases) — enough to *execute* a zoo architecture at
    /// full fidelity when no trained checkpoint exists.
    pub fn random(desc: &NetworkDesc, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(desc.layers.len());
        let mut projections = Vec::with_capacity(desc.layers.len());
        let mut biases = Vec::with_capacity(desc.layers.len());
        for layer in &desc.layers {
            let (w, p, b) = match layer {
                LayerSpec::Conv {
                    in_ch,
                    out_ch,
                    kernel,
                    ..
                } => (
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[*out_ch, *in_ch, *kernel, *kernel],
                        &mut rng,
                    )),
                    None,
                    None,
                ),
                LayerSpec::Linear {
                    in_features,
                    out_features,
                    bias,
                    ..
                } => (
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[*out_features, *in_features],
                        &mut rng,
                    )),
                    None,
                    bias.then(|| vec![0.0; *out_features]),
                ),
                LayerSpec::ResidualAdd {
                    projection: Some(p),
                    ..
                } => (
                    None,
                    Some(yoloc_tensor::init::kaiming_normal(
                        &[p.out_ch, p.in_ch, 1, 1],
                        &mut rng,
                    )),
                    None,
                ),
                _ => (None, None, None),
            };
            weights.push(w);
            projections.push(p);
            biases.push(b);
        }
        NetworkWeights {
            weights,
            projections,
            biases,
        }
    }

    fn weight(&self, idx: usize, name: &str) -> Result<&Tensor, NetworkError> {
        self.weights[idx].as_ref().ok_or_else(|| NetworkError {
            msg: format!("missing weights for layer {name}"),
        })
    }
}

/// Fabric-level fault-injection configuration: seeded fault rates plus
/// the physical subarray id space placements are assigned from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seeded fault rates (see [`yoloc_cim::FaultSpec`]).
    pub spec: FaultSpec,
    /// Total physical subarrays in the fabric. `0` means "just enough":
    /// the compiler sizes the fabric to the network's naive subarray
    /// demand plus dead-subarray slack plus the spare pool.
    pub total_subarrays: u64,
    /// Subarrays reserved as hot spares at the top of the id space.
    pub spare_subarrays: u64,
}

impl FaultConfig {
    /// A fabric sized to the network (`total_subarrays = 0`) with
    /// `spare` hot spares and the given fault spec.
    pub fn sized(spec: FaultSpec, spare: u64) -> Self {
        FaultConfig {
            spec,
            total_subarrays: 0,
            spare_subarrays: spare,
        }
    }
}

/// Compile-time configuration: macro parameters, default and per-layer
/// backend selection, mapping strategy, and the memory hierarchy.
#[derive(Clone, Deserialize)]
pub struct CompileOptions {
    /// ROM-CiM macro for trunk layers.
    pub rom: MacroParams,
    /// SRAM-CiM macro for the prediction head.
    pub sram: MacroParams,
    /// Default execution backend for every CiM layer.
    pub backend: BackendKind,
    /// Per-layer backend overrides, matched by layer name.
    pub backend_overrides: Vec<(String, BackendKind)>,
    /// Subarray placement strategy reported by the compiled network.
    pub mapping: MappingStrategy,
    /// Memory hierarchy for live traffic accounting.
    pub memory: MemoryParams,
    /// Optimization passes run over the lowered plan, in order. The
    /// default pipeline fuses epilogues, sweeps dead ops and plans the
    /// activation arena; [`PassPipeline::none`] compiles the legacy
    /// unfused plan the parity tests use as their oracle.
    pub passes: PassPipeline,
    /// Fault-injection configuration. `None` (the default) compiles the
    /// pristine fabric and serializes exactly as before, so zero-fault
    /// plan-cache keys are unchanged.
    pub faults: Option<FaultConfig>,
}

/// Hand-written so `faults: None` is *omitted* from the rendering
/// instead of emitted as `null` — the content-addressed plan-cache key
/// hashes this document, and pre-fault cache entries must keep their
/// keys. The derived [`Deserialize`] treats the missing field as `None`.
impl Serialize for CompileOptions {
    fn to_json(&self) -> serde::json::Value {
        let mut fields = vec![
            ("rom", self.rom.to_json()),
            ("sram", self.sram.to_json()),
            ("backend", self.backend.to_json()),
            ("backend_overrides", self.backend_overrides.to_json()),
            ("mapping", self.mapping.to_json()),
            ("memory", self.memory.to_json()),
            ("passes", self.passes.to_json()),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json()));
        }
        serde::json::Value::obj(fields)
    }
}

impl CompileOptions {
    /// Paper-default macros, popcount backend, packed placement, full
    /// pass pipeline.
    pub fn paper_default() -> Self {
        CompileOptions {
            rom: MacroParams::rom_paper(),
            sram: MacroParams::sram_paper(),
            backend: BackendKind::Popcount,
            backend_overrides: Vec::new(),
            mapping: MappingStrategy::Packed,
            memory: MemoryParams::paper_default(),
            passes: PassPipeline::paper_default(),
            faults: None,
        }
    }

    fn backend_for(&self, name: &str) -> BackendKind {
        self.backend_overrides
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
            .unwrap_or(self.backend)
    }
}

/// A [`NetworkDesc`] compiled onto the macro fabric: the executable plan
/// plus its `mapping.rs` placement.
pub struct CompiledNetwork {
    plan: ExecPlan,
    /// Network name (from the description).
    pub name: String,
    /// Per-layer subarray placement (naive, packed and sharded counts).
    pub mapping: NetworkMapping,
    /// What each optimization pass did to the plan, in pipeline order.
    pub pass_reports: Vec<PassReport>,
    strategy: MappingStrategy,
    input: Shape,
    /// Fabric fault map this deployment was placed against (`None` on
    /// pristine compiles and on every `yoloc-plan/1` document).
    pub fault_map: Option<FaultMap>,
    /// The fault configuration the deployment compiled under.
    pub fault_config: Option<FaultConfig>,
}

impl CompiledNetwork {
    /// Compiles `desc` with explicit `weights`, calibrating activation
    /// quantization layer by layer on `calibration` (a `(N, C, H, W)`
    /// batch matching the network input).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if shapes are inconsistent, weights are
    /// missing, or a passthrough source cannot be located.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` does not match the network input shape.
    pub fn compile(
        desc: &NetworkDesc,
        weights: &NetworkWeights,
        calibration: &Tensor,
        opts: CompileOptions,
    ) -> Result<Self, NetworkError> {
        COMPILES.fetch_add(1, Ordering::Relaxed);
        assert_eq!(calibration.ndim(), 4, "calibration must be (N, C, H, W)");
        assert_eq!(
            &calibration.shape()[1..],
            &[desc.input.0, desc.input.1, desc.input.2],
            "calibration shape must match the network input"
        );
        let reports = desc.analyze()?;
        let mut mapping = map_network_with(desc, &opts.rom, opts.mapping)?;
        // Fault-aware placement: derive the dead-subarray set from the
        // seeded fault plan, then assign physical subarray ids skipping
        // dead ones (spares stay reserved at the top of the id space).
        let fault_state = match &opts.faults {
            None => None,
            Some(cfg) => {
                let fplan = FaultPlan::new(cfg.spec);
                let naive: u64 = mapping
                    .placements
                    .iter()
                    .map(|p| p.naive_subarrays() as u64)
                    .sum();
                let mut total = if cfg.total_subarrays == 0 {
                    naive + cfg.spare_subarrays
                } else {
                    cfg.total_subarrays
                };
                let mut grow_rounds = 0;
                let fm = loop {
                    let mut fm = FaultMap::healthy(total, cfg.spare_subarrays);
                    for id in fplan.dead_subarrays(total) {
                        fm.mark_dead(id);
                    }
                    match assign_subarrays(&mut mapping, &fm) {
                        Ok(()) => break fm,
                        // Auto-sized fabrics grow past dead subarrays
                        // (bounded: a near-total death rate must not
                        // spin forever).
                        Err(MapFaultError::OutOfSubarrays { needed, available })
                            if cfg.total_subarrays == 0 && grow_rounds < 64 =>
                        {
                            total += (needed - available).max(1);
                            grow_rounds += 1;
                        }
                        Err(e) => {
                            return Err(NetworkError {
                                msg: format!("fault-aware placement failed: {e}"),
                            })
                        }
                    }
                };
                Some((fplan, fm))
            }
        };
        // Per-layer fault record: the layer's assigned physical ids plus
        // the link slowdown of its chiplet (chip 0 when unsharded).
        let layer_fault_record = |cim_idx: usize, mapping: &NetworkMapping| {
            let (fplan, _) = fault_state.as_ref()?;
            let p = &mapping.placements[cim_idx];
            let chip = mapping.shard.as_ref().map_or(0, |s| s.chip_of[cim_idx]) as u64;
            Some(LayerFaults {
                spec: *fplan.spec(),
                phys_ids: p
                    .subarray_ids
                    .clone()
                    .expect("faulted compile assigns subarray ids"),
                link_slowdown: fplan.slowdown_for_links(&[chip]),
            })
        };
        let mut cim_idx = 0usize;
        let last_cim = desc.layers.iter().rposition(|l| l.is_cim_layer());
        let cal_n = calibration.shape()[0].max(1);
        let mut plan = ExecPlan::new(opts.memory.clone());
        let mut h = calibration.clone();
        // Float outputs per layer (residual/passthrough sources and
        // calibration inputs) and the plan op producing each layer.
        let mut history: Vec<Tensor> = Vec::with_capacity(desc.layers.len());
        let mut op_of_layer: Vec<Option<usize>> = Vec::with_capacity(desc.layers.len());
        let mut last_op: Option<usize> = None;
        for (idx, layer) in desc.layers.iter().enumerate() {
            match layer {
                LayerSpec::Conv {
                    name,
                    stride,
                    padding,
                    ..
                } => {
                    let w = weights.weight(idx, name)?;
                    let (domain, params) = if Some(idx) == last_cim {
                        (MemDomain::Sram, opts.sram)
                    } else {
                        (MemDomain::Rom, opts.rom)
                    };
                    let conv = CimConv2d::compile_on_with(
                        opts.backend_for(name),
                        w,
                        *stride,
                        *padding,
                        &[&h],
                        params,
                        layer_fault_record(cim_idx, &mapping),
                    );
                    cim_idx += 1;
                    h = conv2d_reference(&h, w, None, *stride, *padding);
                    last_op = Some(plan.push(
                        PlanOp::Conv {
                            conv,
                            domain,
                            epilogue: Vec::new(),
                        },
                        h.data().len() / cal_n,
                    ));
                }
                LayerSpec::Linear { name, .. } => {
                    let w = weights.weight(idx, name)?;
                    // The pre-flatten map is dead here: reshape in place.
                    let feats = flatten_2d_owned(std::mem::take(&mut h));
                    let (domain, params) = if Some(idx) == last_cim {
                        (MemDomain::Sram, opts.sram)
                    } else {
                        (MemDomain::Rom, opts.rom)
                    };
                    let bias = weights.biases[idx].as_deref();
                    let linear = CimLinear::compile_on_with(
                        opts.backend_for(name),
                        w,
                        bias,
                        &[&feats],
                        params,
                        layer_fault_record(cim_idx, &mapping),
                    );
                    cim_idx += 1;
                    h = linear_reference(&feats, w, bias);
                    last_op = Some(plan.push(
                        PlanOp::Linear {
                            linear,
                            domain,
                            epilogue: Vec::new(),
                        },
                        h.data().len() / cal_n,
                    ));
                }
                LayerSpec::BatchNorm { .. } => {
                    // Folded into the preceding conv: identity at
                    // inference; no op is emitted.
                }
                LayerSpec::Activation(kind) => {
                    h = apply_act(&h, *kind);
                    last_op = Some(plan.push(PlanOp::Activation(*kind), h.data().len() / cal_n));
                }
                LayerSpec::MaxPool { kernel, stride } => {
                    h = MaxPool2d::new(*kernel, *stride).forward(&h, false);
                    last_op = Some(plan.push(
                        PlanOp::MaxPool {
                            kernel: *kernel,
                            stride: *stride,
                        },
                        h.data().len() / cal_n,
                    ));
                }
                LayerSpec::GlobalAvgPool => {
                    h = gap(&h);
                    last_op = Some(plan.push(PlanOp::GlobalAvgPool, h.data().len() / cal_n));
                }
                LayerSpec::Passthrough { extra_ch } => {
                    let src_layer = passthrough_source(&reports, idx)?;
                    let source = match op_of_layer[src_layer] {
                        Some(i) => OpSource::Op(i),
                        None => OpSource::Input,
                    };
                    h = passthrough_concat(&history[src_layer], &h, *extra_ch);
                    last_op = Some(plan.push(
                        PlanOp::Passthrough {
                            source,
                            extra_ch: *extra_ch,
                        },
                        h.data().len() / cal_n,
                    ));
                }
                LayerSpec::ResidualAdd {
                    blocks_back,
                    projection,
                } => {
                    let from_input = *blocks_back == idx + 1;
                    let source = if from_input {
                        OpSource::Input
                    } else {
                        match op_of_layer[idx - blocks_back] {
                            Some(i) => OpSource::Op(i),
                            None => OpSource::Input,
                        }
                    };
                    // Shared with software_forward: resolve the skip
                    // source and apply the projection reference.
                    let (src_float, skip_float) = residual_skip_reference(
                        idx,
                        *blocks_back,
                        projection.as_ref(),
                        weights,
                        &history,
                        calibration,
                    )?;
                    let proj = match projection {
                        None => None,
                        Some(p) => {
                            let w = weights.projections[idx].as_ref().expect("checked above");
                            let conv = CimConv2d::compile_on_with(
                                opts.backend_for(&p.name),
                                w,
                                p.stride,
                                0,
                                &[&src_float],
                                opts.rom,
                                layer_fault_record(cim_idx, &mapping),
                            );
                            cim_idx += 1;
                            Some(Box::new((conv, MemDomain::Rom)))
                        }
                    };
                    h = h.add(&skip_float);
                    last_op = Some(plan.push(
                        PlanOp::ResidualAdd {
                            source,
                            projection: proj,
                        },
                        h.data().len() / cal_n,
                    ));
                }
            }
            history.push(h.clone());
            op_of_layer.push(last_op);
        }
        // Placement-derived tile fan-out: each layer's single-inference
        // work is split across the macro clusters of its chip's mesh.
        plan.set_tile_hints(opts.memory.clusters());
        if let Some(shard) = &mapping.shard {
            plan.assign_chips(shard);
        }
        let pass_reports = opts.passes.run(&mut plan);
        // Materialize the execution arena from the buffer plan now, so
        // the first inference starts from pre-sized slots instead of
        // growing them (per-deployment scratch is a compile-time cost).
        if let Some(bp) = plan.buffer_plan() {
            let mut arena = ExecArena::new();
            arena.materialize(bp, 1);
            plan.give_arena(arena);
        }
        Ok(CompiledNetwork {
            plan,
            name: desc.name.clone(),
            mapping,
            pass_reports,
            strategy: opts.mapping,
            input: desc.input,
            fault_map: fault_state.map(|(_, fm)| fm),
            fault_config: opts.faults,
        })
    }

    /// Compiles `desc` with deterministic random weights and a generated
    /// calibration batch — the one-call entry point for executing a zoo
    /// architecture (see the module example).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the description is inconsistent.
    pub fn compile_random(
        desc: &NetworkDesc,
        seed: u64,
        opts: CompileOptions,
    ) -> Result<Self, NetworkError> {
        let weights = NetworkWeights::random(desc, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA11_B0A7);
        let (c, ih, iw) = desc.input;
        let calibration = Tensor::rand_uniform(&[2, c, ih, iw], 0.0, 1.0, &mut rng);
        Self::compile(desc, &weights, &calibration, opts)
    }

    /// The network input shape `(C, H, W)`.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Repairs the deployment after subarrays die in the field: marks
    /// `newly_dead` in the fault map, re-homes only the placements whose
    /// subarrays were hit onto spares ([`remap_placements`]), and
    /// re-programs exactly those layers' engines. Returns the indices of
    /// the repaired placements (empty when nothing was hit).
    ///
    /// # Errors
    ///
    /// [`MapFaultError::OutOfSpares`] when the spare pool cannot cover
    /// the dead slots — the deployment keeps executing with the faulty
    /// placements in that case (the caller decides whether to keep
    /// serving degraded or to take the model out of rotation).
    ///
    /// # Panics
    ///
    /// Panics when called on a deployment compiled without
    /// [`CompileOptions::faults`] (there is no fault map to repair).
    pub fn remap_faults(&mut self, newly_dead: &[u64]) -> Result<Vec<usize>, MapFaultError> {
        let fm = self
            .fault_map
            .as_mut()
            .expect("remap_faults requires a fault-aware compile");
        let affected = remap_placements(&mut self.mapping, fm, newly_dead)?;
        for &idx in &affected {
            let ids = self.mapping.placements[idx]
                .subarray_ids
                .clone()
                .expect("fault-aware placements carry ids");
            let ok = self.plan.reprogram_cim_ids(idx, &ids);
            debug_assert!(ok, "placement {idx} has no matching CiM op");
        }
        Ok(affected)
    }

    /// Subarrays consumed under the compile-time [`MappingStrategy`].
    pub fn subarrays(&self) -> usize {
        self.mapping.subarrays(self.strategy)
    }

    /// Physical subarrays actually programmed, `(rom, sram)`.
    pub fn programmed_subarrays(&self) -> (usize, usize) {
        self.plan.subarrays()
    }

    /// Enables or disables the popcount fast path on every layer.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.plan.set_fast_path(enabled);
    }

    /// The compiled execution plan (op count, buffer plan, shard layout).
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Runs one inference through the quantized CiM datapath, returning
    /// the network output and the live execution report. Runs on a
    /// recycled [`ExecArena`] from the deployment's pool whenever the
    /// plan carries a buffer plan; see [`CompiledNetwork::infer_in`] for
    /// the fully allocation-free borrowing form.
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn infer<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, ExecutionReport) {
        self.plan.execute(x, rng)
    }

    /// Runs one inference into a caller-owned [`ExecArena`], returning
    /// views that borrow the arena: the zero-allocation steady-state
    /// entry (see [`ExecArena`] for the warm-up contract and an example).
    pub fn infer_in<'a, R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        rng: &mut R,
        arena: &'a mut ExecArena,
    ) -> (&'a Tensor, &'a ExecutionReport) {
        self.plan.execute_in(x, rng, arena)
    }

    /// Takes a recycled execution arena from the deployment's pool (the
    /// compile-time-materialized one on the first call).
    pub fn take_arena(&self) -> ExecArena {
        self.plan.take_arena()
    }

    /// Returns an arena to the deployment's pool for later reuse.
    pub fn give_arena(&self, arena: ExecArena) {
        self.plan.give_arena(arena)
    }

    /// Runs one inference through the tile-parallel
    /// [`crate::engine::Scheduler`]: the plan's CiM ops are partitioned
    /// into placement-derived tiles and fanned across `pool`, so a
    /// *single* sample scales with worker count while staying
    /// bit-identical to [`CompiledNetwork::infer`] on the noiseless
    /// datapath (and bit-identical across worker counts always).
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn infer_tiled<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport) {
        crate::engine::Scheduler::new(&self.plan).infer(x, seed, pool)
    }

    /// Batched inference over a persistent [`WorkerPool`]; see
    /// [`ExecPlan::execute_batch`].
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn infer_batch<'env>(
        &'env self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport) {
        self.plan.execute_batch(x, seed, pool)
    }
}

/// Float reference of a linear layer: `y = W x + b` on `(N, ins)`.
fn linear_reference(feats: &Tensor, w: &Tensor, bias: Option<&[f32]>) -> Tensor {
    let (n, ins) = (feats.shape()[0], feats.shape()[1]);
    let outs = w.shape()[0];
    let mut out = Tensor::zeros(&[n, outs]);
    for ni in 0..n {
        for o in 0..outs {
            let mut acc = 0.0f32;
            for i in 0..ins {
                acc += w.at(&[o, i]) * feats.at(&[ni, i]);
            }
            if let Some(b) = bias {
                acc += b[o];
            }
            *out.at_mut(&[ni, o]) = acc;
        }
    }
    out
}

/// Locates the passthrough reorg source: the latest earlier layer whose
/// output map sits at exactly twice the resolution of the current map.
/// Shared by compile-time calibration and [`software_forward`] so the two
/// walks cannot diverge.
fn passthrough_source(
    reports: &[yoloc_models::LayerReport],
    idx: usize,
) -> Result<usize, NetworkError> {
    let (th, tw) = (reports[idx].in_shape.1, reports[idx].in_shape.2);
    (0..idx)
        .rev()
        .find(|&j| reports[j].out_shape.1 == 2 * th && reports[j].out_shape.2 == 2 * tw)
        .ok_or_else(|| NetworkError {
            msg: format!(
                "passthrough at layer {idx}: no earlier map at {}x{}",
                2 * th,
                2 * tw
            ),
        })
}

/// Resolves a residual skip's float source map and applies the projection
/// reference (if any), returning `(source, skip)`. Shared by compile-time
/// calibration and [`software_forward`] so the two walks cannot diverge.
fn residual_skip_reference(
    idx: usize,
    blocks_back: usize,
    projection: Option<&yoloc_models::ProjectionSpec>,
    weights: &NetworkWeights,
    history: &[Tensor],
    x: &Tensor,
) -> Result<(Tensor, Tensor), NetworkError> {
    let src = if blocks_back == idx + 1 {
        x.clone()
    } else {
        history[idx - blocks_back].clone()
    };
    let skip = match projection {
        None => src.clone(),
        Some(p) => {
            let w = weights.projections[idx]
                .as_ref()
                .ok_or_else(|| NetworkError {
                    msg: format!("missing projection weights for {}", p.name),
                })?;
            conv2d_reference(&src, w, None, p.stride, 0)
        }
    };
    Ok((src, skip))
}

/// The floating-point software reference of a compiled network: the same
/// graph walk with float convolutions, used for accuracy comparisons
/// against the quantized CiM execution.
///
/// # Errors
///
/// Returns [`NetworkError`] on inconsistent descriptions or missing
/// weights.
pub fn software_forward(
    desc: &NetworkDesc,
    weights: &NetworkWeights,
    x: &Tensor,
) -> Result<Tensor, NetworkError> {
    let reports = desc.analyze()?;
    let mut h = x.clone();
    let mut history: Vec<Tensor> = Vec::with_capacity(desc.layers.len());
    for (idx, layer) in desc.layers.iter().enumerate() {
        match layer {
            LayerSpec::Conv {
                name,
                stride,
                padding,
                ..
            } => {
                let w = weights.weight(idx, name)?;
                h = conv2d_reference(&h, w, None, *stride, *padding);
            }
            LayerSpec::Linear { name, .. } => {
                let w = weights.weight(idx, name)?;
                let feats = flatten_2d_owned(std::mem::take(&mut h));
                h = linear_reference(&feats, w, weights.biases[idx].as_deref());
            }
            LayerSpec::BatchNorm { .. } => {}
            LayerSpec::Activation(kind) => h = apply_act(&h, *kind),
            LayerSpec::MaxPool { kernel, stride } => {
                h = MaxPool2d::new(*kernel, *stride).forward(&h, false);
            }
            LayerSpec::GlobalAvgPool => h = gap(&h),
            LayerSpec::Passthrough { extra_ch } => {
                let src = passthrough_source(&reports, idx)?;
                h = passthrough_concat(&history[src], &h, *extra_ch);
            }
            LayerSpec::ResidualAdd {
                blocks_back,
                projection,
            } => {
                let (_, skip) = residual_skip_reference(
                    idx,
                    *blocks_back,
                    projection.as_ref(),
                    weights,
                    &history,
                    x,
                )?;
                h = h.add(&skip);
            }
        }
        history.push(h.clone());
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkerPool;
    use yoloc_models::zoo;

    fn small_opts() -> CompileOptions {
        CompileOptions::paper_default()
    }

    #[test]
    fn compiled_vgg_tracks_software_reference() {
        let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
        let weights = NetworkWeights::random(&desc, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cal = Tensor::rand_uniform(&[2, 1, 16, 16], 0.0, 1.0, &mut rng);
        let net = CompiledNetwork::compile(&desc, &weights, &cal, small_opts()).unwrap();
        let x = Tensor::rand_uniform(&[2, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        let sw = software_forward(&desc, &weights, &x).unwrap();
        assert_eq!(y.shape(), sw.shape());
        let mag = sw.abs_max().max(1e-6);
        for (a, b) in y.data().iter().zip(sw.data()) {
            assert!((a - b).abs() / mag < 0.15, "cim {a} vs sw {b}");
        }
        // Live accounting: both domains active (trunk in ROM, head in
        // SRAM), every hierarchy level paid.
        assert!(report.rom.energy_pj > 0.0);
        assert!(report.sram.energy_pj > 0.0);
        assert!(report.energy.buffer_uj > 0.0);
        assert!(report.energy.noc_uj > 0.0);
        assert!(report.energy.dram_uj > 0.0);
        assert!(report.latency_ns > 0.0);
        assert!(report.energy.total_uj() > 0.0);
    }

    #[test]
    fn compiled_residual_and_projection_networks_run() {
        // ResNet-18 scaled down: exercises ResidualAdd with and without
        // projections end to end.
        let desc = zoo::scaled(&zoo::resnet18(3), 16, (32, 32));
        let net = CompiledNetwork::compile_random(&desc, 11, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::rand_uniform(&[1, 1, 32, 32], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        assert_eq!(y.shape(), &[1, 3]);
        assert!(report.rom.analog_evaluations > 0);
        // Projections are programmed: more ROM subarrays than zero.
        let (rom_subs, sram_subs) = net.programmed_subarrays();
        assert!(rom_subs > 0 && sram_subs > 0);
    }

    #[test]
    fn compiled_yolo_passthrough_runs_end_to_end() {
        let desc = zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64));
        let net = CompiledNetwork::compile_random(&desc, 21, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let x = Tensor::rand_uniform(&[1, 1, 64, 64], 0.0, 1.0, &mut rng);
        let (y, report) = net.infer(&x, &mut rng);
        // 64x64 input downsamples x32 -> 2x2 detection map, channels per
        // the scaled IR's own shape propagation.
        let expect = desc.analyze().unwrap().last().unwrap().out_shape;
        assert_eq!(y.shape(), &[1, expect.0, expect.1, expect.2]);
        assert!(report.energy.total_uj() > 0.0);
        assert!(report.dram_traffic_bits > 0);
    }

    #[test]
    fn batched_compiled_inference_bit_identical_to_serial() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 31, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let x = Tensor::rand_uniform(&[5, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (serial, serial_report) = net.infer(&x, &mut rng);
        for workers in [1, 2, 4] {
            let (batched, report) = WorkerPool::with(workers, |pool| net.infer_batch(&x, 9, pool));
            assert_eq!(serial.data(), batched.data(), "workers = {workers}");
            assert_eq!(
                serial_report.rom.analog_evaluations,
                report.rom.analog_evaluations
            );
            assert_eq!(
                serial_report.rom.adc_conversions,
                report.rom.adc_conversions
            );
            assert_eq!(
                serial_report.buffer_traffic_bits,
                report.buffer_traffic_bits
            );
            assert_eq!(serial_report.dram_traffic_bits, report.dram_traffic_bits);
        }
    }

    #[test]
    fn empty_batch_is_handled() {
        // Regression: the batched path must not index results[0] on an
        // empty batch; it returns an output with the correct trailing
        // shape and a zero report, like the serial path.
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 71, small_opts()).unwrap();
        let x = Tensor::zeros(&[0, 1, 16, 16]);
        let (y, report) = WorkerPool::with(2, |pool| net.infer_batch(&x, 5, pool));
        assert_eq!(y.shape(), &[0, 3]);
        assert_eq!(report.rom.analog_evaluations, 0);
        assert_eq!(report.dram_traffic_bits, 0);
    }

    #[test]
    fn software_backend_override_zeroes_layer_energy() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = small_opts();
        // Run everything on the software golden model.
        opts.backend = BackendKind::Software;
        let net = CompiledNetwork::compile_random(&desc, 41, opts).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (_, report) = net.infer(&x, &mut rng);
        assert_eq!(report.rom.energy_pj, 0.0);
        assert_eq!(report.sram.energy_pj, 0.0);
        assert_eq!(report.energy.cim_uj, 0.0);
        // The memory hierarchy still moves activations.
        assert!(report.energy.buffer_uj > 0.0);
        let (rom_subs, sram_subs) = net.programmed_subarrays();
        assert_eq!((rom_subs, sram_subs), (0, 0));
    }

    #[test]
    fn per_layer_backend_override_applies_by_name() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = small_opts();
        opts.backend_overrides = vec![("conv1".to_string(), BackendKind::Software)];
        let net = CompiledNetwork::compile_random(&desc, 51, opts).unwrap();
        let base = CompiledNetwork::compile_random(&desc, 51, small_opts()).unwrap();
        // conv1 contributes no subarrays under the override.
        assert!(net.programmed_subarrays().0 < base.programmed_subarrays().0);
        // And both produce identical logits at the exact design point.
        let mut rng = StdRng::seed_from_u64(52);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (a, _) = net.infer(&x, &mut rng);
        let (b, _) = base.infer(&x, &mut rng);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn intra_sample_latency_model_scales_with_lanes() {
        // The acceptance target of the tile-parallel refactor: at 4
        // macro-cluster lanes a single inference's modeled latency beats
        // the serial walk by > 1.5x (the conv tiles dominate; NoC/DRAM
        // transfers stay serial).
        let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 7, small_opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (_, report) = net.infer(&x, &mut rng);
        assert_eq!(
            report.intra_sample_latency_ns.len(),
            ExecutionReport::INTRA_SAMPLE_LANES.len()
        );
        assert!(report
            .intra_sample_latency_ns
            .windows(2)
            .all(|w| w[1] <= w[0] + 1e-9));
        // One lane is exactly the serial model (same fold, same terms).
        assert!((report.intra_sample_latency_ns[0] - report.latency_ns).abs() < 1e-6);
        let s4 = report.intra_sample_speedup(4).expect("4 lanes modeled");
        assert!(s4 > 1.5, "modeled 4-lane intra-sample speedup only {s4}");
        assert!(report.intra_sample_speedup(3).is_none());
    }

    #[test]
    fn packed_mapping_never_exceeds_naive() {
        let desc = zoo::scaled(&zoo::tiny_yolo(4, 2), 16, (64, 64));
        let net = CompiledNetwork::compile_random(&desc, 61, small_opts()).unwrap();
        assert!(net.mapping.subarrays_packed <= net.mapping.subarrays_naive);
        assert_eq!(net.subarrays(), net.mapping.subarrays_packed);
    }
}
