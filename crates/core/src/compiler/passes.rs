//! The optimizing pass framework over the [`ExecPlan`] IR.
//!
//! Compilation lowers a `NetworkDesc` to a *raw* plan — one op per IR
//! layer, digital ops standing alone between CiM ops. The pass pipeline
//! then rewrites the plan in place:
//!
//! 1. [`PassKind::EpilogueFusion`] folds digital epilogues (activation,
//!    max-pooling, projection-free residual merges) into the CiM
//!    conv/linear op that produces their input. The fused intermediate no
//!    longer round-trips the activation cache or the NoC, which is where
//!    the measured traffic/energy win comes from. Fusion is purely a
//!    *scheduling* rewrite: the arithmetic (and hence the logits and
//!    [`yoloc_cim::macro_model::MvmStats`]) is bit-identical to the
//!    unfused plan, which the parity tests pin.
//! 2. [`PassKind::DeadOpElimination`] sweeps the identity `PlanOp::Nop`s
//!    fusion leaves behind and remaps every `OpSource` onto the
//!    surviving op indices.
//! 3. [`PassKind::BufferLiveness`] computes output live ranges and plans
//!    the slot-reuse activation arena (see [`super::buffers`]), replacing
//!    per-op allocation; the planned and naive footprints surface in every
//!    `ExecutionReport`.
//!
//! Passes implement the `Pass` trait and run through a [`PassPipeline`]
//! (a value type, so `CompileOptions` stays `Clone`); each run returns a
//! [`PassReport`] describing what changed.

use super::{EpilogueOp, ExecPlan, OpSource, PlanOp};
use crate::compiler::buffers::BufferPlan;

/// What one pass did to a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Pass name (stable, used in bench reports).
    pub pass: &'static str,
    /// Op count before the pass ran.
    pub ops_before: usize,
    /// Op count after.
    pub ops_after: usize,
    /// Human-readable summary of the rewrite.
    pub detail: String,
}

/// The pass name is an interned `&'static str`, so serialization is
/// hand-written: `to_json` emits the fields in declaration order and
/// `from_value` re-interns the name against the closed pass set (an
/// unknown name is a clear error, which doubles as format validation
/// for on-disk plans).
impl serde::Serialize for PassReport {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::obj([
            ("pass", self.pass.to_json()),
            ("ops_before", self.ops_before.to_json()),
            ("ops_after", self.ops_after.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

impl serde::Deserialize for PassReport {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let name: String = crate::qconv::json_field(v, "pass")?;
        let pass = [
            EpilogueFusion.name(),
            DeadOpElimination.name(),
            BufferLiveness.name(),
        ]
        .into_iter()
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown pass {name:?}"))?;
        Ok(PassReport {
            pass,
            ops_before: crate::qconv::json_field(v, "ops_before")?,
            ops_after: crate::qconv::json_field(v, "ops_after")?,
            detail: crate::qconv::json_field(v, "detail")?,
        })
    }
}

/// A rewrite over the [`ExecPlan`] IR.
pub(crate) trait Pass {
    /// Stable pass name.
    fn name(&self) -> &'static str;
    /// Rewrites `plan` in place, returning a summary of what changed.
    fn run(&self, plan: &mut ExecPlan) -> String;
}

/// The named passes the pipeline can run (a closed, `Copy` set so
/// `CompileOptions` remains a plain value type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PassKind {
    /// Fold digital act/pool/residual epilogues into CiM ops.
    EpilogueFusion,
    /// Sweep `Nop`s and remap sources.
    DeadOpElimination,
    /// Plan the slot-reuse activation arena.
    BufferLiveness,
}

impl PassKind {
    fn instantiate(self) -> Box<dyn Pass> {
        match self {
            PassKind::EpilogueFusion => Box::new(EpilogueFusion),
            PassKind::DeadOpElimination => Box::new(DeadOpElimination),
            PassKind::BufferLiveness => Box::new(BufferLiveness),
        }
    }
}

/// An ordered list of passes to run over a freshly lowered plan.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassPipeline {
    kinds: Vec<PassKind>,
}

impl PassPipeline {
    /// The default optimizing pipeline: fusion, then the `Nop` sweep, then
    /// arena planning.
    pub fn paper_default() -> Self {
        PassPipeline {
            kinds: vec![
                PassKind::EpilogueFusion,
                PassKind::DeadOpElimination,
                PassKind::BufferLiveness,
            ],
        }
    }

    /// No passes: the legacy unfused plan, kept as the parity oracle.
    pub fn none() -> Self {
        PassPipeline { kinds: Vec::new() }
    }

    /// A custom pass list (order is execution order).
    pub fn of(kinds: impl Into<Vec<PassKind>>) -> Self {
        PassPipeline {
            kinds: kinds.into(),
        }
    }

    /// The passes this pipeline runs, in order.
    pub fn kinds(&self) -> &[PassKind] {
        &self.kinds
    }

    /// Runs every pass over `plan` in order, collecting reports.
    pub fn run(&self, plan: &mut ExecPlan) -> Vec<PassReport> {
        self.kinds
            .iter()
            .map(|kind| {
                let pass = kind.instantiate();
                let ops_before = plan.len();
                let detail = pass.run(plan);
                PassReport {
                    pass: pass.name(),
                    ops_before,
                    ops_after: plan.len(),
                    detail,
                }
            })
            .collect()
    }
}

/// Epilogue fusion (see the module docs). Legality: a digital op fuses
/// into the preceding CiM op only when no other op reads the CiM op's raw
/// output, and a fusion chain stops as soon as a fused op's own output is
/// still read elsewhere (its `Nop` placeholder must keep yielding exactly
/// that value).
struct EpilogueFusion;

impl Pass for EpilogueFusion {
    fn name(&self) -> &'static str {
        "epilogue-fusion"
    }

    fn run(&self, plan: &mut ExecPlan) -> String {
        let n = plan.ops.len();
        // How many ops read each op's output through an OpSource.
        let mut refs = vec![0usize; n];
        for op in &plan.ops {
            for src in op.sources() {
                if let OpSource::Op(i) = src {
                    refs[i] += 1;
                }
            }
        }
        let mut fused = 0usize;
        let mut i = 0usize;
        while i < n {
            let fusable_target = matches!(
                plan.ops[i],
                PlanOp::Conv { .. } | PlanOp::ReBranch { .. } | PlanOp::Linear { .. }
            );
            if !fusable_target || refs[i] > 0 {
                i += 1;
                continue;
            }
            let spatial = !matches!(plan.ops[i], PlanOp::Linear { .. });
            loop {
                // Next op that still does something.
                let mut j = i + 1;
                while j < n && matches!(plan.ops[j], PlanOp::Nop) {
                    j += 1;
                }
                if j >= n {
                    break;
                }
                let folded = match &plan.ops[j] {
                    PlanOp::Activation(kind) => Some(EpilogueOp::Act(*kind)),
                    PlanOp::MaxPool { kernel, stride } if spatial => Some(EpilogueOp::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    }),
                    PlanOp::ResidualAdd {
                        source,
                        projection: None,
                    } if spatial => {
                        // The skip source must predate the CiM op: its
                        // value is unaffected by the fusion.
                        let ok = match source {
                            OpSource::Input => true,
                            OpSource::Op(s) => *s < i,
                        };
                        ok.then_some(EpilogueOp::Residual { source: *source })
                    }
                    _ => None,
                };
                let Some(e) = folded else { break };
                match &mut plan.ops[i] {
                    PlanOp::Conv { epilogue, .. }
                    | PlanOp::ReBranch { epilogue, .. }
                    | PlanOp::Linear { epilogue, .. } => epilogue.push(e),
                    _ => unreachable!("fusable target checked above"),
                }
                plan.ops[j] = PlanOp::Nop;
                plan.out_elems[i] = plan.out_elems[j];
                fused += 1;
                // If anything still reads op j's output, its Nop must keep
                // yielding exactly this value: stop the chain here.
                if refs[j] > 0 {
                    break;
                }
            }
            i += 1;
        }
        format!("folded {fused} digital op(s) into CiM epilogues")
    }
}

/// Sweeps [`PlanOp::Nop`]s and remaps every [`OpSource`] onto the
/// surviving op indices (a `Nop`'s value is the output of the last
/// surviving op before it, or the network input when none exists).
struct DeadOpElimination;

impl Pass for DeadOpElimination {
    fn name(&self) -> &'static str {
        "dead-op-elimination"
    }

    fn run(&self, plan: &mut ExecPlan) -> String {
        let n = plan.ops.len();
        // value_map[old] = where old op's value lives after the sweep.
        let mut value_map = Vec::with_capacity(n);
        let mut last_kept: Option<usize> = None;
        let mut kept = 0usize;
        for op in &plan.ops {
            if matches!(op, PlanOp::Nop) {
                value_map.push(match last_kept {
                    Some(k) => OpSource::Op(k),
                    None => OpSource::Input,
                });
            } else {
                value_map.push(OpSource::Op(kept));
                last_kept = Some(kept);
                kept += 1;
            }
        }
        let removed = n - kept;
        let remap = |src: &mut OpSource| {
            if let OpSource::Op(s) = src {
                *src = value_map[*s];
            }
        };
        let mut ops = std::mem::take(&mut plan.ops);
        let out_elems = std::mem::take(&mut plan.out_elems);
        let chip_of = std::mem::take(&mut plan.chip_of);
        for (idx, mut op) in ops.drain(..).enumerate() {
            if matches!(op, PlanOp::Nop) {
                continue;
            }
            match &mut op {
                PlanOp::Passthrough { source, .. } | PlanOp::ResidualAdd { source, .. } => {
                    remap(source)
                }
                PlanOp::Conv { epilogue, .. }
                | PlanOp::ReBranch { epilogue, .. }
                | PlanOp::Linear { epilogue, .. } => {
                    for e in epilogue {
                        if let EpilogueOp::Residual { source } = e {
                            remap(source);
                        }
                    }
                }
                _ => {}
            }
            plan.ops.push(op);
            plan.out_elems.push(out_elems[idx]);
            plan.chip_of.push(chip_of[idx]);
        }
        format!("removed {removed} dead op(s)")
    }
}

/// Computes output live ranges and stores the planned slot-reuse arena on
/// the plan (see [`BufferPlan`]).
struct BufferLiveness;

impl Pass for BufferLiveness {
    fn name(&self) -> &'static str {
        "buffer-liveness"
    }

    fn run(&self, plan: &mut ExecPlan) -> String {
        let bp = BufferPlan::plan(&plan.out_elems, &plan.last_use());
        let detail = format!(
            "{} outputs -> {} arena slots; peak {} vs naive {} elems/sample",
            plan.len(),
            bp.slots(),
            bp.peak_elems,
            bp.naive_elems
        );
        plan.buffer_plan = Some(bp);
        detail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompileOptions, CompiledNetwork};
    use yoloc_models::zoo;

    fn compile(passes: PassPipeline) -> CompiledNetwork {
        let desc = zoo::scaled(&zoo::vgg8(4), 16, (16, 16));
        let mut opts = CompileOptions::paper_default();
        opts.passes = passes;
        CompiledNetwork::compile_random(&desc, 3, opts).unwrap()
    }

    #[test]
    fn fusion_shrinks_the_plan_and_dce_reports_it() {
        let raw = compile(PassPipeline::none());
        let fused = compile(PassPipeline::paper_default());
        assert!(raw.pass_reports.is_empty());
        assert_eq!(fused.pass_reports.len(), 3);
        assert_eq!(fused.pass_reports[0].pass, "epilogue-fusion");
        assert_eq!(fused.pass_reports[1].pass, "dead-op-elimination");
        assert_eq!(fused.pass_reports[2].pass, "buffer-liveness");
        // VGG-8 interleaves conv/act/pool: fusion must fold a good chunk.
        assert!(
            fused.plan().len() < raw.plan().len(),
            "fused {} vs raw {}",
            fused.plan().len(),
            raw.plan().len()
        );
        assert_eq!(
            fused.pass_reports[1].ops_after,
            fused.plan().len(),
            "DCE report must reflect the final op count"
        );
        // The arena plan exists and beats per-op allocation.
        let bp = fused.plan().buffer_plan().expect("liveness ran");
        assert!(bp.peak_elems < bp.naive_elems);
    }

    #[test]
    fn fused_plan_keeps_identical_fabric_footprint() {
        // Fusion moves digital work; the programmed subarrays (the CiM
        // fabric) must be untouched.
        let raw = compile(PassPipeline::none());
        let fused = compile(PassPipeline::paper_default());
        assert_eq!(raw.programmed_subarrays(), fused.programmed_subarrays());
    }

    #[test]
    fn pipeline_of_preserves_order() {
        let p = PassPipeline::of(vec![PassKind::BufferLiveness]);
        assert_eq!(p.kinds(), &[PassKind::BufferLiveness]);
    }
}
