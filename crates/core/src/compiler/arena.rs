//! The zero-allocation execution arena: the runtime realization of the
//! [`BufferPlan`] the buffer-liveness pass computes.
//!
//! PR 4 *planned* a slot-reuse activation arena (`peak_arena_bytes` in
//! every report) but the executor still cloned a `Tensor` per op. This
//! module closes that gap: an [`ExecArena`] materializes the plan's slots
//! as reusable `f32` buffers — plus the staging a CiM op needs (im2col
//! patch matrix, quantized codes, integer accumulators, bit-plane masks,
//! ReBranch intermediates) and the report/`PerOpExec` storage of the
//! measurement fold — and `ExecPlan::execute_arena` interprets the plan
//! directly on those buffers. Every buffer grows on first use and keeps
//! its capacity, so a warmed-up inference touches the heap **zero**
//! times: ops write into their planned slots, samples reuse the same
//! arena back to back, and repeated `infer` calls recycle arenas through
//! the plan's internal pool.
//!
//! ## Slot lifetimes
//!
//! Slot safety comes from the liveness analysis itself: an op's input
//! (the previous op's output) and every side source it reads are live
//! *through* the op, so the planner never assigns the op's output to any
//! of their slots — reading source slots while writing the output slot
//! can therefore never alias. The interpreter asserts this.
//!
//! ## Bit-identity
//!
//! The arena interpreter is pinned bit-identical — logits, `MvmStats`,
//! and the full `ExecutionReport` — to the clone-based oracle
//! [`ExecPlan::execute_cloned`](super::ExecPlan::execute_cloned): every
//! kernel below replicates the oracle's exact per-element arithmetic and
//! fold order (see `tests/arena_parity.rs`).

use rand::Rng;

use super::{BufferPlan, EpilogueOp, ExecPlan, ExecutionReport, OpSource, PerOpExec, PlanOp};
use crate::qconv::CimScratch;
use yoloc_models::ActKind;
use yoloc_tensor::Tensor;

/// A reusable shaped `f32` buffer of the arena (one per plan slot, plus
/// the staging buffers).
#[derive(Debug, Default)]
pub(crate) struct Buf {
    data: Vec<f32>,
    shape: [usize; 4],
    rank: usize,
}

impl Buf {
    /// Sets the logical shape and presents a zeroed buffer of that size,
    /// reusing the existing allocation whenever it is large enough.
    fn prepare(&mut self, shape: &[usize]) -> &mut [f32] {
        debug_assert!(shape.len() <= 4, "arena buffers are rank <= 4");
        self.rank = shape.len();
        self.shape[..shape.len()].copy_from_slice(shape);
        let n: usize = shape.iter().product();
        self.data.clear();
        self.data.resize(n, 0.0);
        &mut self.data
    }

    fn shape(&self) -> &[usize] {
        &self.shape[..self.rank]
    }

    fn data(&self) -> &[f32] {
        &self.data
    }

    /// Copies another buffer's contents and shape into this one.
    fn copy_from(&mut self, other: &Buf) {
        self.rank = other.rank;
        self.shape = other.shape;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }
}

/// Per-deployment execution scratch, materialized from the compiled
/// [`BufferPlan`]: the activation slots, CiM staging,
/// ReBranch intermediates, and the reused report storage.
///
/// Create one with [`CompiledNetwork::take_arena`] (or let
/// `infer`/`infer_batch` draw from the plan's internal pool), drive it
/// through [`CompiledNetwork::infer_in`], and hand it back with
/// [`CompiledNetwork::give_arena`] so later calls reuse it. After the
/// first (warm-up) inference of a given input shape, every later
/// inference through the same arena performs **zero heap allocations**.
///
/// [`CompiledNetwork::take_arena`]: super::CompiledNetwork::take_arena
/// [`CompiledNetwork::infer_in`]: super::CompiledNetwork::infer_in
/// [`CompiledNetwork::give_arena`]: super::CompiledNetwork::give_arena
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use yoloc_core::compiler::{CompileOptions, CompiledNetwork};
/// use yoloc_models::zoo;
///
/// let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
/// let net = CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default())?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = yoloc_tensor::Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
/// let mut arena = net.take_arena();
/// // Steady-state loop: outputs borrow the arena, and nothing is
/// // allocated once the first iteration has warmed the buffers up.
/// for _ in 0..3 {
///     let (logits, report) = net.infer_in(&x, &mut rng, &mut arena);
///     assert_eq!(logits.shape(), &[1, 3]);
///     assert!(report.energy.total_uj() > 0.0);
/// }
/// net.give_arena(arena);
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
#[derive(Debug, Default)]
pub struct ExecArena {
    /// One buffer per planned slot.
    slots: Vec<Buf>,
    /// CiM op staging: raw layer output while its epilogue runs.
    stage: Buf,
    /// Epilogue ping-pong partner of `stage` (max-pool shrinks shapes).
    stage2: Buf,
    /// ReBranch intermediates: compress, residual-conv, decompress.
    rb: [Buf; 3],
    /// Shared CiM kernel staging (im2col, codes, accumulators, planes).
    /// The codes buffer holds vector-major rows or the lane-major
    /// transposed panel, whichever layout the op's backend selects per
    /// batch ([`MvmBackend::batch_layout`]); both stage in place and
    /// retain capacity, so layout switches between ops never allocate
    /// once warm.
    ///
    /// [`MvmBackend::batch_layout`]: yoloc_cim::MvmBackend::batch_layout
    pub(crate) cim: CimScratch,
    /// Reused per-op measurement records.
    per_op: Vec<PerOpExec>,
    /// Reused execution report (its vectors keep their capacity).
    report: ExecutionReport,
    /// The network output of the latest execution (buffer reused while
    /// the output shape is stable).
    out: Tensor,
}

impl ExecArena {
    /// A fresh arena; buffers are materialized at compile time through
    /// the plan's pool, or grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the slot buffers for a buffer plan at batch size
    /// `batch_n` (the compile-time materialization step — per-sample
    /// slot footprints come straight from the liveness pass).
    pub(crate) fn materialize(&mut self, plan: &BufferPlan, batch_n: usize) {
        self.slots.resize_with(plan.slots(), Buf::default);
        for (buf, &elems) in self.slots.iter_mut().zip(&plan.slot_elems) {
            buf.data.reserve(elems * batch_n.max(1));
        }
    }

    /// The network output of the latest execution through this arena.
    pub fn output(&self) -> &Tensor {
        &self.out
    }

    /// The execution report of the latest execution through this arena.
    pub fn report(&self) -> &ExecutionReport {
        &self.report
    }

    /// Stores an externally computed result (used by the clone-path
    /// fallback when a plan carries no buffer plan).
    pub(crate) fn set_result(&mut self, out: Tensor, report: ExecutionReport) {
        self.out = out;
        self.report = report;
    }

    /// Copies `shape`/`data` into the reused output tensor, reallocating
    /// only when the output shape changed since the previous execution.
    fn store_output(&mut self, shape: &[usize], data: &[f32]) {
        if self.out.shape() != shape {
            self.out = Tensor::zeros(shape);
        }
        self.out.data_mut().copy_from_slice(data);
    }
}

/// Resolves a side source to its live view: the network input, or the
/// producing op's arena slot. `out_slot` is the reading op's output
/// slot — liveness keeps every source out of it (a source is live
/// *through* its reader), and the assert turns any planner regression
/// into a loud failure instead of a silent read of the emptied buffer.
fn source_view<'s>(
    slots: &'s [Buf],
    bp: &BufferPlan,
    x: &'s Tensor,
    source: &OpSource,
    out_slot: usize,
) -> (&'s [f32], &'s [usize]) {
    match source {
        OpSource::Input => (x.data(), x.shape()),
        OpSource::Op(i) => {
            let s = bp.slot_of_op[*i];
            assert_ne!(s, out_slot, "source slot aliases the output slot");
            let s = &slots[s];
            (s.data(), s.shape())
        }
    }
}

/// Elementwise activation, identical to `apply_act`'s per-element map.
fn act_in_place(data: &mut [f32], kind: ActKind) {
    match kind {
        ActKind::Relu => {
            for v in data {
                *v = v.max(0.0);
            }
        }
        ActKind::Leaky => {
            for v in data {
                *v = if *v > 0.0 { *v } else { 0.1 * *v };
            }
        }
    }
}

/// Elementwise accumulate, identical to `Tensor::add`'s zip.
fn add_in_place(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len(), "residual operand length");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Max pooling into `dst`, replicating `MaxPool2d::forward` exactly
/// (same scan order, same strict-greater comparison).
fn maxpool_into(src: &[f32], shape: &[usize], kernel: usize, stride: usize, dst: &mut Buf) {
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(h >= kernel && w >= kernel, "window too large");
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let od = dst.prepare(&[n, c, oh, ow]);
    let mut oi = 0;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            let idx = base + (ohi * stride + kh) * w + owi * stride + kw;
                            if src[idx] > best {
                                best = src[idx];
                            }
                        }
                    }
                    od[oi] = best;
                    oi += 1;
                }
            }
        }
    }
}

/// Global average pool into `dst`, replicating `gap`'s summation order.
fn gap_into(src: &[f32], shape: &[usize], dst: &mut Buf) {
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    let od = dst.prepare(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = src[base..base + h * w].iter().sum();
            od[ni * c + ci] = s / (h * w) as f32;
        }
    }
}

/// Passthrough reorg + concat into `dst`, replicating
/// `passthrough_concat`'s exact index walk.
fn passthrough_into(
    src: &[f32],
    src_shape: &[usize],
    cur: &[f32],
    cur_shape: &[usize],
    extra_ch: usize,
    dst: &mut Buf,
) {
    let (n, c, h, w) = (cur_shape[0], cur_shape[1], cur_shape[2], cur_shape[3]);
    let sc = src_shape[1];
    assert_eq!(
        (src_shape[2], src_shape[3]),
        (2 * h, 2 * w),
        "passthrough source must be at twice the current resolution"
    );
    let reorg_ch = 4 * sc;
    let oc = c + extra_ch;
    let od = dst.prepare(&[n, oc, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    od[((ni * oc + ci) * h + y) * w + x] = cur[((ni * c + ci) * h + y) * w + x];
                }
            }
        }
        for e in 0..extra_ch {
            // Offset-major reorg: channel index walks (dy, dx, src channel).
            let r = e % reorg_ch;
            let (dy, dx, sci) = (r / (2 * sc), (r / sc) % 2, r % sc);
            for y in 0..h {
                for x in 0..w {
                    od[((ni * oc + c + e) * h + y) * w + x] =
                        src[((ni * sc + sci) * 2 * h + 2 * y + dy) * 2 * w + 2 * x + dx];
                }
            }
        }
    }
}

/// Applies a fused epilogue in place on `cur` (ping-ponging through
/// `stage2` for shape-changing steps), accumulating side-operand traffic
/// into `rec` exactly like `ExecPlan::apply_epilogue`. `cur` is the op's
/// output slot buffer when the epilogue is shape-stable (no max-pool),
/// the staging buffer otherwise.
#[allow(clippy::too_many_arguments)] // splits one op's state over disjoint arena fields
fn run_epilogue(
    plan: &ExecPlan,
    epilogue: &[EpilogueOp],
    op_idx: usize,
    out_slot: usize,
    slots: &[Buf],
    bp: &BufferPlan,
    x: &Tensor,
    cur: &mut Buf,
    stage2: &mut Buf,
    rec: &mut PerOpExec,
) {
    let ab = plan.memory.act_bits as u64;
    for e in epilogue {
        match e {
            EpilogueOp::Act(kind) => act_in_place(&mut cur.data, *kind),
            EpilogueOp::MaxPool { kernel, stride } => {
                let shape = cur.shape;
                let rank = cur.rank;
                maxpool_into(&cur.data, &shape[..rank], *kernel, *stride, stage2);
                std::mem::swap(cur, stage2);
            }
            EpilogueOp::Residual { source } => {
                let (sd, _) = source_view(slots, bp, x, source, out_slot);
                let bits = sd.len() as u64 * ab;
                rec.side_bits += bits;
                if plan.source_chip(source) != plan.chip_of[op_idx] {
                    rec.cross_bits += bits;
                }
                add_in_place(&mut cur.data, sd);
            }
        }
    }
}

/// Whether a fused epilogue changes the activation shape (max-pool): the
/// one case a CiM op must stage its raw output instead of writing its
/// planned slot directly.
fn needs_staging(epilogue: &[EpilogueOp]) -> bool {
    epilogue
        .iter()
        .any(|e| matches!(e, EpilogueOp::MaxPool { .. }))
}

/// `(input_elems, batch_n)` of the network input, as `finalize` reads
/// them off the tensor.
fn input_dims(x: &Tensor) -> (usize, usize) {
    let n = if x.ndim() >= 1 { x.shape()[0] } else { 1 };
    (x.data().len(), n)
}

impl ExecPlan {
    /// Executes the plan on the arena, leaving the output and report in
    /// `arena` — the allocation-free steady-state interpreter behind
    /// [`ExecPlan::execute`] and [`ExecPlan::execute_in`].
    ///
    /// # Panics
    ///
    /// Panics if the plan carries no buffer plan (compile with a pipeline
    /// that runs the buffer-liveness pass, or use the clone fallback).
    pub(crate) fn execute_arena<R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        rng: &mut R,
        arena: &mut ExecArena,
    ) {
        let bp = self
            .buffer_plan
            .as_ref()
            .expect("arena execution requires a buffer plan");
        let ab = self.memory.act_bits as u64;
        let (input_elems, batch_n) = input_dims(x);
        arena.slots.resize_with(bp.slots(), Buf::default);
        arena.per_op.clear();
        arena.per_op.resize(self.ops.len(), PerOpExec::default());
        if self.ops.is_empty() {
            let mut report = std::mem::take(&mut arena.report);
            self.finalize_into(input_elems, batch_n, x.data().len(), &[], &mut report);
            arena.report = report;
            arena.store_output(x.shape(), x.data());
            return;
        }
        let mut stage = std::mem::take(&mut arena.stage);
        let mut stage2 = std::mem::take(&mut arena.stage2);
        let mut rb = std::mem::take(&mut arena.rb);
        let [rb0, rb1, rb2] = &mut rb;
        for op_idx in 0..self.ops.len() {
            let slot = bp.slot_of_op[op_idx];
            // Take the output buffer out of the arena so source slots can
            // be read freely while it is written.
            let mut out_buf = std::mem::take(&mut arena.slots[slot]);
            let rec = &mut arena.per_op[op_idx];
            let slots = &arena.slots;
            let cim = &mut arena.cim;
            // The running activation: the previous op's slot (the network
            // input for op 0). Liveness keeps it out of the output slot.
            let (in_data, in_shape): (&[f32], &[usize]) = if op_idx == 0 {
                (x.data(), x.shape())
            } else {
                let prev = bp.slot_of_op[op_idx - 1];
                debug_assert_ne!(prev, slot, "input slot aliases output slot");
                (slots[prev].data(), slots[prev].shape())
            };
            rec.in_bits = in_data.len() as u64 * ab;
            if op_idx > 0 && self.chip_of[op_idx] != self.chip_of[op_idx - 1] {
                rec.cross_bits += rec.in_bits;
            }
            match &self.ops[op_idx] {
                PlanOp::Conv {
                    conv,
                    domain,
                    epilogue,
                } => {
                    let (n, h, w) = (in_shape[0], in_shape[2], in_shape[3]);
                    let (oh, ow) = conv.output_hw(h, w);
                    // Shape-stable epilogues run in place on the planned
                    // slot; only max-pool chains stage and copy.
                    let staged = needs_staging(epilogue);
                    let target = if staged { &mut stage } else { &mut out_buf };
                    let od = target.prepare(&[n, conv.out_channels(), oh, ow]);
                    let s = conv.forward_in(in_data, n, h, w, od, cim, rng);
                    rec.tiles = conv.tile_count(n * oh * ow);
                    rec.add(*domain, &s);
                    run_epilogue(
                        self,
                        epilogue,
                        op_idx,
                        slot,
                        slots,
                        bp,
                        x,
                        target,
                        &mut stage2,
                        rec,
                    );
                    if staged {
                        out_buf.copy_from(&stage);
                    }
                }
                PlanOp::ReBranch {
                    trunk,
                    compress,
                    res_conv,
                    decompress,
                    epilogue,
                } => {
                    let (n, h, w) = (in_shape[0], in_shape[2], in_shape[3]);
                    let (th, tw) = trunk.output_hw(h, w);
                    let staged = needs_staging(epilogue);
                    let target = if staged { &mut stage } else { &mut out_buf };
                    let td = target.prepare(&[n, trunk.out_channels(), th, tw]);
                    let s1 = trunk.forward_in(in_data, n, h, w, td, cim, rng);
                    rec.tiles = trunk.tile_count(n * th * tw);
                    let (ch, cw) = compress.output_hw(h, w);
                    let cd = rb0.prepare(&[n, compress.out_channels(), ch, cw]);
                    let s2 = compress.forward_in(in_data, n, h, w, cd, cim, rng);
                    let (rh, rw) = res_conv.output_hw(ch, cw);
                    let rd = rb1.prepare(&[n, res_conv.out_channels(), rh, rw]);
                    let s3 = res_conv.forward_in(rb0.data(), n, ch, cw, rd, cim, rng);
                    let (dh, dw) = decompress.output_hw(rh, rw);
                    let dd = rb2.prepare(&[n, decompress.out_channels(), dh, dw]);
                    let s4 = decompress.forward_in(rb1.data(), n, rh, rw, dd, cim, rng);
                    rec.rom.merge(&s1);
                    rec.rom.merge(&s2);
                    rec.sram.merge(&s3);
                    rec.rom.merge(&s4);
                    add_in_place(&mut target.data, rb2.data());
                    run_epilogue(
                        self,
                        epilogue,
                        op_idx,
                        slot,
                        slots,
                        bp,
                        x,
                        target,
                        &mut stage2,
                        rec,
                    );
                    if staged {
                        out_buf.copy_from(&stage);
                    }
                }
                PlanOp::Linear {
                    linear,
                    domain,
                    epilogue,
                } => {
                    let n = in_shape[0];
                    let staged = needs_staging(epilogue);
                    let target = if staged { &mut stage } else { &mut out_buf };
                    let od = target.prepare(&[n, linear.outs()]);
                    let s = linear.forward_in(in_data, n, od, cim, rng);
                    rec.add(*domain, &s);
                    run_epilogue(
                        self,
                        epilogue,
                        op_idx,
                        slot,
                        slots,
                        bp,
                        x,
                        target,
                        &mut stage2,
                        rec,
                    );
                    if staged {
                        out_buf.copy_from(&stage);
                    }
                }
                PlanOp::Activation(kind) => {
                    let od = out_buf.prepare(in_shape);
                    od.copy_from_slice(in_data);
                    act_in_place(od, *kind);
                }
                PlanOp::MaxPool { kernel, stride } => {
                    maxpool_into(in_data, in_shape, *kernel, *stride, &mut out_buf);
                }
                PlanOp::GlobalAvgPool => {
                    gap_into(in_data, in_shape, &mut out_buf);
                }
                PlanOp::Passthrough { source, extra_ch } => {
                    let (sd, ss) = source_view(slots, bp, x, source, slot);
                    rec.side_bits = sd.len() as u64 * ab;
                    if self.source_chip(source) != self.chip_of[op_idx] {
                        rec.cross_bits += rec.side_bits;
                    }
                    passthrough_into(sd, ss, in_data, in_shape, *extra_ch, &mut out_buf);
                }
                PlanOp::ResidualAdd { source, projection } => {
                    let (sd, ss) = source_view(slots, bp, x, source, slot);
                    rec.side_bits = sd.len() as u64 * ab;
                    if self.source_chip(source) != self.chip_of[op_idx] {
                        rec.cross_bits += rec.side_bits;
                    }
                    let od = out_buf.prepare(in_shape);
                    od.copy_from_slice(in_data);
                    match projection {
                        None => add_in_place(od, sd),
                        Some(p) => {
                            let (n, h, w) = (ss[0], ss[2], ss[3]);
                            let (oh, ow) = p.0.output_hw(h, w);
                            let pd = stage.prepare(&[n, p.0.out_channels(), oh, ow]);
                            let s = p.0.forward_in(sd, n, h, w, pd, cim, rng);
                            rec.add(p.1, &s);
                            add_in_place(od, stage.data());
                        }
                    }
                }
                PlanOp::Nop => {
                    out_buf.prepare(in_shape).copy_from_slice(in_data);
                }
            }
            rec.out_bits = out_buf.data().len() as u64 * ab;
            arena.slots[slot] = out_buf;
        }
        arena.stage = stage;
        arena.stage2 = stage2;
        arena.rb = rb;
        let last_slot = bp.slot_of_op[self.ops.len() - 1];
        let last = std::mem::take(&mut arena.slots[last_slot]);
        let mut report = std::mem::take(&mut arena.report);
        self.finalize_into(
            input_elems,
            batch_n,
            last.data().len(),
            &arena.per_op,
            &mut report,
        );
        arena.report = report;
        arena.store_output(last.shape(), last.data());
        arena.slots[last_slot] = last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn buf_prepare_reuses_capacity_and_zeroes() {
        let mut b = Buf::default();
        b.prepare(&[2, 3]).copy_from_slice(&[1.0; 6]);
        assert_eq!(b.shape(), &[2, 3]);
        let before = b.data.capacity();
        let d = b.prepare(&[1, 4]);
        assert!(d.iter().all(|&v| v == 0.0), "prepare must zero the buffer");
        assert_eq!(b.data.capacity(), before, "shrinking must not reallocate");
    }

    #[test]
    fn maxpool_into_matches_layer() {
        use yoloc_tensor::layers::MaxPool2d;
        use yoloc_tensor::Layer;
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);
        let expect = MaxPool2d::new(2, 2).forward(&x, false);
        let mut dst = Buf::default();
        maxpool_into(x.data(), x.shape(), 2, 2, &mut dst);
        assert_eq!(dst.shape(), expect.shape());
        assert_eq!(dst.data(), expect.data());
    }

    #[test]
    fn gap_and_passthrough_match_oracles() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::rand_uniform(&[2, 3, 4, 4], -1.0, 1.0, &mut rng);
        let mut dst = Buf::default();
        gap_into(x.data(), x.shape(), &mut dst);
        let expect = super::super::gap(&x);
        assert_eq!(dst.data(), expect.data());

        let cur = Tensor::rand_uniform(&[2, 5, 2, 2], -1.0, 1.0, &mut rng);
        let expect = super::super::passthrough_concat(&x, &cur, 7);
        passthrough_into(x.data(), x.shape(), cur.data(), cur.shape(), 7, &mut dst);
        assert_eq!(dst.shape(), expect.shape());
        assert_eq!(dst.data(), expect.data());
    }
}
