//! Round-trip serialization of compiled execution plans.
//!
//! A [`CompiledNetwork`] is a pure function of its inputs (description,
//! weights, calibration, options) — everything the executors read is
//! value state: plan ops with their quantized weight codes and
//! dequantization tables, the memory hierarchy, placement, and the
//! buffer plan. This module persists exactly that state as a
//! `yoloc-plan/2` JSON document and rebuilds it so that a deserialized
//! network executes **bit-identically** to the fresh compile (logits,
//! `MvmStats`, the full `ExecutionReport` — the `plan_roundtrip`
//! integration suite is the gate). The MVM backends themselves are
//! re-programmed from the retained [`crate::qconv`] `ProgramSpec`s
//! rather than walked, since `program_backend` is deterministic.
//!
//! Numbers survive exactly: integer counts ride the shim's
//! `UInt`/`Int` variants (no 2^53 truncation), `f32` state widens
//! losslessly to `f64`, and floats render shortest-round-trip.
//!
//! What is *not* captured, by design:
//!
//! * runtime `set_fast_path` toggles — a deserialized layer starts on
//!   its backend's compile-time default path, like a fresh compile;
//! * the recycled arena pool — one arena is re-materialized from the
//!   buffer plan on load, mirroring what `compile` does, so the first
//!   inference starts from pre-sized slots.
//!
//! The document is the value format of the content-addressed plan cache
//! ([`crate::compiler::cache`]); its top-level `schema` string is the
//! cache's format-invalidation handle (a reader rejects unknown
//! schemas, which the cache treats as a miss-and-overwrite).

use std::sync::Mutex;

use serde::json::Value as Json;
use serde::Serialize;

use super::arena::ExecArena;
use super::{CompiledNetwork, ExecPlan};
use crate::qconv::json_field;

/// Schema tag of serialized plan documents. `/2` adds the fabric fault
/// map and per-layer fault records; `/1` documents (no fault fields)
/// still deserialize — see [`PLAN_SCHEMA_V1`].
pub const PLAN_SCHEMA: &str = "yoloc-plan/2";

/// The pre-fault schema tag, accepted on read for backward
/// compatibility: every fault-carrying field is an `Option` that
/// defaults to `None` when missing, so a `/1` document rebuilds the
/// identical pristine deployment it always did.
pub const PLAN_SCHEMA_V1: &str = "yoloc-plan/1";

fn plan_to_json(plan: &ExecPlan) -> Json {
    Json::obj([
        ("memory", plan.memory.to_json()),
        ("n_chips", plan.n_chips.to_json()),
        ("chip_of", plan.chip_of.to_json()),
        ("out_elems", plan.out_elems.to_json()),
        ("buffer_plan", plan.buffer_plan.to_json()),
        ("ops", plan.ops.to_json()),
    ])
}

fn plan_from_json(v: &Json) -> Result<ExecPlan, String> {
    let plan = ExecPlan {
        ops: json_field(v, "ops")?,
        memory: json_field(v, "memory")?,
        out_elems: json_field(v, "out_elems")?,
        chip_of: json_field(v, "chip_of")?,
        n_chips: json_field(v, "n_chips")?,
        buffer_plan: json_field(v, "buffer_plan")?,
        arena_pool: Mutex::new(Vec::new()),
    };
    let ops = plan.ops.len();
    if plan.out_elems.len() != ops || plan.chip_of.len() != ops {
        return Err(format!(
            "inconsistent plan: {ops} ops, {} out_elems, {} chip_of",
            plan.out_elems.len(),
            plan.chip_of.len()
        ));
    }
    if let Some(bp) = &plan.buffer_plan {
        if bp.slot_of_op.len() != ops {
            return Err(format!(
                "inconsistent buffer plan: {ops} ops, {} slot assignments",
                bp.slot_of_op.len()
            ));
        }
        if bp
            .slot_of_op
            .iter()
            .any(|&slot| slot >= bp.slot_elems.len())
        {
            return Err("buffer plan references a slot out of range".to_string());
        }
    }
    Ok(plan)
}

impl CompiledNetwork {
    /// Serializes the network into a `yoloc-plan/2` value tree (the
    /// content format of the plan cache).
    pub fn to_plan_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(PLAN_SCHEMA)),
            ("name", self.name.to_json()),
            ("input", self.input.to_json()),
            ("strategy", self.strategy.to_json()),
            ("mapping", self.mapping.to_json()),
            ("pass_reports", self.pass_reports.to_json()),
            ("fault_map", self.fault_map.to_json()),
            ("fault_config", self.fault_config.to_json()),
            ("plan", plan_to_json(&self.plan)),
        ])
    }

    /// Rebuilds a network from a [`CompiledNetwork::to_plan_json`] tree,
    /// re-programming every MVM backend and re-materializing one
    /// execution arena from the buffer plan (what `compile` does).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on schema or shape
    /// mismatch — including an unknown `schema` tag, the cache's
    /// invalidation signal.
    pub fn from_plan_json(v: &Json) -> Result<Self, String> {
        let schema: String = json_field(v, "schema")?;
        if schema != PLAN_SCHEMA && schema != PLAN_SCHEMA_V1 {
            return Err(format!(
                "unsupported plan schema {schema:?} (expected {PLAN_SCHEMA:?} or {PLAN_SCHEMA_V1:?})"
            ));
        }
        let plan = plan_from_json(v.get("plan").ok_or("missing field \"plan\"")?)
            .map_err(|e| format!("plan: {e}"))?;
        if let Some(bp) = &plan.buffer_plan {
            let mut arena = ExecArena::new();
            arena.materialize(bp, 1);
            plan.give_arena(arena);
        }
        Ok(CompiledNetwork {
            plan,
            name: json_field(v, "name")?,
            mapping: json_field(v, "mapping")?,
            pass_reports: json_field(v, "pass_reports")?,
            strategy: json_field(v, "strategy")?,
            input: json_field(v, "input")?,
            fault_map: json_field(v, "fault_map")?,
            fault_config: json_field(v, "fault_config")?,
        })
    }

    /// Renders the plan document as pretty-printed JSON (stable
    /// byte-for-byte for identical networks).
    pub fn serialize_plan(&self) -> String {
        self.to_plan_json().render()
    }

    /// Parses and rebuilds a [`CompiledNetwork::serialize_plan`]
    /// document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax, schema or shape
    /// error.
    pub fn deserialize_plan(text: &str) -> Result<Self, String> {
        Self::from_plan_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::super::{CompileOptions, CompiledNetwork};
    use yoloc_models::zoo;
    use yoloc_tensor::Tensor;

    #[test]
    fn serialized_plan_round_trips_bit_identically() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 11, CompileOptions::paper_default())
            .expect("compiles");
        let text = net.serialize_plan();
        let back = CompiledNetwork::deserialize_plan(&text).expect("deserializes");
        assert_eq!(net.name, back.name);
        assert_eq!(net.mapping, back.mapping);
        assert_eq!(net.pass_reports, back.pass_reports);
        assert_eq!(net.input_shape(), back.input_shape());

        let (c, h, w) = net.input_shape();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let (ya, ra) = net.infer(&x, &mut rng_a);
        let (yb, rb) = back.infer(&x, &mut rng_b);
        assert_eq!(ya.data(), yb.data(), "logits diverged after round trip");
        assert_eq!(ra, rb, "report diverged after round trip");

        // The document itself is stable: serialize(deserialize(s)) == s.
        assert_eq!(text, back.serialize_plan());
    }

    #[test]
    fn deserialize_rejects_wrong_schema_and_shapes() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 11, CompileOptions::paper_default())
            .expect("compiles");
        let text = net.serialize_plan();
        let bad = text.replace("yoloc-plan/2", "yoloc-plan/0");
        let err = match CompiledNetwork::deserialize_plan(&bad) {
            Ok(_) => panic!("wrong schema must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("unsupported plan schema"), "{err}");
        assert!(CompiledNetwork::deserialize_plan("{}").is_err());
        assert!(CompiledNetwork::deserialize_plan("not json").is_err());
    }

    #[test]
    fn v1_documents_still_deserialize() {
        // A pristine compile carries no fault state, so re-tagging its
        // document as `yoloc-plan/1` models exactly what a pre-fault
        // cache entry looks like: same fields minus the fault ones.
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net = CompiledNetwork::compile_random(&desc, 11, CompileOptions::paper_default())
            .expect("compiles");
        let v1 = net.serialize_plan().replace("yoloc-plan/2", "yoloc-plan/1");
        let back = CompiledNetwork::deserialize_plan(&v1).expect("v1 documents must read");
        assert!(back.fault_map.is_none());
        assert!(back.fault_config.is_none());
        let (c, h, w) = net.input_shape();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let (ya, ra) = net.infer(&x, &mut rng_a);
        let (yb, rb) = back.infer(&x, &mut rng_b);
        assert_eq!(ya.data(), yb.data());
        assert_eq!(ra, rb);
        // Re-serializing writes the current schema.
        assert!(back.serialize_plan().contains("yoloc-plan/2"));
    }
}
