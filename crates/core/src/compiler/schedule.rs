//! The tile-level task graph the parallel scheduler executes.
//!
//! A compiled [`ExecPlan`] is a chain of ops (each consumes the previous
//! op's output) with side edges for skip/passthrough sources. To exploit
//! the ROM-CiM fabric *within* one sample, the scheduler needs finer
//! grain: this module expands the plan into **tasks** — one per digital
//! op, and one per internal stage of a ReBranch group (trunk, compress,
//! residual conv, decompress, combine) — wired with explicit dependencies.
//!
//! Each CiM task then fans out further at run time into the
//! placement-derived position tiles of `CimConv2d::tile_ranges`, which is
//! where the intra-sample parallelism comes from: independent tasks of a
//! ready wave (e.g. a ReBranch trunk and its compress stage) and all
//! their tiles execute concurrently on the worker pool, while assembly
//! follows deterministic task/tile order so the result is bit-identical
//! to the serial interpreter.

use super::{ExecPlan, OpSource, PlanOp};

/// What a task computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskKind {
    /// The whole op (digital ops, CiM convs/linears, residual adds).
    Whole,
    /// ReBranch stages (Fig. 7).
    RbTrunk,
    RbCompress,
    RbRes,
    RbDecompress,
    /// ReBranch merge: `trunk + decompress`, plus any fused epilogue.
    RbCombine,
}

/// One schedulable unit: an op (or op stage) plus its producer tasks.
#[derive(Debug, Clone)]
pub(crate) struct Task {
    /// The plan op this task belongs to.
    pub op: usize,
    /// Which part of the op it computes.
    pub kind: TaskKind,
    /// Task indices that must complete first.
    pub deps: Vec<usize>,
}

/// The dependency graph of one plan, in deterministic task order.
#[derive(Debug, Clone)]
pub(crate) struct TaskGraph {
    pub tasks: Vec<Task>,
    /// The task whose result is op `i`'s final output.
    pub result_task_of_op: Vec<usize>,
}

impl TaskGraph {
    /// Expands `plan` into its task graph.
    pub fn build(plan: &ExecPlan) -> Self {
        let mut tasks: Vec<Task> = Vec::new();
        let mut result_task_of_op = Vec::with_capacity(plan.ops.len());
        for (i, op) in plan.ops.iter().enumerate() {
            // Producer of the running activation.
            let prev: Option<usize> = i.checked_sub(1).map(|p| result_task_of_op[p]);
            let src_deps: Vec<usize> = op
                .sources()
                .iter()
                .filter_map(|s| match s {
                    OpSource::Input => None,
                    OpSource::Op(j) => Some(result_task_of_op[*j]),
                })
                .collect();
            let result = match op {
                PlanOp::ReBranch { .. } => {
                    let base: Vec<usize> = prev.into_iter().collect();
                    let trunk = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::RbTrunk,
                        deps: base.clone(),
                    });
                    let compress = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::RbCompress,
                        deps: base,
                    });
                    let res = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::RbRes,
                        deps: vec![compress],
                    });
                    let decompress = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::RbDecompress,
                        deps: vec![res],
                    });
                    let mut deps = vec![trunk, decompress];
                    deps.extend(src_deps.iter().copied());
                    let combine = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::RbCombine,
                        deps,
                    });
                    combine
                }
                _ => {
                    let mut deps: Vec<usize> = prev.into_iter().collect();
                    deps.extend(src_deps.iter().copied());
                    let t = tasks.len();
                    tasks.push(Task {
                        op: i,
                        kind: TaskKind::Whole,
                        deps,
                    });
                    t
                }
            };
            result_task_of_op.push(result);
        }
        TaskGraph {
            tasks,
            result_task_of_op,
        }
    }

    /// In-degree of every task (the ready queue's starting state).
    pub fn indegrees(&self) -> Vec<usize> {
        self.tasks.iter().map(|t| t.deps.len()).collect()
    }

    /// Successor lists (who to notify when a task completes).
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.tasks.len()];
        for (t, task) in self.tasks.iter().enumerate() {
            for &d in &task.deps {
                succ[d].push(t);
            }
        }
        succ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompileOptions, CompiledNetwork, PassPipeline};
    use yoloc_models::zoo;

    #[test]
    fn chain_plan_builds_chain_graph() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = CompileOptions::paper_default();
        opts.passes = PassPipeline::none();
        let net = CompiledNetwork::compile_random(&desc, 5, opts).unwrap();
        let g = TaskGraph::build(net.plan());
        assert_eq!(g.tasks.len(), net.plan().len());
        // Pure chain: task k depends exactly on task k-1.
        for (k, t) in g.tasks.iter().enumerate() {
            if k == 0 {
                assert!(t.deps.is_empty());
            } else {
                assert_eq!(t.deps, vec![k - 1]);
            }
        }
    }

    #[test]
    fn residual_adds_side_edges() {
        let desc = zoo::scaled(&zoo::resnet18(3), 16, (32, 32));
        let mut opts = CompileOptions::paper_default();
        opts.passes = PassPipeline::none();
        let net = CompiledNetwork::compile_random(&desc, 6, opts).unwrap();
        let g = TaskGraph::build(net.plan());
        // At least one task must carry a second (skip) dependency.
        assert!(g.tasks.iter().any(|t| t.deps.len() >= 2));
        // The graph stays acyclic and topologically ordered by
        // construction: every dep index precedes its task.
        for (k, t) in g.tasks.iter().enumerate() {
            assert!(t.deps.iter().all(|&d| d < k));
        }
    }
}
